"""Sweep-wide telemetry aggregation (--telemetry) tests.

Each worker runs its cell in metrics-only observability mode, ships a
mergeable snapshot back on the ``CellOutcome``, and the aggregate merges
them all -- deterministically, regardless of worker count.
"""

import json

import pytest

from repro import obs
from repro.obs.aggregate import select_series
from repro.sweep import SweepSpec, run_sweep, strip_timing
from repro.sweep.artifact import CellOutcome


@pytest.fixture(autouse=True)
def _clean_switchboard():
    yield
    obs.disable()
    obs.reset()


def _retx_spec(seed=42):
    return SweepSpec.from_dict({
        "name": "telemetry", "scenario": "retransmission", "seed": seed,
        "base": {"total_bytes": 30000},
        "grid": {"loss_rate": [0.01, 0.05]},
    })


class TestCollection:
    def test_cells_carry_mergeable_snapshots(self):
        aggregate = run_sweep(_retx_spec(), workers=1, telemetry=True)
        assert aggregate.ok
        for cell in aggregate.cells:
            assert cell.telemetry is not None
            assert cell.telemetry["kind"] == "telemetry"
        merged = aggregate.telemetry
        delivered = select_series(merged, "transport_packets_delivered_total")
        assert delivered and delivered[0]["value"] > 0

    def test_without_flag_no_telemetry(self):
        aggregate = run_sweep(_retx_spec(), workers=1)
        assert all(cell.telemetry is None for cell in aggregate.cells)
        assert aggregate.telemetry is None
        record = aggregate.to_dict()
        assert "telemetry" not in record
        assert "telemetry_cells" not in record["summary"]

    def test_artifact_includes_telemetry_block(self):
        aggregate = run_sweep(_retx_spec(), workers=1, telemetry=True)
        record = aggregate.to_dict()
        assert record["summary"]["telemetry_cells"] == len(aggregate.cells)
        assert record["telemetry"]["kind"] == "telemetry"
        # Per-cell snapshots round-trip through the artifact records
        # (what sweep --resume reads back).
        revived = [CellOutcome.from_dict(cell)
                   for cell in json.loads(json.dumps(record))["cells"]]
        assert [cell.telemetry for cell in revived] \
            == [cell.telemetry for cell in aggregate.cells]


class TestDeterminism:
    def test_merged_telemetry_identical_across_worker_counts(self):
        serial = run_sweep(_retx_spec(), workers=1, telemetry=True)
        parallel = run_sweep(_retx_spec(), workers=2, telemetry=True)
        assert strip_timing(serial.to_dict()) \
            == strip_timing(parallel.to_dict())
        assert json.dumps(serial.telemetry, sort_keys=True) \
            == json.dumps(parallel.telemetry, sort_keys=True)


class TestBenchStoreFlattening:
    def test_snapshot_from_sweep_flattens_telemetry(self):
        from repro.bench.store import snapshot_from_sweep

        aggregate = run_sweep(_retx_spec(), workers=1, telemetry=True)
        snapshot = snapshot_from_sweep(aggregate.to_dict())
        names = set(snapshot.metrics)
        assert any(name.startswith(
            "telemetry_transport_packets_delivered_total") for name in names)
        histogram_keys = [name for name in names if name.endswith("_p99")]
        assert histogram_keys
        for name in names:
            if name.startswith("telemetry_"):
                assert snapshot.metrics[name].direction == "info"
