"""Tests for sweep spec validation, expansion, and seed derivation."""

import json

import pytest

from repro.errors import SweepSpecError
from repro.sweep import SWEEP_SCHEMA_VERSION, SweepSpec, derive_seed


def minimal(**overrides):
    record = {
        "name": "t", "scenario": "selftest",
        "grid": {"a": [1, 2], "b": [10, 20, 30]},
    }
    record.update(overrides)
    return record


class TestValidation:
    def test_minimal_spec_parses(self):
        spec = SweepSpec.from_dict(minimal())
        assert spec.scenario == "selftest"
        assert spec.num_cells == 6
        assert spec.schema == SWEEP_SCHEMA_VERSION

    def test_unknown_key_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown key"):
            SweepSpec.from_dict(minimal(gird={"a": [1]}))

    def test_newer_schema_refused(self):
        with pytest.raises(SweepSpecError, match="newer"):
            SweepSpec.from_dict(minimal(schema=SWEEP_SCHEMA_VERSION + 1))

    def test_missing_scenario(self):
        record = minimal()
        del record["scenario"]
        with pytest.raises(SweepSpecError, match="scenario"):
            SweepSpec.from_dict(record)

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepSpecError, match="empty"):
            SweepSpec.from_dict(minimal(grid={"a": []}))

    def test_axis_shadowing_base_rejected(self):
        with pytest.raises(SweepSpecError, match="shadows"):
            SweepSpec.from_dict(minimal(base={"a": 5}))

    def test_string_axis_rejected(self):
        with pytest.raises(SweepSpecError, match="list"):
            SweepSpec.from_dict(minimal(grid={"a": "not-a-list"}))

    @pytest.mark.parametrize("key,value", [
        ("seed", "x"), ("retries", -1), ("task_timeout_s", 0),
        ("retry_backoff_s", -0.1), ("workers", 0),
    ])
    def test_bad_scalars_rejected(self, key, value):
        with pytest.raises(SweepSpecError):
            SweepSpec.from_dict(minimal(**{key: value}))

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal(seed=9)))
        assert SweepSpec.from_json_file(str(path)).seed == 9

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="valid JSON"):
            SweepSpec.from_json_file(str(path))


class TestExpansion:
    def test_row_major_over_sorted_axes(self):
        spec = SweepSpec.from_dict({
            "name": "t", "scenario": "selftest",
            # Insertion order deliberately unsorted: 'b' before 'a'.
            "grid": {"b": [10, 20], "a": [1, 2]},
            "base": {"fixed": 7},
        })
        cells = spec.cells()
        assert [cell.params for cell in cells] == [
            {"fixed": 7, "a": 1, "b": 10},
            {"fixed": 7, "a": 1, "b": 20},
            {"fixed": 7, "a": 2, "b": 10},
            {"fixed": 7, "a": 2, "b": 20},
        ]
        assert [cell.index for cell in cells] == [0, 1, 2, 3]

    def test_gridless_spec_is_one_cell(self):
        spec = SweepSpec.from_dict(
            {"name": "t", "scenario": "selftest", "base": {"work": 4}})
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0].params == {"work": 4}

    def test_seeds_are_pure_and_distinct(self):
        spec = SweepSpec.from_dict(minimal(seed=5))
        seeds = [cell.seed for cell in spec.cells()]
        assert seeds == [cell.seed for cell in spec.cells()]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derive_seed(5, 0)

    def test_seed_derivation_is_pinned(self):
        # A change in the derivation silently invalidates every recorded
        # sweep; pin the exact values.
        assert derive_seed(1, 0) == 4292617860163486054
        assert derive_seed(1, 1) == 5801195805350307723
        assert derive_seed(42, 0) == 3067536323297712504

    def test_sweep_seed_changes_all_cell_seeds(self):
        a = [cell.seed for cell in SweepSpec.from_dict(minimal(seed=1)).cells()]
        b = [cell.seed for cell in SweepSpec.from_dict(minimal(seed=2)).cells()]
        assert all(x != y for x, y in zip(a, b))


class TestFingerprint:
    def test_scheduling_knobs_do_not_change_identity(self):
        base = SweepSpec.from_dict(minimal(seed=3))
        tuned = SweepSpec.from_dict(minimal(
            seed=3, workers=8, retries=5, task_timeout_s=9,
            retry_backoff_s=1.0))
        assert base.fingerprint() == tuned.fingerprint()

    @pytest.mark.parametrize("change", [
        {"seed": 4}, {"scenario": "chaos"},
        {"grid": {"a": [1, 2], "b": [10, 20, 31]}},
        {"base": {"c": 1}},
    ])
    def test_result_determining_fields_do(self, change):
        changed = minimal(seed=3)
        changed.update(change)
        assert SweepSpec.from_dict(minimal(seed=3)).fingerprint() \
            != SweepSpec.from_dict(changed).fingerprint()
