"""Runner fault tolerance: retries, crashes, timeouts, resume, artifact."""

import json

import pytest

from repro.errors import SweepResumeError
from repro.sweep import (
    CELL_FAILED,
    CELL_OK,
    SweepSpec,
    completed_results,
    format_aggregate,
    load_aggregate_dict,
    run_sweep,
    strip_timing,
)


def selftest_spec(**overrides):
    record = {
        "name": "runner-test", "scenario": "selftest", "seed": 11,
        "base": {"work": 16}, "grid": {"cell": [0, 1, 2, 3]},
        "retries": 2, "retry_backoff_s": 0.0,
    }
    record.update(overrides)
    return SweepSpec.from_dict(record)


class TestSerial:
    def test_all_ok(self):
        aggregate = run_sweep(selftest_spec(), workers=1)
        assert aggregate.ok
        assert [cell.index for cell in aggregate.cells] == [0, 1, 2, 3]
        assert all(cell.status == CELL_OK and cell.attempts == 1
                   for cell in aggregate.cells)

    def test_flaky_cell_is_retried_to_success(self):
        # fail_attempts=2 raises on worker attempts 0 and 1, succeeds on 2.
        spec = selftest_spec(grid={"fail_attempts": [0, 2]})
        aggregate = run_sweep(spec, workers=1)
        assert aggregate.ok
        flaky = aggregate.cells[1]
        assert flaky.attempts == 3
        assert flaky.result["attempt"] == 2

    def test_exhausted_retries_land_in_failed_cells(self):
        spec = selftest_spec(grid={"fail_attempts": [0, 99]}, retries=1)
        aggregate = run_sweep(spec, workers=1)
        assert not aggregate.ok
        record = aggregate.to_dict()
        assert record["summary"] == {"total": 2, "ok": 1, "failed": 1,
                                     "retried": 1}
        (failure,) = record["failed_cells"]
        assert failure["index"] == 1
        assert failure["error_kind"] == "exception"
        assert failure["attempts"] == 2
        assert "injected failure" in failure["error"]
        # The failed cell is still present in the main cell list -- a
        # failure is recorded, never silently dropped.
        assert [cell["index"] for cell in record["cells"]] == [0, 1]
        assert record["cells"][1]["status"] == CELL_FAILED


class TestParallelFaults:
    def test_worker_exception_is_retried(self):
        spec = selftest_spec(grid={"fail_attempts": [0, 1, 0, 1]})
        aggregate = run_sweep(spec, workers=2)
        assert aggregate.ok
        assert aggregate.cells[1].attempts == 2
        assert aggregate.cells[3].attempts == 2

    def test_worker_hard_crash_breaks_pool_but_not_sweep(self):
        # Cell 2's worker os._exit()s on its first attempt: the pool
        # breaks, is rebuilt, and the cell succeeds on retry.
        spec = selftest_spec(grid={"exit_attempts": [0, 0, 1, 0]})
        aggregate = run_sweep(spec, workers=2)
        assert aggregate.ok, aggregate.to_dict()["failed_cells"]
        assert aggregate.cells[2].attempts >= 2

    def test_unrecoverable_crasher_is_recorded_not_fatal(self):
        spec = selftest_spec(grid={"exit_attempts": [0, 99]}, retries=1)
        aggregate = run_sweep(spec, workers=2)
        record = aggregate.to_dict()
        assert record["cells"][0]["status"] == CELL_OK
        (failure,) = record["failed_cells"]
        assert failure["index"] == 1
        assert failure["error_kind"] == "worker-crash"

    def test_timeout_is_reaped_and_recorded(self):
        spec = selftest_spec(grid={"sleep_s": [0.0, 0.8]}, retries=0,
                             task_timeout_s=0.25)
        aggregate = run_sweep(spec, workers=2)
        record = aggregate.to_dict()
        assert record["cells"][0]["status"] == CELL_OK
        (failure,) = record["failed_cells"]
        assert failure["index"] == 1
        assert failure["error_kind"] == "timeout"


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        spec = selftest_spec()
        full = run_sweep(spec, workers=1)
        partial = full.to_dict()
        partial["cells"] = partial["cells"][:2]  # pretend 2 cells remain
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(partial))

        resumed = run_sweep(spec, workers=1,
                            resume=load_aggregate_dict(str(path)))
        assert strip_timing(resumed.to_dict()) == strip_timing(full.to_dict())

    def test_resume_reruns_failed_cells(self):
        spec = selftest_spec(grid={"fail_attempts": [0, 1]}, retries=0)
        first = run_sweep(spec, workers=1)
        assert not first.ok

        # Same fingerprint, more retries: the failed cell gets rerun
        # with a fresh attempt budget and now succeeds.
        retry_spec = selftest_spec(grid={"fail_attempts": [0, 1]}, retries=2)
        resumed = run_sweep(retry_spec, workers=1, resume=first.to_dict())
        assert resumed.ok
        assert resumed.cells[1].attempts == 2

    def test_resume_refuses_foreign_aggregate(self):
        foreign = run_sweep(selftest_spec(seed=999), workers=1)
        with pytest.raises(SweepResumeError, match="fingerprint"):
            completed_results(selftest_spec(), foreign.to_dict())


class TestArtifact:
    def test_aggregate_is_json_round_trippable(self, tmp_path):
        aggregate = run_sweep(selftest_spec(), workers=1)
        path = tmp_path / "aggregate.json"
        aggregate.save(str(path))
        loaded = load_aggregate_dict(str(path))
        assert loaded == json.loads(json.dumps(aggregate.to_dict()))
        assert loaded["kind"] == "sweep-aggregate"

    def test_strip_timing_removes_only_timing(self):
        record = run_sweep(selftest_spec(), workers=1).to_dict()
        stripped = strip_timing(record)
        assert "timing" not in stripped
        assert all("wall_time_s" not in cell and "attempts" not in cell
                   for cell in stripped["cells"])
        assert stripped["cells"][0]["result"] \
            == record["cells"][0]["result"]

    def test_format_aggregate_mentions_failures(self):
        spec = selftest_spec(grid={"fail_attempts": [0, 9]}, retries=0)
        text = format_aggregate(run_sweep(spec, workers=1).to_dict())
        assert "FAILED" in text
        assert "failed cells: 1" in text

    def test_bench_snapshot_from_sweep(self):
        from repro.bench.store import snapshot_from_sweep

        record = run_sweep(selftest_spec(), workers=1).to_dict()
        snapshot = snapshot_from_sweep(record)
        assert snapshot.area == "sweep_runner-test"
        assert snapshot.metrics["sweep_failed_cells"].mean == 0.0
        assert snapshot.metrics["sweep_failed_cells"].direction == "lower"
        checksum = snapshot.metrics["checksum"]
        assert checksum.n == 4
        assert checksum.direction == "info"
