"""End-to-end ``repro sweep`` CLI coverage."""

import json

from repro.cli import main


def _write_spec(tmp_path, record):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(record))
    return str(path)


SPEC = {
    "name": "cli-sweep", "scenario": "selftest", "seed": 4,
    "base": {"work": 8}, "grid": {"echo": ["x", "y"]},
}


def test_sweep_runs_and_saves_artifact(tmp_path, capsys):
    spec = _write_spec(tmp_path, SPEC)
    out = tmp_path / "aggregate.json"
    code = main(["sweep", spec, "--workers", "1",
                 "--output", str(out)])
    assert code == 0
    record = json.loads(out.read_text())
    assert record["kind"] == "sweep-aggregate"
    assert record["summary"] == {"total": 2, "ok": 2, "failed": 0,
                                 "retried": 0}
    stdout = capsys.readouterr().out
    assert "cli-sweep" in stdout


def test_sweep_resume_completes_partial(tmp_path, capsys):
    spec = _write_spec(tmp_path, SPEC)
    full = tmp_path / "full.json"
    assert main(["sweep", spec, "--workers", "1",
                 "--output", str(full)]) == 0

    partial_record = json.loads(full.read_text())
    partial_record["cells"] = partial_record["cells"][:1]
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps(partial_record))

    resumed = tmp_path / "resumed.json"
    assert main(["sweep", spec, "--workers", "1",
                 "--resume", str(partial),
                 "--output", str(resumed)]) == 0
    resumed_record = json.loads(resumed.read_text())
    assert resumed_record["summary"]["ok"] == 2
    capsys.readouterr()


def test_sweep_failure_exits_nonzero(tmp_path, capsys):
    record = dict(SPEC, grid={"fail_attempts": [0, 99]}, retries=0)
    spec = _write_spec(tmp_path, record)
    assert main(["sweep", spec, "--workers", "1"]) == 1
    assert "failed cells: 1" in capsys.readouterr().out


def test_sweep_bad_spec_exits_two(tmp_path, capsys):
    spec = _write_spec(tmp_path, dict(SPEC, scenario="no-such"))
    assert main(["sweep", spec, "--workers", "1"]) == 2
    capsys.readouterr()


def test_sweep_writes_bench_snapshot(tmp_path, capsys):
    spec = _write_spec(tmp_path, SPEC)
    bench_dir = tmp_path / "bench"
    assert main(["sweep", spec, "--workers", "1",
                 "--bench-dir", str(bench_dir)]) == 0
    snapshots = list(bench_dir.glob("*.json"))
    assert len(snapshots) == 1
    snapshot = json.loads(snapshots[0].read_text())
    assert snapshot["area"] == "sweep_cli-sweep"
    capsys.readouterr()
