"""Determinism: worker count and scheduling must not leak into results.

The ISSUE's contract: the same spec + seed run with ``--workers 1`` and
``--workers 4`` produce identical aggregates modulo wall-clock fields,
and a worker that raises mid-sweep is retried and the final aggregate
marks the cell -- never drops it silently.
"""

import json

from repro.sweep import SweepSpec, run_sweep, strip_timing


def _stripped(spec, **kwargs):
    return strip_timing(run_sweep(spec, **kwargs).to_dict())


class TestWorkerCountInvariance:
    def test_selftest_sweep_identical_across_worker_counts(self):
        spec = SweepSpec.from_dict({
            "name": "det", "scenario": "selftest", "seed": 7,
            "grid": {"work": [8, 16, 32], "echo": ["a", "b"]},
        })
        serial = _stripped(spec, workers=1)
        parallel = _stripped(spec, workers=4)
        assert serial == parallel
        # And byte-identical once serialized, not merely == as dicts.
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_real_scenario_sweep_identical_across_worker_counts(self):
        # A genuine netsim experiment: in-network retransmission over a
        # tiny 2x2 grid, small transfers to keep this inside tier-1 time.
        spec = SweepSpec.from_dict({
            "name": "det-retx", "scenario": "retransmission", "seed": 42,
            "base": {"total_bytes": 30000},
            "grid": {"loss_rate": [0.01, 0.05],
                     "lossy_delay": [0.002, 0.01]},
        })
        serial = _stripped(spec, workers=1)
        parallel = _stripped(spec, workers=4)
        assert serial == parallel

    def test_repeated_serial_runs_identical(self):
        spec = SweepSpec.from_dict({
            "name": "det", "scenario": "selftest", "seed": 3,
            "grid": {"work": [4, 8]},
        })
        assert _stripped(spec, workers=1) == _stripped(spec, workers=1)


class TestFaultsDoNotPerturbResults:
    def test_raising_worker_is_retried_and_marked(self):
        # Cell 1 raises once, then succeeds.  Its payload must match the
        # clean run exactly except for the retry bookkeeping, and the
        # aggregate must mark the retry rather than hide it.
        flaky = SweepSpec.from_dict({
            "name": "det", "scenario": "selftest", "seed": 7,
            "base": {"work": 8}, "grid": {"fail_attempts": [0, 1, 0]},
            "retry_backoff_s": 0.0,
        })
        aggregate = run_sweep(flaky, workers=2)
        assert aggregate.ok
        assert aggregate.cells[1].attempts == 2
        assert aggregate.to_dict()["summary"]["retried"] == 1

    def test_hard_crash_does_not_change_sibling_results(self):
        base = {"name": "det", "scenario": "selftest", "seed": 7,
                "base": {"work": 8}, "retry_backoff_s": 0.0}
        clean = SweepSpec.from_dict(
            {**base, "grid": {"exit_attempts": [0, 0, 0, 0]}})
        crashy = SweepSpec.from_dict(
            {**base, "grid": {"exit_attempts": [0, 1, 0, 0]}})

        clean_cells = run_sweep(clean, workers=2).cells
        crashy_cells = run_sweep(crashy, workers=2).cells
        for before, after in zip(clean_cells, crashy_cells):
            assert after.status == "ok"
            # The deterministic payload (checksum over seed+params) is
            # unchanged by the pool breaking and rebuilding next door.
            assert after.result["checksum"] == before.result["checksum"]
            assert after.result["first"] == before.result["first"]
