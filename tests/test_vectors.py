"""The checked-in conformance vectors stay fresh and pass execution.

Mirrors the CI ``vectors-freshness`` job: regenerating the vectors must
be a byte-for-byte no-op, and every vector must execute against the real
codecs (round trips for the well-formed suites, WireFormatError with the
pinned message substring for the malformed suite).
"""

from repro import vectors


class TestCheckedInVectors:
    def test_vectors_are_fresh_and_conformant(self):
        assert vectors.check(vectors.DEFAULT_DIR) == []

    def test_every_suite_is_present_and_non_trivial(self):
        built = vectors.build_vectors()
        assert set(built) == set(vectors.SUITES)
        for suite, entries in built.items():
            assert len(entries) >= 2, suite

    def test_generation_is_deterministic(self):
        first = vectors.build_vectors()
        second = vectors.build_vectors()
        assert first == second
