"""Seeded differential suite: three quACK implementations, one story.

Pure stdlib ``random`` with pinned seeds (no hypothesis): every case is
reproducible from its parametrized seed alone, which keeps this suite
usable as a bisection tool.  The echo strawman is the trivially correct
oracle; :class:`PowerSumQuack` (the paper's construction) and
:class:`QuackBank` (the vectorized multi-flow variant, via
``snapshot``) must agree with it -- and with each other -- across
random drop patterns, including:

* count wraparound at the ``c``-bit boundary (absolute counts exceed
  ``2**c`` but the count *difference* stays decodable);
* ``m == t`` -- exactly-at-threshold decode, the paper's boundary case;
* ``m > t`` -- overflow must be *detected*, never mis-decoded.
"""

import random

import pytest

from repro.quack.bank import QuackBank
from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack
from repro.quack.strawman import EchoQuack, HashQuack

BITS = 32
SEEDS = range(12)


def _random_case(seed: int, n: int, loss_percent: int):
    """One seeded workload: a send log and the surviving subset."""
    rng = random.Random(seed)
    sent = [rng.getrandbits(BITS) for _ in range(n)]
    received = [value for value in sent
                if rng.randrange(100) >= loss_percent]
    return sent, received


def _power_sum_of(received, threshold: int, count_bits: int = 16):
    quack = PowerSumQuack(threshold=threshold, bits=BITS,
                          count_bits=count_bits)
    quack.insert_many(received)
    return quack


def _bank_snapshot_of(received, threshold: int, count_bits: int = 16):
    bank = QuackBank(num_flows=3, threshold=threshold, bits=BITS,
                     count_bits=count_bits)
    # Interleave a decoy flow so cross-flow isolation is also on trial.
    for i, identifier in enumerate(received):
        bank.observe(1, identifier)
        bank.observe(0, (identifier * 2654435761) & 0xFFFFFFFF)
    return bank.snapshot(1)


class TestRandomDropAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("loss_percent", [0, 3, 20, 60])
    def test_all_schemes_agree(self, seed, loss_percent):
        sent, received = _random_case(seed * 7919 + loss_percent,
                                      n=60, loss_percent=loss_percent)
        truth = EchoQuack(bits=BITS)
        truth.insert_many(received)
        oracle = truth.decode(sent)
        assert oracle.ok

        threshold = max(1, len(sent) - len(received))
        for build in (_power_sum_of, _bank_snapshot_of):
            quack = build(received, threshold)
            result = quack.decode(sent)
            assert result.ok, (seed, loss_percent, build.__name__)
            assert result.missing == oracle.missing
            assert result.num_missing == len(oracle.missing)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hash_strawman_agrees_on_small_instances(self, seed):
        sent, received = _random_case(seed + 31337, n=10, loss_percent=25)
        truth = EchoQuack(bits=BITS)
        truth.insert_many(received)
        hashq = HashQuack(bits=BITS)
        hashq.insert_many(received)
        power = _power_sum_of(received, threshold=max(1, len(sent)
                                                     - len(received)))
        assert hashq.decode(sent).missing == truth.decode(sent).missing \
            == power.decode(sent).missing


class TestCountWraparound:
    """Absolute counts past ``2**c`` must not disturb the decode."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_wrapped_counts_still_decode(self, seed):
        count_bits = 6  # wraps at 64
        n = 150         # counts wrap twice
        sent, received = _random_case(seed + 17, n=n, loss_percent=4)
        missing_count = len(sent) - len(received)
        threshold = max(1, missing_count)
        assert threshold < (1 << count_bits)

        truth = EchoQuack(bits=BITS)
        truth.insert_many(received)
        oracle = truth.decode(sent)

        for build in (_power_sum_of, _bank_snapshot_of):
            quack = build(received, threshold, count_bits=count_bits)
            # The on-wire count is the wrapped residue...
            assert quack.count == len(received) % (1 << count_bits)
            # ...but the count *difference* is below 2**c, so decoding
            # recovers the true missing set (paper, Section 3.2).
            result = quack.decode(sent)
            assert result.ok, (seed, build.__name__)
            assert result.missing == oracle.missing

    def test_exactly_at_the_wrap_boundary(self):
        count_bits = 4
        sent, _ = _random_case(5, n=16, loss_percent=0)
        received = sent[:]  # none missing; count wraps to exactly 0
        quack = _power_sum_of(received, threshold=3,
                              count_bits=count_bits)
        assert quack.count == 0
        result = quack.decode(sent)
        assert result.ok
        assert result.missing == ()


class TestThresholdBoundary:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exactly_at_threshold_decodes(self, seed):
        """``m == t``: the last workload the quACK is sized to handle."""
        threshold = 8
        rng = random.Random(seed + 4242)
        sent = [rng.getrandbits(BITS) for _ in range(50)]
        dropped = set(rng.sample(range(len(sent)), threshold))
        received = [value for i, value in enumerate(sent)
                    if i not in dropped]
        oracle = tuple(sorted(sent[i] for i in dropped))
        for build in (_power_sum_of, _bank_snapshot_of):
            result = build(received, threshold).decode(sent)
            assert result.ok, (seed, build.__name__)
            assert result.num_missing == threshold
            assert result.missing == oracle

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("overflow", [1, 5])
    def test_over_threshold_is_detected(self, seed, overflow):
        """``m > t``: both implementations must *report* the overflow."""
        threshold = 6
        rng = random.Random(seed * 13 + overflow)
        sent = [rng.getrandbits(BITS) for _ in range(40)]
        dropped = set(rng.sample(range(len(sent)), threshold + overflow))
        received = [value for i, value in enumerate(sent)
                    if i not in dropped]
        for build in (_power_sum_of, _bank_snapshot_of):
            result = build(received, threshold).decode(sent)
            assert not result.ok, (seed, build.__name__)
            assert result.status is DecodeStatus.THRESHOLD_EXCEEDED
            assert result.num_missing == threshold + overflow
            assert result.missing == ()
