"""Tests for the shared quACK types (repro.quack.base)."""

import pytest

from repro.quack.base import DecodeResult, DecodeStatus, Quack, QuackScheme


class TestDecodeResult:
    def test_defaults_are_ok_and_empty(self):
        result = DecodeResult()
        assert result.ok
        assert result.is_determinate
        assert result.missing == ()
        assert result.num_missing == 0

    def test_failure_statuses_not_ok(self):
        for status in (DecodeStatus.THRESHOLD_EXCEEDED,
                       DecodeStatus.INCONSISTENT):
            assert not DecodeResult(status=status).ok

    def test_indeterminate_flag(self):
        result = DecodeResult(indeterminate=(((1, 2), 1),), num_missing=1)
        assert not result.is_determinate
        assert result.ok

    def test_frozen(self):
        result = DecodeResult()
        with pytest.raises(AttributeError):
            result.num_missing = 5  # type: ignore[misc]


class TestQuackInterface:
    def test_default_insert_many_loops(self):
        inserted = []

        class Minimal(Quack):
            def insert(self, identifier):
                inserted.append(identifier)

            @property
            def count(self):
                return len(inserted)

            def wire_size_bits(self):
                return 0

            def decode(self, sent_log):
                return DecodeResult()

        quack = Minimal()
        quack.insert_many([3, 1, 4, 1])
        assert inserted == [3, 1, 4, 1]
        assert quack.count == 4

    def test_scheme_values_distinct(self):
        assert len({s.value for s in QuackScheme}) == 3
