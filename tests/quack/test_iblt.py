"""Tests for the IBLT-based quACK extension (repro.quack.iblt)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArithmeticDomainError
from repro.quack.base import DecodeStatus
from repro.quack.iblt import IbltQuack


def distinct_ids(rng, n):
    out = set()
    while len(out) < n:
        out.add(rng.getrandbits(32))
    return list(out)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ArithmeticDomainError):
            IbltQuack(0)
        with pytest.raises(ArithmeticDomainError):
            IbltQuack(10, hash_count=1)
        with pytest.raises(ArithmeticDomainError):
            IbltQuack(10, cells_per_diff=0.9)

    def test_count_tracks_inserts_and_removes(self):
        quack = IbltQuack(8)
        quack.insert(5)
        quack.insert(6)
        quack.remove(5)
        assert quack.count == 1

    def test_remove_inverts_insert_exactly(self):
        quack = IbltQuack(8)
        quack.insert(123456)
        quack.remove(123456)
        assert all(cell.is_empty() for cell in quack.cells)

    def test_copy_is_independent(self):
        quack = IbltQuack(8)
        quack.insert(1)
        clone = quack.copy()
        clone.insert(2)
        assert quack.count == 1 and clone.count == 2

    def test_wire_size_larger_than_power_sum(self):
        from repro.quack.power_sum import PowerSumQuack
        iblt = IbltQuack(20, bits=32)
        power = PowerSumQuack(20, bits=32)
        assert iblt.wire_size_bits() > 2 * power.wire_size_bits()

    def test_incompatible_subtraction_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            IbltQuack(8) - IbltQuack(16)
        with pytest.raises(ArithmeticDomainError):
            IbltQuack(8) - IbltQuack(8, salt=b"other")


class TestPeeling:
    def test_simple_difference(self):
        rng = random.Random(1)
        ids = distinct_ids(rng, 50)
        receiver = IbltQuack(10)
        receiver.insert_many(ids[5:])
        result = receiver.decode(ids)
        assert result.ok
        assert sorted(result.missing) == sorted(ids[:5])

    def test_empty_difference(self):
        rng = random.Random(2)
        ids = distinct_ids(rng, 30)
        receiver = IbltQuack(10)
        receiver.insert_many(ids)
        result = receiver.decode(ids)
        assert result.ok and result.missing == ()

    def test_peel_reports_negatives(self):
        receiver = IbltQuack(10)
        receiver.insert(999)  # receiver saw something never sent
        sender = IbltQuack(10)
        sender.insert(111)
        delta = sender - receiver
        positives, negatives, complete = delta.peel()
        assert complete
        assert positives == [111]
        assert negatives == [999]

    def test_decode_flags_unsent_receipts_as_inconsistent(self):
        receiver = IbltQuack(10)
        receiver.insert(999)
        result = receiver.decode([111])
        assert result.status is DecodeStatus.INCONSISTENT

    def test_overload_is_reported_not_wrong(self):
        """Way past capacity, peeling stalls -- and says so."""
        rng = random.Random(3)
        ids = distinct_ids(rng, 400)
        receiver = IbltQuack(4)  # tiny capacity
        receiver.insert_many(ids[200:])
        result = receiver.decode(ids)  # 200 missing >> 4
        assert result.status is DecodeStatus.INCONSISTENT

    def test_duplicates_in_difference_fail_loudly(self):
        """The IBLT's documented multiset limitation."""
        receiver = IbltQuack(8)
        sent = [42, 42, 7]  # identifier 42 sent twice, both missing
        receiver.insert(7)
        result = receiver.decode(sent)
        assert result.status is DecodeStatus.INCONSISTENT

    @given(seed=st.integers(min_value=0, max_value=10 ** 9),
           missing=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_random_sets_within_capacity(self, seed, missing):
        rng = random.Random(seed)
        ids = distinct_ids(rng, 200)
        receiver = IbltQuack(20)
        receiver.insert_many(ids[missing:])
        result = receiver.decode(ids)
        if result.ok:  # peeling succeeds w.h.p.; never silently wrong
            assert sorted(result.missing) == sorted(ids[:missing])
        else:
            assert result.status is DecodeStatus.INCONSISTENT

    def test_success_rate_at_capacity(self):
        """At the design threshold, peeling should almost always work."""
        successes = 0
        trials = 50
        for seed in range(trials):
            rng = random.Random(seed)
            ids = distinct_ids(rng, 100)
            receiver = IbltQuack(20)
            receiver.insert_many(ids[20:])
            if receiver.decode(ids).ok:
                successes += 1
        assert successes >= trials * 0.9


class TestAgainstPowerSums:
    @given(seed=st.integers(min_value=0, max_value=10 ** 9))
    @settings(max_examples=25, deadline=None)
    def test_agreement_on_distinct_identifier_sets(self, seed):
        from repro.quack.power_sum import PowerSumQuack
        rng = random.Random(seed)
        ids = distinct_ids(rng, 80)
        m = rng.randrange(10)
        iblt = IbltQuack(16)
        power = PowerSumQuack(16)
        iblt.insert_many(ids[m:])
        power.insert_many(ids[m:])
        iblt_result = iblt.decode(ids)
        power_result = power.decode(ids)
        assert power_result.ok
        if iblt_result.ok:
            assert iblt_result.missing == power_result.missing
