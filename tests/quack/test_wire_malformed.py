"""Deterministic malformed-input coverage for quack/wire.decode.

Complements the hypothesis fuzz in ``test_wire_fuzz.py`` with the
specific hostile shapes the sidecar channel produces in practice --
truncation, zero-length datagrams, bit flips, checksum damage -- and
pins the contract: every one raises :class:`WireFormatError` (never
``IndexError``/``ValueError``/``struct.error``) and never yields a bogus
quACK when the frame is checksummed.
"""

import zlib

import pytest

from repro.errors import WireFormatError
from repro.quack import wire
from repro.quack.power_sum import PowerSumQuack
from repro.quack.strawman import EchoQuack, HashQuack


def checksummed_frame(values=(11, 22, 33), threshold=4):
    quack = PowerSumQuack(threshold=threshold)
    quack.insert_many(values)
    return wire.encode(quack, include_checksum=True)


class TestTruncation:
    def test_zero_length(self):
        with pytest.raises(WireFormatError, match="too short"):
            wire.decode(b"")

    @pytest.mark.parametrize("length", range(1, 5))
    def test_shorter_than_header(self, length):
        frame = checksummed_frame()[:length]
        with pytest.raises(WireFormatError):
            wire.decode(frame)

    def test_every_truncation_of_a_checksummed_frame(self):
        frame = checksummed_frame()
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                wire.decode(frame[:cut])

    def test_every_truncation_of_a_bare_frame(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([7, 8, 9])
        frame = wire.encode(quack)
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                wire.decode(frame[:cut])

    def test_truncated_echo_and_hash(self):
        echo = EchoQuack()
        echo.insert_many([1, 2, 3])
        hashed = HashQuack()
        hashed.insert_many([1, 2, 3])
        for quack in (echo, hashed):
            frame = wire.encode(quack, include_checksum=True)
            for cut in range(5, len(frame)):
                with pytest.raises(WireFormatError):
                    wire.decode(frame[:cut])


class TestBitFlips:
    def test_any_single_bit_flip_in_a_checksummed_frame_is_caught(self):
        """The whole point of the CRC: with it, *no* single bit flip can
        produce a quACK object."""
        frame = checksummed_frame()
        for position in range(len(frame) * 8):
            mangled = bytearray(frame)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                wire.decode(bytes(mangled))

    def test_checksum_mismatch_names_the_problem(self):
        frame = bytearray(checksummed_frame())
        frame[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum mismatch"):
            wire.decode(bytes(frame))

    def test_forged_checksum_over_mangled_body_still_rejected(self):
        """Re-computing the CRC over a corrupted body yields a frame that
        passes the checksum but must still fail structural validation or
        decode to a structurally valid quACK -- never crash."""
        frame = bytearray(checksummed_frame()[:-4])
        frame[6] ^= 0x40  # damage the threshold field
        forged = bytes(frame) + zlib.crc32(bytes(frame)).to_bytes(4, "big")
        try:
            decoded = wire.decode(forged)
        except WireFormatError:
            return
        assert isinstance(decoded, PowerSumQuack)


class TestHostileParameters:
    def test_bogus_scheme(self):
        with pytest.raises(WireFormatError, match="unknown scheme"):
            wire.decode(b"qK\x01\x63\x01" + b"\x00" * 8)

    def test_bogus_version(self):
        with pytest.raises(WireFormatError, match="unsupported version"):
            wire.decode(b"qK\x07\x01\x01" + b"\x00" * 8)

    def test_zero_bits_power_sum_is_a_wire_error_not_a_crash(self):
        """bits=0 reaches the PowerSumQuack constructor, which raises a
        domain error; the decoder must convert it to WireFormatError."""
        body = bytes([0, 0, 2, 8]) + b"\x00"  # bits=0, t=2, count_bits=8
        frame = b"qK\x01\x01\x01" + body
        with pytest.raises(WireFormatError):
            wire.decode(frame)

    def test_crc_flag_without_room_for_crc(self):
        frame = b"qK\x01\x01\x02"  # CRC flag set, 5-byte frame
        with pytest.raises(WireFormatError, match="checksum"):
            wire.decode(frame)

    def test_garbage_is_never_a_quack(self):
        for blob in (b"\x00" * 40, b"\xff" * 40, b"qJ" + b"\x01" * 20):
            with pytest.raises(WireFormatError):
                wire.decode(blob)


class TestChecksumRoundTrip:
    def test_checksummed_frame_decodes_identically(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([101, 202, 303])
        frame = wire.encode(quack, include_checksum=True)
        decoded = wire.decode(frame)
        assert decoded.power_sums == quack.power_sums
        assert decoded.count == quack.count

    def test_checksum_costs_exactly_four_bytes(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([1, 2, 3])
        bare = wire.encode(quack)
        checked = wire.encode(quack, include_checksum=True)
        assert len(checked) == len(bare) + wire.CRC_BYTES

    def test_bare_frames_still_decode(self):
        """Backward compatibility: no flag, no CRC expected."""
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([5, 6])
        assert wire.decode(wire.encode(quack)).count == 2

    def test_count_omitted_with_checksum(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([5, 6, 7])
        frame = wire.encode(quack, include_count=False,
                            include_checksum=True)
        decoded = wire.decode(frame, implicit_count=3)
        assert decoded.count == 3
