"""Tests for the strawman quACKs (repro.quack.strawman)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, InconsistentQuackError
from repro.quack.base import DecodeStatus
from repro.quack.strawman import EchoQuack, HashQuack, _digest_sorted

ids32 = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestEchoQuack:
    def test_decode_is_exact_multiset_difference(self):
        q = EchoQuack()
        q.insert_many([5, 5, 9])
        result = q.decode([5, 5, 5, 9, 12])
        assert result.ok
        assert list(result.missing) == [5, 12]

    def test_count_and_size(self):
        q = EchoQuack(bits=32)
        q.insert_many(range(10))
        assert q.count == 10
        assert q.wire_size_bits() == 320

    def test_size_grows_with_every_packet(self):
        # The "extraordinary bandwidth" property: size is linear in n.
        q = EchoQuack(bits=16)
        sizes = []
        for i in range(5):
            q.insert(i)
            sizes.append(q.wire_size_bits())
        assert sizes == [16, 32, 48, 64, 80]

    def test_received_more_than_sent_is_inconsistent(self):
        q = EchoQuack()
        q.insert_many([1, 1])
        result = q.decode([1])
        assert result.status is DecodeStatus.INCONSISTENT

    def test_received_copy_is_snapshot(self):
        q = EchoQuack()
        q.insert(3)
        snapshot = q.received
        q.insert(4)
        assert sum(snapshot.values()) == 1

    @given(sent=st.lists(ids32, min_size=0, max_size=50),
           drop=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_random_multisets(self, sent, drop):
        drop = min(drop, len(sent))
        rng = random.Random(42)
        missing_idx = set(rng.sample(range(len(sent)), drop))
        q = EchoQuack()
        q.insert_many(v for i, v in enumerate(sent) if i not in missing_idx)
        result = q.decode(sent)
        assert result.ok
        assert sorted(result.missing) == sorted(sent[i] for i in missing_idx)


class TestHashQuack:
    def test_wire_size_is_constant(self):
        # Table 2: 256 + c = 272 bits regardless of n.
        q = HashQuack(count_bits=16)
        assert q.wire_size_bits() == 272
        q.insert_many(range(100))
        assert q.wire_size_bits() == 272

    def test_digest_order_independent(self):
        a = HashQuack()
        b = HashQuack()
        for v in [5, 1, 9]:
            a.insert(v)
        for v in [9, 5, 1]:
            b.insert(v)
        assert a.digest() == b.digest()

    def test_decode_small_instance(self):
        sent = [10, 20, 30, 40, 50]
        q = HashQuack()
        q.insert_many([10, 30, 50])
        result = q.decode(sent)
        assert result.ok
        assert sorted(result.missing) == [20, 40]

    def test_decode_nothing_missing(self):
        sent = [1, 2, 3]
        q = HashQuack()
        q.insert_many(sent)
        result = q.decode(sent)
        assert result.ok and result.missing == ()

    def test_decode_refuses_infeasible_search(self):
        q = HashQuack(max_subsets=100)
        q.insert_many(range(10))
        with pytest.raises(DecodeError, match="infeasible"):
            q.decode(list(range(30)))  # C(30, 20) >> 100

    def test_decode_wrong_universe(self):
        q = HashQuack()
        q.insert_many([111, 222])
        with pytest.raises(InconsistentQuackError):
            q.decode([1, 2, 3])  # no subset matches

    def test_more_received_than_sent(self):
        q = HashQuack()
        q.insert_many([1, 2, 3])
        assert q.decode([1]).status is DecodeStatus.INCONSISTENT

    def test_mismatched_full_set(self):
        q = HashQuack()
        q.insert_many([1, 2, 3])
        assert q.decode([1, 2, 4]).status is DecodeStatus.INCONSISTENT

    def test_duplicates(self):
        sent = [7, 7, 8]
        q = HashQuack()
        q.insert_many([7, 8])
        result = q.decode(sent)
        assert result.ok and list(result.missing) == [7]


class TestHashQuackFrozen:
    def test_from_digest_roundtrip(self):
        original = HashQuack()
        original.insert_many([4, 5, 6])
        frozen = HashQuack.from_digest(original.digest(), original.count)
        assert frozen.digest() == original.digest()
        assert frozen.count == 3
        result = frozen.decode([3, 4, 5, 6])
        assert result.ok and list(result.missing) == [3]

    def test_frozen_rejects_insert(self):
        frozen = HashQuack.from_digest(b"\0" * 32, 1)
        with pytest.raises(DecodeError):
            frozen.insert(1)
        with pytest.raises(DecodeError):
            frozen.insert_many([1, 2])


class TestCostModel:
    def test_subsets_to_search(self):
        assert HashQuack.subsets_to_search(1000, 20) == math.comb(1000, 20)
        assert HashQuack.subsets_to_search(5, 0) == 1

    def test_estimate_decode_seconds(self):
        # At 1e6 digests/s the n=1000, t=20 search is astronomically long
        # (the paper's "infeasible" claim).
        seconds = HashQuack.estimate_decode_seconds(1000, 20, 1e6)
        assert seconds / 86_400 > 1e9  # over a billion days

    def test_estimate_requires_positive_rate(self):
        with pytest.raises(ValueError):
            HashQuack.estimate_decode_seconds(10, 2, 0)


class TestDigestHelper:
    def test_width_respected(self):
        assert _digest_sorted([1], 32) != _digest_sorted([1], 16)

    def test_empty(self):
        import hashlib
        assert _digest_sorted([], 32) == hashlib.sha256().digest()
