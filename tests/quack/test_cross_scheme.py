"""Cross-scheme property tests: all three quACKs must tell the same story.

The echo quACK is trivially correct (it ships the whole multiset), so it
serves as the ground-truth oracle for the power-sum construction across
randomized workloads, including nasty ones (duplicates, aliased
identifiers, tiny fields with real collisions).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack
from repro.quack.strawman import EchoQuack, HashQuack


@given(seed=st.integers(min_value=0, max_value=10 ** 9),
       n=st.integers(min_value=0, max_value=80),
       loss_percent=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_power_sum_matches_echo_oracle(seed, n, loss_percent):
    rng = random.Random(seed)
    sent = [rng.getrandbits(32) for _ in range(n)]
    received = [v for v in sent if rng.randrange(100) >= loss_percent]
    num_missing = n - len(received)

    echo = EchoQuack()
    echo.insert_many(received)
    truth = echo.decode(sent)

    threshold = max(1, num_missing)
    power = PowerSumQuack(threshold=threshold)
    power.insert_many(received)
    result = power.decode(sent)

    assert result.ok
    assert result.missing == truth.missing
    assert result.num_missing == len(truth.missing)


@given(seed=st.integers(min_value=0, max_value=10 ** 9))
@settings(max_examples=20, deadline=None)
def test_power_sum_matches_hash_oracle_small(seed):
    rng = random.Random(seed)
    sent = [rng.getrandbits(32) for _ in range(12)]
    missing_idx = set(rng.sample(range(12), 2))
    received = [v for i, v in enumerate(sent) if i not in missing_idx]

    hash_quack = HashQuack(max_subsets=10_000)
    hash_quack.insert_many(received)
    truth = hash_quack.decode(sent)

    power = PowerSumQuack(threshold=4)
    power.insert_many(received)
    result = power.decode(sent)

    assert result.ok and truth.ok
    assert result.missing == truth.missing


@given(seed=st.integers(min_value=0, max_value=10 ** 9),
       n=st.integers(min_value=1, max_value=60))
@settings(max_examples=40, deadline=None)
def test_tiny_field_collisions_never_lie(seed, n):
    """With 8-bit identifiers collisions are routine; the decoder must
    report them as indeterminate rather than miscounting."""
    rng = random.Random(seed)
    sent = [rng.getrandbits(8) for _ in range(n)]
    num_missing = rng.randrange(min(n, 6) + 1)
    missing_idx = set(rng.sample(range(n), num_missing))
    received = [v for i, v in enumerate(sent) if i not in missing_idx]

    power = PowerSumQuack(threshold=max(1, num_missing), bits=8)
    power.insert_many(received)
    result = power.decode(sent)

    if result.status is DecodeStatus.INCONSISTENT:
        # 8-bit identifiers can alias mod 251 in ways that make the
        # polynomial unsolvable over the log; that is a *reported* failure,
        # never a wrong answer.
        return
    assert result.ok
    determinate = len(result.missing)
    ambiguous = sum(count for _, count in result.indeterminate)
    assert determinate + ambiguous == num_missing
    # Every determinate missing identifier really was sent.
    sent_multiset = sorted(sent)
    for identifier in result.missing:
        assert identifier in sent_multiset
