"""Tests for the vectorized multi-flow QuackBank."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArithmeticDomainError
from repro.quack.bank import QuackBank
from repro.quack.power_sum import PowerSumQuack


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ArithmeticDomainError):
            QuackBank(0, 4)
        with pytest.raises(ArithmeticDomainError):
            QuackBank(4, 0)
        with pytest.raises(ArithmeticDomainError):
            QuackBank(4, 4, bits=64)

    def test_mismatched_batch_shapes(self):
        bank = QuackBank(2, 4)
        with pytest.raises(ArithmeticDomainError):
            bank.observe_batch([0, 1], [5])

    def test_flow_out_of_range(self):
        bank = QuackBank(2, 4)
        with pytest.raises(ArithmeticDomainError):
            bank.observe(2, 5)
        with pytest.raises(ArithmeticDomainError):
            bank.observe(-1, 5)

    def test_empty_batch_noop(self):
        bank = QuackBank(2, 4)
        bank.observe_batch([], [])
        assert bank.count(0) == 0


class TestScalarPathDifferential:
    """The direct scalar ``observe`` must track ``observe_batch`` exactly."""

    @given(observations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=2 ** 32 - 1)),
        max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_scalar_matches_batch(self, observations):
        scalar = QuackBank(4, threshold=6)
        batched = QuackBank(4, threshold=6)
        for flow, identifier in observations:
            scalar.observe(flow, identifier)
        if observations:
            batched.observe_batch(
                np.array([flow for flow, _ in observations]),
                np.array([ident for _, ident in observations],
                         dtype=np.uint64))
        for flow in range(4):
            assert scalar.power_sums(flow) == batched.power_sums(flow)
            assert scalar.count(flow) == batched.count(flow)

    def test_scalar_matches_batch_at_count_wrap(self):
        scalar = QuackBank(1, threshold=3, count_bits=4)
        batched = QuackBank(1, threshold=3, count_bits=4)
        rng = random.Random(99)
        ids = [rng.getrandbits(32) for _ in range(20)]  # wraps the 4-bit count
        for identifier in ids:
            scalar.observe(0, identifier)
        batched.observe_batch(np.zeros(20, dtype=np.int64),
                              np.array(ids, dtype=np.uint64))
        assert scalar.count(0) == batched.count(0) == 20 % 16
        assert scalar.power_sums(0) == batched.power_sums(0)

    def test_scalar_accepts_aliased_identifiers(self):
        # Identifiers in [p, 2**bits) reduce mod p on both paths.
        scalar = QuackBank(1, threshold=2, bits=16)
        batched = QuackBank(1, threshold=2, bits=16)
        top = (1 << 16) - 1
        scalar.observe(0, top)
        batched.observe_batch([0], [top])
        assert scalar.power_sums(0) == batched.power_sums(0)


class TestEquivalence:
    @given(observations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=2 ** 32 - 1)),
        max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_per_flow_quacks(self, observations):
        bank = QuackBank(4, threshold=5)
        references = [PowerSumQuack(5) for _ in range(4)]
        if observations:
            flows, ids = zip(*observations)
            bank.observe_batch(list(flows), list(ids))
            for flow, identifier in observations:
                references[flow].insert(identifier)
        for flow in range(4):
            assert bank.power_sums(flow) == references[flow].power_sums
            assert bank.count(flow) == references[flow].count
            assert bank.snapshot(flow) == references[flow]

    def test_incremental_batches_compose(self):
        bank = QuackBank(2, threshold=4)
        bank.observe_batch([0, 1, 0], [10, 20, 30])
        bank.observe_batch([1, 0], [40, 50])
        reference = PowerSumQuack(4)
        for v in (10, 30, 50):
            reference.insert(v)
        assert bank.snapshot(0) == reference

    def test_duplicate_flow_in_one_batch(self):
        bank = QuackBank(1, threshold=3)
        bank.observe_batch([0, 0, 0], [7, 7, 9])
        reference = PowerSumQuack(3)
        reference.insert_many([7, 7, 9])
        assert bank.snapshot(0) == reference


class TestDecodePath:
    def test_snapshot_decodes_against_log(self):
        rng = random.Random(3)
        sent = [rng.getrandbits(32) for _ in range(100)]
        bank = QuackBank(8, threshold=6)
        # Flow 5 receives everything except three packets.
        missing = set(rng.sample(range(100), 3))
        received = [v for i, v in enumerate(sent) if i not in missing]
        bank.observe_batch([5] * len(received), received)
        result = bank.snapshot(5).decode(sent)
        assert result.ok
        assert sorted(result.missing) == sorted(sent[i] for i in missing)

    def test_flows_isolated(self):
        bank = QuackBank(3, threshold=4)
        bank.observe_batch([0, 1, 2], [100, 200, 300])
        assert bank.count(0) == bank.count(1) == bank.count(2) == 1
        assert bank.power_sums(0) != bank.power_sums(1)

    def test_reset_flow(self):
        bank = QuackBank(2, threshold=4)
        bank.observe_batch([0, 1], [5, 6])
        bank.reset_flow(0)
        assert bank.count(0) == 0
        assert bank.power_sums(0) == (0, 0, 0, 0)
        assert bank.count(1) == 1  # untouched

    def test_count_wraps(self):
        bank = QuackBank(1, threshold=2, count_bits=4)
        bank.observe_batch([0] * 20, list(range(1, 21)))
        assert bank.count(0) == 20 % 16

    def test_numpy_inputs(self):
        bank = QuackBank(2, threshold=3)
        bank.observe_batch(np.array([0, 1]), np.array([9, 9],
                                                      dtype=np.uint64))
        assert bank.count(0) == 1

    def test_len_and_repr(self):
        bank = QuackBank(7, threshold=3)
        assert len(bank) == 7
        assert "7 flows" in repr(bank)
