"""Tests for the quACK delta decoder (repro.quack.decoder)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ArithmeticDomainError,
    InconsistentQuackError,
    ThresholdExceededError,
)
from repro.quack.base import DecodeStatus
from repro.quack.decoder import decode_delta
from repro.quack.power_sum import PowerSumQuack

P32 = 4_294_967_291


def make_delta(sent, received, threshold=10, bits=32):
    sender = PowerSumQuack(threshold, bits)
    receiver = PowerSumQuack(threshold, bits)
    sender.insert_many(sent)
    receiver.insert_many(received)
    return sender - receiver


class TestHappyPath:
    @pytest.mark.parametrize("method", ["candidates", "factor", "auto"])
    def test_recovers_missing(self, method):
        rng = random.Random(11)
        sent = [rng.getrandbits(32) for _ in range(200)]
        missing_idx = set(rng.sample(range(200), 7))
        received = [s for i, s in enumerate(sent) if i not in missing_idx]
        delta = make_delta(sent, received)
        result = decode_delta(delta, sent, method=method)
        assert result.ok
        assert sorted(result.missing) == sorted(sent[i] for i in missing_idx)
        assert result.num_missing == 7
        assert result.is_determinate

    def test_empty_difference(self):
        sent = [1, 2, 3]
        delta = make_delta(sent, sent)
        result = decode_delta(delta, sent)
        assert result.ok and result.missing == () and result.num_missing == 0

    def test_all_missing(self):
        sent = [10, 20, 30]
        delta = make_delta(sent, [])
        result = decode_delta(delta, sent)
        assert result.ok
        assert sorted(result.missing) == [10, 20, 30]

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=1, max_value=60),
           m_frac=st.floats(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_methods_agree(self, seed, n, m_frac):
        rng = random.Random(seed)
        sent = [rng.getrandbits(32) for _ in range(n)]
        m = min(int(m_frac * n), 10)
        missing_idx = set(rng.sample(range(n), m))
        received = [s for i, s in enumerate(sent) if i not in missing_idx]
        delta = make_delta(sent, received)
        by_candidates = decode_delta(delta, sent, method="candidates")
        by_factor = decode_delta(delta, sent, method="factor")
        assert by_candidates == by_factor
        assert by_candidates.ok

    def test_multiset_partial_duplicates(self):
        sent = [7, 7, 7, 8, 9]
        received = [7, 8, 9]
        delta = make_delta(sent, received)
        result = decode_delta(delta, sent)
        assert result.ok
        assert list(result.missing) == [7, 7]

    def test_zero_identifier_missing(self):
        # Identifier 0 contributes nothing to the sums; only the count
        # reveals it.  The polynomial gains a root at 0.
        sent = [0, 5, 6]
        received = [5, 6]
        delta = make_delta(sent, received)
        result = decode_delta(delta, sent)
        assert result.ok
        assert list(result.missing) == [0]

    def test_aliased_identifier_decodes_to_log_value(self):
        # P32 + 4 is congruent to 4 mod p; the log holds the raw value and
        # the decoder must hand back the raw value.
        raw = P32 + 4
        sent = [raw, 10]
        delta = make_delta(sent, [10])
        result = decode_delta(delta, sent)
        assert result.ok
        assert list(result.missing) == [raw]


class TestCollisions:
    def test_full_collision_group_missing_is_determinate(self):
        # Two distinct raw ids congruent mod p, both missing.
        a, b = 4, P32 + 4
        sent = [a, b, 100]
        delta = make_delta(sent, [100])
        result = decode_delta(delta, sent)
        assert result.ok
        assert sorted(result.missing) == sorted([a, b])
        assert result.is_determinate

    def test_partial_collision_group_is_indeterminate(self):
        a, b = 4, P32 + 4  # same residue
        sent = [a, b, 100]
        delta = make_delta(sent, [a, 100])  # only b missing -- ambiguous
        result = decode_delta(delta, sent)
        assert result.ok
        assert result.missing == ()
        assert result.indeterminate == (((a, b), 1),)
        assert not result.is_determinate
        assert result.num_missing == 1


class TestFailures:
    def test_threshold_exceeded(self):
        sent = list(range(1, 30))
        delta = make_delta(sent, sent[15:], threshold=5)
        result = decode_delta(delta, sent)
        assert result.status is DecodeStatus.THRESHOLD_EXCEEDED
        assert result.num_missing == 15

    def test_threshold_exceeded_raises(self):
        sent = list(range(1, 30))
        delta = make_delta(sent, sent[15:], threshold=5)
        with pytest.raises(ThresholdExceededError) as err:
            decode_delta(delta, sent, raise_on_failure=True)
        assert err.value.missing == 15 and err.value.threshold == 5

    def test_zero_count_nonzero_sums(self):
        delta = make_delta([1, 2], [1, 2])
        delta._sums[0] = 12345  # corrupt
        result = decode_delta(delta, [1, 2])
        assert result.status is DecodeStatus.INCONSISTENT
        with pytest.raises(InconsistentQuackError):
            decode_delta(delta, [1, 2], raise_on_failure=True)

    def test_missing_exceeds_log(self):
        sender = PowerSumQuack(10)
        receiver = PowerSumQuack(10)
        sender.insert_many([1, 2, 3, 4, 5])
        delta = sender - receiver
        result = decode_delta(delta, [1, 2])  # claims 5 missing of log 2
        assert result.status is DecodeStatus.INCONSISTENT

    def test_root_not_in_log(self):
        # Receiver saw a packet the sender never logged: sums subtract to
        # a polynomial whose root is absent from the log.
        sender = PowerSumQuack(5)
        receiver = PowerSumQuack(5)
        sender.insert_many([10, 20])
        receiver.insert(999)
        delta = sender - receiver
        result = decode_delta(delta, [10, 20])
        assert result.status is DecodeStatus.INCONSISTENT

    def test_unsolvable_polynomial(self):
        # A difference whose polynomial has no roots in the field at all.
        delta = PowerSumQuack(4, bits=8)  # p = 251
        delta._count = 2
        # Power sums of "x^2 + 1 = 0" ghosts: d1 = 0, d2 = -2 (sum of the
        # two imaginary roots' squares).  No element of GF(251) satisfies.
        delta._sums = [0, (251 - 2) % 251, 0, 0]
        result = decode_delta(delta, list(range(1, 100)))
        assert result.status is DecodeStatus.INCONSISTENT

    def test_unknown_method(self):
        delta = make_delta([1], [1])
        with pytest.raises(ArithmeticDomainError):
            decode_delta(delta, [1], method="quantum")


class TestAutoMethod:
    def test_auto_uses_candidates_for_small_logs(self):
        # Behavioral check: both must agree anyway, so assert decode works
        # at the boundary sizes.
        rng = random.Random(5)
        sent = [rng.getrandbits(32) for _ in range(100)]
        delta = make_delta(sent, sent[1:])
        assert decode_delta(delta, sent, method="auto").ok
