"""Tests for the quACK wire format (repro.quack.wire)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.quack import wire
from repro.quack.power_sum import PowerSumQuack
from repro.quack.strawman import EchoQuack, HashQuack

ids32 = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestPowerSumRoundTrip:
    @pytest.mark.parametrize("bits", [16, 24, 32, 64])
    def test_roundtrip_across_widths(self, bits):
        q = PowerSumQuack(threshold=5, bits=bits)
        q.insert_many([3, 2 ** (bits - 1), 17])
        decoded = wire.decode(wire.encode(q))
        assert decoded == q

    @given(values=st.lists(ids32, min_size=0, max_size=30),
           threshold=st.integers(min_value=1, max_value=12))
    @settings(max_examples=50)
    def test_roundtrip_random(self, values, threshold):
        q = PowerSumQuack(threshold=threshold)
        q.insert_many(values)
        assert wire.decode(wire.encode(q)) == q

    def test_frame_overhead_is_small(self):
        q = PowerSumQuack(threshold=20, bits=32, count_bits=16)
        frame = wire.encode(q)
        payload_bytes = q.wire_size_bits() // 8  # 82 (Table 2)
        assert payload_bytes == 82
        assert len(frame) - payload_bytes <= 16

    def test_count_omitted(self):
        """Section 4.3 (ACK reduction): 'we can omit c, which is always n'."""
        q = PowerSumQuack(threshold=4)
        q.insert_many([9, 9, 11])
        frame = wire.encode(q, include_count=False)
        full_frame = wire.encode(q, include_count=True)
        assert len(frame) == len(full_frame) - 2  # 16-bit count dropped
        restored = wire.decode(frame, implicit_count=3)
        assert restored == q

    def test_count_omitted_requires_context(self):
        q = PowerSumQuack(threshold=4)
        frame = wire.encode(q, include_count=False)
        with pytest.raises(WireFormatError):
            wire.decode(frame)

    def test_implicit_count_wraps_to_count_bits(self):
        q = PowerSumQuack(threshold=4, count_bits=8)
        for i in range(300):
            q.insert(i + 1)
        frame = wire.encode(q, include_count=False)
        restored = wire.decode(frame, implicit_count=300)
        assert restored.count == 300 % 256 == q.count


class TestEchoRoundTrip:
    def test_roundtrip(self):
        q = EchoQuack(bits=16)
        q.insert_many([1, 1, 500])
        decoded = wire.decode(wire.encode(q))
        assert isinstance(decoded, EchoQuack)
        assert decoded.received == q.received
        assert decoded.bits == 16

    def test_empty(self):
        decoded = wire.decode(wire.encode(EchoQuack()))
        assert decoded.count == 0


class TestHashRoundTrip:
    def test_roundtrip_decodes(self):
        q = HashQuack()
        q.insert_many([10, 30])
        restored = wire.decode(wire.encode(q))
        assert isinstance(restored, HashQuack)
        assert restored.digest() == q.digest()
        assert restored.count == 2
        result = restored.decode([10, 20, 30])
        assert result.ok and list(result.missing) == [20]


class TestMalformedFrames:
    def test_short_frame(self):
        with pytest.raises(WireFormatError):
            wire.decode(b"qK")

    def test_bad_magic(self):
        frame = bytearray(wire.encode(PowerSumQuack(2)))
        frame[0] = ord("X")
        with pytest.raises(WireFormatError, match="magic"):
            wire.decode(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(wire.encode(PowerSumQuack(2)))
        frame[2] = 99
        with pytest.raises(WireFormatError, match="version"):
            wire.decode(bytes(frame))

    def test_unknown_scheme(self):
        frame = bytearray(wire.encode(PowerSumQuack(2)))
        frame[3] = 77
        with pytest.raises(WireFormatError, match="scheme"):
            wire.decode(bytes(frame))

    def test_truncated_power_sums(self):
        frame = wire.encode(PowerSumQuack(4))
        with pytest.raises(WireFormatError):
            wire.decode(frame[:-3])

    def test_trailing_garbage(self):
        frame = wire.encode(PowerSumQuack(4))
        with pytest.raises(WireFormatError):
            wire.decode(frame + b"\x00")

    def test_non_residue_power_sum(self):
        q = PowerSumQuack(threshold=1, bits=32)
        frame = bytearray(wire.encode(q))
        frame[-4:] = b"\xff\xff\xff\xff"  # 2**32 - 1 >= p
        with pytest.raises(WireFormatError, match="residue"):
            wire.decode(bytes(frame))

    def test_truncated_echo(self):
        frame = wire.encode(EchoQuack())
        with pytest.raises(WireFormatError):
            wire.decode(frame[:-1] if len(frame) > 5 else frame + b"x")

    def test_unserializable_type(self):
        class FakeQuack:
            pass

        with pytest.raises(WireFormatError):
            wire.encode(FakeQuack())  # type: ignore[arg-type]


class TestFrameVersions:
    """Version 2 framing: the negotiated-feature byte, both directions."""

    def sample(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([11, 22, 33])
        return quack

    @pytest.mark.parametrize("checksum", [False, True])
    def test_v2_round_trips_every_scheme(self, checksum):
        # Echo/Hash quACKs compare by identity, so round trips are
        # asserted on the bytes: decode then re-encode reproduces the
        # frame exactly for every scheme.
        echo = EchoQuack()
        echo.insert_many([1, 2, 3])
        hashed = HashQuack()
        hashed.insert_many([1, 2, 3])
        for quack in (self.sample(), echo, hashed):
            frame = wire.encode(quack, include_checksum=checksum,
                                version=2, features=0x07)
            reencoded = wire.encode(wire.decode(frame),
                                    include_checksum=checksum,
                                    version=2, features=0x07)
            assert reencoded == frame

    def test_v2_costs_exactly_one_byte(self):
        quack = self.sample()
        v1 = wire.encode(quack, include_checksum=True)
        v2 = wire.encode(quack, include_checksum=True, version=2)
        assert len(v2) == len(v1) + 1

    def test_frame_version_and_features(self):
        quack = self.sample()
        v1 = wire.encode(quack, include_checksum=True)
        v2 = wire.encode(quack, include_checksum=True, version=2,
                         features=0x05)
        assert wire.frame_version(v1) == 1
        assert wire.frame_features(v1) == 0
        assert wire.frame_version(v2) == 2
        assert wire.frame_features(v2) == 0x05

    def test_frame_version_rejects_garbage(self):
        with pytest.raises(WireFormatError, match="magic"):
            wire.frame_version(b"xx\x01")
        with pytest.raises(WireFormatError):
            wire.frame_features(b"qK\x02\x01\x01")  # v2 but no feature byte

    def test_features_need_v2(self):
        with pytest.raises(WireFormatError, match="need"):
            wire.encode(self.sample(), features=0x01)

    def test_features_wider_than_a_byte_rejected(self):
        with pytest.raises(WireFormatError, match="exceed"):
            wire.encode(self.sample(), version=2, features=0x100)

    def test_unsupported_version_names_format_and_range(self):
        with pytest.raises(WireFormatError,
                           match=r"quack frame: unsupported version 3 "
                                 r"\(supported 1\.\.2\)"):
            wire.encode(self.sample(), version=3)

    def test_implicit_count_still_works_under_v2(self):
        quack = self.sample()
        frame = wire.encode(quack, include_count=False,
                            include_checksum=True, version=2)
        assert wire.decode(frame, implicit_count=3).count == 3
