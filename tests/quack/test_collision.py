"""Tests for collision analytics (repro.quack.collision) -- Table 3."""

import math
import random

import pytest

from repro.quack.collision import (
    TABLE3_BITS,
    collision_probability,
    expected_collisions,
    monte_carlo_collision_rate,
    table3_row,
)


class TestClosedForm:
    @pytest.mark.parametrize("bits,paper_value,tolerance", [
        (8, 0.98, 0.005),
        (16, 0.015, 0.0005),
        (24, 6.0e-05, 0.05e-5),
        (32, 2.3e-07, 0.05e-7),
    ])
    def test_matches_paper_table3(self, bits, paper_value, tolerance):
        assert collision_probability(1000, bits) == pytest.approx(
            paper_value, abs=tolerance)

    def test_intro_headline_value(self):
        # Section 1: "0.000023% chance that a candidate packet has an
        # indeterminate result" = 2.3e-7 for n=1000, b=32.
        assert collision_probability(1000, 32) == pytest.approx(
            2.3e-7, rel=0.02)

    def test_single_packet_never_collides(self):
        assert collision_probability(1, 32) == 0.0

    def test_monotone_in_n(self):
        values = [collision_probability(n, 16) for n in (2, 10, 100, 1000)]
        assert values == sorted(values)
        assert all(0 <= v <= 1 for v in values)

    def test_monotone_decreasing_in_bits(self):
        values = [collision_probability(1000, b) for b in (8, 16, 24, 32)]
        assert values == sorted(values, reverse=True)

    def test_matches_naive_formula(self):
        for n, b in [(2, 8), (50, 16), (1000, 24)]:
            naive = 1 - (1 - 1 / 2 ** b) ** (n - 1)
            assert collision_probability(n, b) == pytest.approx(naive, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(0, 32)
        with pytest.raises(ValueError):
            collision_probability(10, 0)


class TestDerived:
    def test_expected_collisions(self):
        assert expected_collisions(1000, 16) == pytest.approx(
            1000 * collision_probability(1000, 16))

    def test_table3_row_keys(self):
        row = table3_row()
        assert tuple(row) == TABLE3_BITS
        assert row[32] == collision_probability(1000, 32)


class TestMonteCarlo:
    def test_agrees_with_closed_form_small_space(self):
        # b=8 has a high rate, measurable with few trials.
        rate = monte_carlo_collision_rate(100, 8, trials=400,
                                          rng=random.Random(1))
        expected = collision_probability(100, 8)
        assert rate == pytest.approx(expected, abs=0.08)

    def test_agrees_for_16_bits(self):
        rate = monte_carlo_collision_rate(1000, 16, trials=600,
                                          rng=random.Random(2))
        expected = collision_probability(1000, 16)  # ~1.5%
        # Binomial stderr ~ sqrt(p(1-p)/600) ~ 0.005.
        assert abs(rate - expected) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_collision_rate(10, 8, trials=0)

    def test_deterministic_given_rng(self):
        a = monte_carlo_collision_rate(50, 8, 100, random.Random(7))
        b = monte_carlo_collision_rate(50, 8, 100, random.Random(7))
        assert a == b
