"""Stateful property tests: quACK state machines vs simple models.

Hypothesis drives arbitrary interleavings of operations against a
reference model (plain Python multisets), checking after every step that
the production structures agree -- the strongest guard against subtle
state bugs in the cumulative accumulators.
"""

import random
from collections import Counter

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.quack.power_sum import PowerSumQuack
from repro.transport.ranges import RangeSet

identifiers = st.integers(min_value=0, max_value=2 ** 32 - 1)


class PowerSumMachine(RuleBasedStateMachine):
    """Insert/remove/copy/subtract against a Counter model."""

    def __init__(self):
        super().__init__()
        self.quack = PowerSumQuack(threshold=6, count_bits=16)
        self.model: Counter = Counter()
        self.removed_extra = 0

    @rule(identifier=identifiers)
    def insert(self, identifier):
        self.quack.insert(identifier)
        self.model[identifier] += 1

    @rule(identifier=identifiers)
    def insert_via_bulk(self, identifier):
        self.quack.insert_many([identifier, identifier])
        self.model[identifier] += 2

    @rule(data=st.data())
    def remove_present(self, data):
        present = [k for k, v in self.model.items() if v > 0]
        if not present:
            return
        identifier = data.draw(st.sampled_from(present))
        self.quack.remove(identifier)
        self.model[identifier] -= 1

    @invariant()
    def count_matches_model(self):
        assert self.quack.count == sum(self.model.values()) % (1 << 16)

    @invariant()
    def power_sums_match_reference(self):
        reference = PowerSumQuack(threshold=6, count_bits=16)
        reference.insert_many(list(self.model.elements()))
        assert self.quack.power_sums == reference.power_sums

    @invariant()
    def self_difference_is_empty(self):
        delta = self.quack - self.quack
        assert delta.count == 0
        assert all(s == 0 for s in delta.power_sums)


class QuackSessionMachine(RuleBasedStateMachine):
    """A sender/receiver pair under arbitrary send/deliver/decode steps.

    Random packets are sent (into the sender quack + log) and a random
    subset delivered (into the receiver quack).  At any point, decoding
    sender-minus-receiver must recover exactly the undelivered multiset,
    whenever it fits the threshold.
    """

    THRESHOLD = 5

    def __init__(self):
        super().__init__()
        self.rng = random.Random(1234)
        self.sender = PowerSumQuack(self.THRESHOLD)
        self.receiver = PowerSumQuack(self.THRESHOLD)
        self.log: list[int] = []
        self.undelivered: list[int] = []

    @rule()
    def send_one(self):
        identifier = self.rng.getrandbits(32)
        self.sender.insert(identifier)
        self.log.append(identifier)
        self.undelivered.append(identifier)

    @rule()
    def deliver_one(self):
        if not self.undelivered:
            return
        index = self.rng.randrange(len(self.undelivered))
        identifier = self.undelivered.pop(index)
        self.receiver.insert(identifier)

    @rule()
    def retire_decoded_loss(self):
        """Model Section 3.3's threshold reset: give up on one
        undelivered packet, removing it everywhere."""
        if not self.undelivered:
            return
        index = self.rng.randrange(len(self.undelivered))
        identifier = self.undelivered.pop(index)
        self.sender.remove(identifier)
        self.log.remove(identifier)

    @invariant()
    def decode_recovers_undelivered(self):
        from repro.quack.decoder import decode_delta

        delta = self.sender - self.receiver
        assert delta.count == len(self.undelivered)
        if len(self.undelivered) > self.THRESHOLD:
            result = decode_delta(delta, self.log)
            assert not result.ok
            return
        result = decode_delta(delta, self.log)
        assert result.ok
        recovered = list(result.missing)
        for group, count in result.indeterminate:
            # Collisions: count unknowns; with 32-bit ids this is rare.
            recovered.extend([None] * count)
        assert len(recovered) == len(self.undelivered)
        if result.is_determinate:
            assert sorted(result.missing) == sorted(self.undelivered)


class RangeSetMachine(RuleBasedStateMachine):
    """RangeSet vs a plain set of integers."""

    def __init__(self):
        super().__init__()
        self.ranges = RangeSet()
        self.model: set[int] = set()

    @rule(lo=st.integers(min_value=0, max_value=300),
          width=st.integers(min_value=0, max_value=20))
    def add_range(self, lo, width):
        self.ranges.add_range(lo, lo + width)
        self.model.update(range(lo, lo + width + 1))

    @rule(value=st.integers(min_value=0, max_value=300))
    def add_value(self, value):
        self.ranges.add(value)
        self.model.add(value)

    @invariant()
    def cardinality_matches(self):
        assert len(self.ranges) == len(self.model)

    @invariant()
    def ranges_normalized(self):
        flat = self.ranges.ranges
        for (lo1, hi1), (lo2, hi2) in zip(flat, flat[1:]):
            assert hi1 + 1 < lo2  # sorted, disjoint, non-adjacent
        for lo, hi in flat:
            assert lo <= hi

    @invariant()
    def membership_sample_agrees(self):
        for probe in range(0, 330, 13):
            assert (probe in self.ranges) == (probe in self.model)


TestPowerSumMachine = PowerSumMachine.TestCase
TestPowerSumMachine.settings = settings(max_examples=25,
                                        stateful_step_count=30,
                                        deadline=None)

TestQuackSessionMachine = QuackSessionMachine.TestCase
TestQuackSessionMachine.settings = settings(max_examples=20,
                                            stateful_step_count=25,
                                            deadline=None)

TestRangeSetMachine = RangeSetMachine.TestCase
TestRangeSetMachine.settings = settings(max_examples=30,
                                        stateful_step_count=40,
                                        deadline=None)
