"""Tests for the power-sum quACK accumulator (repro.quack.power_sum)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import field_for_bits
from repro.errors import ArithmeticDomainError
from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack

P32 = 4_294_967_291

ids32 = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestConstruction:
    def test_defaults(self):
        q = PowerSumQuack(threshold=20)
        assert q.threshold == 20
        assert q.bits == 32
        assert q.count_bits == 16
        assert q.count == 0
        assert q.power_sums == (0,) * 20
        assert q.field.modulus == P32

    def test_wire_size_matches_paper(self):
        # Table 2: t*b + c = 20*32 + 16 = 656 bits = 82 bytes.
        q = PowerSumQuack(threshold=20, bits=32, count_bits=16)
        assert q.wire_size_bits() == 656
        assert q.wire_size_bits() // 8 == 82

    def test_invalid_threshold(self):
        with pytest.raises(ArithmeticDomainError):
            PowerSumQuack(threshold=0)

    def test_count_bits_must_cover_threshold(self):
        with pytest.raises(ArithmeticDomainError):
            PowerSumQuack(threshold=16, count_bits=4)  # 2**4 == 16 <= t
        PowerSumQuack(threshold=15, count_bits=4)  # 16 > 15: fine

    def test_explicit_field(self):
        field = field_for_bits(16)
        q = PowerSumQuack(threshold=4, bits=16, field=field)
        assert q.field is field

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PowerSumQuack(2))


class TestInsertRemove:
    def test_insert_updates_all_power_sums(self):
        q = PowerSumQuack(threshold=3)
        q.insert(5)
        assert q.power_sums == (5, 25, 125)
        assert q.count == 1
        q.insert(2)
        assert q.power_sums == (7, 29, 133)
        assert q.count == 2

    def test_identifier_reduced_mod_p(self):
        q = PowerSumQuack(threshold=2)
        q.insert(P32 + 9)
        assert q.power_sums == (9, 81)

    def test_remove_inverts_insert(self):
        q = PowerSumQuack(threshold=4)
        q.insert(123)
        q.insert(456)
        q.remove(123)
        other = PowerSumQuack(threshold=4)
        other.insert(456)
        assert q == other

    def test_remove_wraps_count(self):
        q = PowerSumQuack(threshold=2, count_bits=8)
        q.remove(7)
        assert q.count == 255

    @given(values=st.lists(ids32, min_size=0, max_size=60))
    @settings(max_examples=50)
    def test_insert_many_equals_loop(self, values):
        loop = PowerSumQuack(threshold=5)
        for v in values:
            loop.insert(v)
        bulk = PowerSumQuack(threshold=5)
        bulk.insert_many(values)
        assert loop == bulk

    def test_insert_many_accepts_numpy(self):
        q = PowerSumQuack(threshold=3)
        q.insert_many(np.array([1, 2, 3], dtype=np.uint64))
        assert q.count == 3

    def test_insert_many_empty(self):
        q = PowerSumQuack(threshold=3)
        q.insert_many([])
        assert q.count == 0 and q.power_sums == (0, 0, 0)

    def test_count_wraps(self):
        q = PowerSumQuack(threshold=2, count_bits=4)
        for i in range(20):
            q.insert(i + 1)
        assert q.count == 20 % 16

    def test_order_independence(self):
        a = PowerSumQuack(threshold=4)
        b = PowerSumQuack(threshold=4)
        values = [9, 1, 77, 77, 3]
        for v in values:
            a.insert(v)
        for v in reversed(values):
            b.insert(v)
        assert a == b


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        q = PowerSumQuack(threshold=2)
        q.insert(5)
        clone = q.copy()
        clone.insert(6)
        assert q.count == 1 and clone.count == 2
        assert q != clone

    def test_equality_requires_same_parameters(self):
        a = PowerSumQuack(threshold=2)
        b = PowerSumQuack(threshold=3)
        assert a != b
        assert a != object()


class TestSubtraction:
    def test_difference_is_missing_multiset_sums(self):
        sender = PowerSumQuack(threshold=4)
        receiver = PowerSumQuack(threshold=4)
        for v in (10, 20, 30, 40):
            sender.insert(v)
        for v in (10, 30):
            receiver.insert(v)
        delta = sender - receiver
        expect = PowerSumQuack(threshold=4)
        expect.insert(20)
        expect.insert(40)
        assert delta.power_sums == expect.power_sums
        assert delta.count == 2

    def test_count_difference_wraps(self):
        sender = PowerSumQuack(threshold=2, count_bits=4)
        receiver = PowerSumQuack(threshold=2, count_bits=4)
        for i in range(17):  # sender count wraps to 1
            sender.insert(i + 1)
        for i in range(15):
            receiver.insert(i + 1)
        delta = sender - receiver
        assert delta.count == 2

    def test_mismatched_parameters_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            PowerSumQuack(threshold=2) - PowerSumQuack(threshold=3)
        with pytest.raises(ArithmeticDomainError):
            PowerSumQuack(threshold=2, bits=16) - PowerSumQuack(threshold=2)

    def test_non_quack_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            PowerSumQuack(threshold=2) - 42  # type: ignore[operator]

    def test_dropped_quack_resilience(self):
        """Section 3.3: subtracting a *later* receiver snapshot still
        decodes, because the state is cumulative."""
        rng = random.Random(3)
        sent = [rng.getrandbits(32) for _ in range(50)]
        sender = PowerSumQuack(threshold=10)
        receiver = PowerSumQuack(threshold=10)
        sender.insert_many(sent)
        # First snapshot is "dropped" (never consumed); receiver keeps going.
        receiver.insert_many(sent[:20])
        _dropped = receiver.copy()
        receiver.insert_many(sent[20:45])  # 5 remain missing
        delta = sender - receiver
        assert delta.count == 5


class TestOneShotDecode:
    def test_simple_decode(self):
        rng = random.Random(1)
        sent = [rng.getrandbits(32) for _ in range(100)]
        missing = sent[10:15]
        receiver = PowerSumQuack(threshold=8)
        receiver.insert_many([s for i, s in enumerate(sent)
                              if not 10 <= i < 15])
        result = receiver.decode(sent)
        assert result.ok
        assert sorted(result.missing) == sorted(missing)

    def test_nothing_missing(self):
        sent = [5, 6, 7]
        receiver = PowerSumQuack(threshold=2)
        receiver.insert_many(sent)
        result = receiver.decode(sent)
        assert result.ok and result.missing == ()

    def test_exactly_threshold_missing_decodes(self):
        rng = random.Random(2)
        sent = [rng.getrandbits(32) for _ in range(40)]
        receiver = PowerSumQuack(threshold=6)
        receiver.insert_many(sent[6:])
        result = receiver.decode(sent)
        assert result.ok
        assert sorted(result.missing) == sorted(sent[:6])

    def test_threshold_plus_one_fails(self):
        rng = random.Random(2)
        sent = [rng.getrandbits(32) for _ in range(40)]
        receiver = PowerSumQuack(threshold=6)
        receiver.insert_many(sent[7:])
        result = receiver.decode(sent)
        assert result.status is DecodeStatus.THRESHOLD_EXCEEDED
        assert result.num_missing == 7

    def test_duplicate_identifiers_in_multiset(self):
        sent = [42, 42, 42, 99]
        receiver = PowerSumQuack(threshold=3)
        receiver.insert_many([42, 99])  # two copies of 42 missing
        result = receiver.decode(sent)
        assert result.ok
        assert list(result.missing) == [42, 42]
