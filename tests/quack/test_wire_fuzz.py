"""Fuzzing the wire format: hostile bytes must fail cleanly.

The deserializer faces network input; whatever arrives, it must either
return a valid quACK or raise WireFormatError -- never any other
exception, never a half-parsed object.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.quack import wire
from repro.quack.base import Quack
from repro.quack.power_sum import PowerSumQuack


@given(blob=st.binary(min_size=0, max_size=300))
@settings(max_examples=200)
@example(blob=b"")
@example(blob=b"qK")
@example(blob=b"qK\x01\x01\x01")
@example(blob=b"qK\x01\x02\x01\x20\x00\x00\x00\x00")
def test_arbitrary_bytes_never_crash(blob):
    try:
        decoded = wire.decode(blob)
    except WireFormatError:
        return
    assert isinstance(decoded, Quack)


@given(values=st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                       max_size=20),
       flip_position=st.integers(min_value=0, max_value=10_000),
       flip_mask=st.integers(min_value=1, max_value=255))
@settings(max_examples=150)
def test_single_byte_corruption_fails_cleanly_or_stays_valid(
        values, flip_position, flip_mask):
    quack = PowerSumQuack(threshold=4)
    quack.insert_many(values)
    frame = bytearray(wire.encode(quack))
    frame[flip_position % len(frame)] ^= flip_mask
    try:
        decoded = wire.decode(bytes(frame))
    except WireFormatError:
        return
    # A flip that survives parsing must still produce a structurally
    # valid quACK (reduced sums, sane threshold).
    assert isinstance(decoded, Quack)
    if isinstance(decoded, PowerSumQuack):
        assert all(0 <= s < decoded.field.modulus
                   for s in decoded.power_sums)


@given(blob=st.binary(min_size=5, max_size=100))
@settings(max_examples=100)
def test_frames_with_valid_magic_still_safe(blob):
    frame = b"qK\x01" + blob
    try:
        wire.decode(frame)
    except WireFormatError:
        pass
