"""64-bit (and other nonstandard width) quACK coverage.

The paper evaluates b in {8, 16, 24, 32}; the library also supports
64-bit identifiers (modulus 2**64 - 59), which exercises the non-numpy
object-array arithmetic path end to end.
"""

import random

import pytest

from repro.quack import wire
from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack

P64 = 18_446_744_073_709_551_557


@pytest.fixture(scope="module")
def workload64():
    rng = random.Random(77)
    sent = [rng.getrandbits(64) for _ in range(120)]
    missing_idx = sorted(rng.sample(range(120), 6))
    received = [v for i, v in enumerate(sent) if i not in missing_idx]
    missing = sorted(sent[i] for i in missing_idx)
    return sent, received, missing


class TestPowerSum64:
    def test_modulus(self):
        assert PowerSumQuack(4, bits=64).field.modulus == P64

    def test_decode_roundtrip(self, workload64):
        sent, received, missing = workload64
        quack = PowerSumQuack(threshold=8, bits=64)
        quack.insert_many(received)
        result = quack.decode(sent)
        assert result.ok
        assert sorted(result.missing) == missing

    @pytest.mark.parametrize("method", ["candidates", "factor"])
    def test_both_decode_methods(self, workload64, method):
        from repro.quack.decoder import decode_delta
        sent, received, missing = workload64
        sender = PowerSumQuack(threshold=8, bits=64)
        receiver = PowerSumQuack(threshold=8, bits=64)
        sender.insert_many(sent)
        receiver.insert_many(received)
        result = decode_delta(sender - receiver, sent, method=method)
        assert result.ok and sorted(result.missing) == missing

    def test_wire_roundtrip(self, workload64):
        _, received, _ = workload64
        quack = PowerSumQuack(threshold=8, bits=64)
        quack.insert_many(received[:50])
        assert wire.decode(wire.encode(quack)) == quack

    def test_wire_size(self):
        quack = PowerSumQuack(threshold=20, bits=64, count_bits=16)
        assert quack.wire_size_bits() == 20 * 64 + 16

    def test_aliasing_near_modulus(self):
        # 64-bit ids in [p, 2**64) alias small residues; the decoder must
        # still return the raw logged value.
        raw = P64 + 5  # == 5 mod p, but a distinct 64-bit value... except
        # it exceeds 64 bits; use the top of the range instead.
        raw = (1 << 64) - 1  # == (2**64 - 1) mod p == 58
        sent = [raw, 1234]
        quack = PowerSumQuack(threshold=4, bits=64)
        quack.insert(1234)
        result = quack.decode(sent)
        assert result.ok
        assert list(result.missing) == [raw]


class TestOddWidths:
    @pytest.mark.parametrize("bits", [12, 20, 48])
    def test_roundtrip_arbitrary_widths(self, bits):
        rng = random.Random(bits)
        sent = [rng.getrandbits(bits) for _ in range(60)]
        quack = PowerSumQuack(threshold=5, bits=bits)
        quack.insert_many(sent[3:])
        result = quack.decode(sent)
        if result.status is DecodeStatus.INCONSISTENT:
            # Narrow widths can alias; only tolerated for tiny fields.
            assert bits <= 16
        else:
            assert result.ok
            assert sorted(result.missing) == sorted(sent[:3])

    @pytest.mark.parametrize("bits", [12, 20, 48])
    def test_wire_roundtrip_arbitrary_widths(self, bits):
        quack = PowerSumQuack(threshold=3, bits=bits)
        quack.insert_many([1, 2, 3])
        assert wire.decode(wire.encode(quack)) == quack
