"""Cross-strategy agreement: candidate evaluation vs full factorization.

For any polynomial built from roots, evaluating candidates and factoring
must agree about exactly which candidates are roots -- including aliased
candidates, non-root decoys, and repeated roots.
"""

import random
from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField
from repro.arith.polynomial import Poly
from repro.arith.roots import find_all_roots, roots_among_candidates

P = 4_294_967_291
F = PrimeField(P)


@given(roots=st.lists(st.integers(min_value=0, max_value=P - 1),
                      min_size=1, max_size=10),
       decoys=st.lists(st.integers(min_value=0, max_value=P - 1),
                       max_size=10),
       seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=60, deadline=None)
def test_strategies_agree(roots, decoys, seed):
    poly = Poly.from_roots(F, roots)
    rng = random.Random(seed)
    candidates = list(roots) + [d for d in decoys if d not in set(roots)]
    rng.shuffle(candidates)

    mask = roots_among_candidates(poly, np.array(candidates, dtype=np.uint64))
    by_eval = {c for c, is_root in zip(candidates, mask) if is_root}

    by_factor = find_all_roots(poly, random.Random(seed))
    assert by_eval == set(by_factor)
    assert by_factor == Counter(roots)


@given(coeffs=st.lists(st.integers(min_value=0, max_value=P - 1),
                       min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_agreement_on_arbitrary_polynomials(coeffs):
    """Even for polynomials that need not split: every factored root must
    evaluate to zero, and sampled non-roots must not be reported."""
    poly = Poly(F, coeffs)
    if poly.degree < 1:
        return
    factored = find_all_roots(poly)
    for root in factored:
        assert poly(root) == 0
    rng = random.Random(7)
    sample = [rng.randrange(P) for _ in range(20)]
    mask = roots_among_candidates(poly, np.array(sample, dtype=np.uint64))
    for value, is_root in zip(sample, mask):
        assert bool(is_root) == (poly(value) == 0)
        if is_root:
            assert value in factored
