"""Tests for Newton's identities (repro.arith.newton)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField, field_for_bits
from repro.arith.newton import (
    elementary_to_power_sums,
    polynomial_from_power_sums,
    power_sums_to_elementary,
)
from repro.errors import ArithmeticDomainError

P = 4_294_967_291
F = PrimeField(P)


def brute_power_sums(values, k, p=P):
    return [sum(pow(v % p, i, p) for v in values) % p for i in range(1, k + 1)]


def brute_elementary(values, p=P):
    """e_1..e_m via the recurrence e'(S + {v}) = e(S) + v * shift(e(S))."""
    out = [1]
    for v in values:
        out = out + [0]
        for i in range(len(out) - 1, 0, -1):
            out[i] = (out[i] + v * out[i - 1]) % p
    return out[1:]


class TestPowerSumsToElementary:
    @given(values=st.lists(st.integers(min_value=0, max_value=P - 1),
                           min_size=0, max_size=8))
    @settings(max_examples=60)
    def test_matches_direct_expansion(self, values):
        m = len(values)
        d = brute_power_sums(values, m)
        e = power_sums_to_elementary(F, d)
        assert e == brute_elementary(values)

    def test_empty(self):
        assert power_sums_to_elementary(F, []) == []

    def test_single_element(self):
        assert power_sums_to_elementary(F, [42]) == [42]

    def test_two_elements(self):
        # {3, 5}: d1 = 8, d2 = 34; e1 = 8, e2 = 15.
        d = brute_power_sums([3, 5], 2)
        assert power_sums_to_elementary(F, d) == [8, 15]

    def test_m_not_below_p_rejected(self):
        tiny = PrimeField(5)
        with pytest.raises(ArithmeticDomainError):
            power_sums_to_elementary(tiny, [1, 2, 3, 4, 0])


class TestRoundTrip:
    @given(values=st.lists(st.integers(min_value=0, max_value=P - 1),
                           min_size=0, max_size=8),
           extra=st.integers(min_value=0, max_value=3))
    @settings(max_examples=60)
    def test_elementary_to_power_sums_inverts(self, values, extra):
        m = len(values)
        e = brute_elementary(values)
        d = elementary_to_power_sums(F, e, num_sums=m + extra)
        assert d == brute_power_sums(values, m + extra)

    def test_defaults_to_len_elementary(self):
        e = brute_elementary([7, 9])
        assert elementary_to_power_sums(F, e) == brute_power_sums([7, 9], 2)


class TestPolynomialFromPowerSums:
    @given(values=st.lists(st.integers(min_value=0, max_value=P - 1),
                           min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_roots_are_exactly_the_multiset(self, values):
        d = brute_power_sums(values, len(values))
        f = polynomial_from_power_sums(F, d)
        assert f.is_monic()
        assert f.degree == len(values)
        assert f == __import__("repro.arith.polynomial",
                               fromlist=["Poly"]).Poly.from_roots(F, values)

    def test_duplicates_produce_multiplicity(self):
        values = [5, 5, 9]
        d = brute_power_sums(values, 3)
        f = polynomial_from_power_sums(F, d)
        # (x-5)^2 divides f.
        from repro.arith.polynomial import Poly
        assert (f % Poly.from_roots(F, [5, 5])).is_zero

    def test_zero_elements_supported(self):
        # Zeros contribute nothing to power sums but must appear as roots.
        values = [0, 0, 7]
        d = brute_power_sums(values, 3)
        f = polynomial_from_power_sums(F, d)
        assert f(0) == 0 and f(7) == 0
        from repro.arith.polynomial import Poly
        assert f == Poly.from_roots(F, values)

    def test_empty_power_sums(self):
        f = polynomial_from_power_sums(F, [])
        assert f.degree == 0 and f.is_monic()
