"""Tests for repro.arith.primes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.primes import (
    is_prime,
    largest_prime_in_bits,
    next_prime,
    prev_prime,
)
from repro.errors import ArithmeticDomainError

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                59, 61, 67, 71, 73, 79, 83, 89, 97, 101]
SMALL_COMPOSITES = [0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 35, 49,
                    51, 55, 57, 63, 65, 77, 81, 91, 99, 100]
# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]


class TestIsPrime:
    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_small_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", SMALL_COMPOSITES)
    def test_small_composites(self, c):
        assert not is_prime(c)

    @pytest.mark.parametrize("c", CARMICHAEL)
    def test_carmichael_numbers_rejected(self, c):
        assert not is_prime(c)

    def test_negative_numbers(self):
        assert not is_prime(-7)
        assert not is_prime(-1)

    @pytest.mark.parametrize("p", [
        65_521,                      # largest 16-bit prime
        16_777_213,                  # largest 24-bit prime
        4_294_967_291,               # largest 32-bit prime
        18_446_744_073_709_551_557,  # largest 64-bit prime
        (1 << 61) - 1,               # Mersenne prime M61
    ])
    def test_known_large_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", [
        65_521 * 16_777_213,
        4_294_967_291 + 2,   # 2**32 - 3 = 13 * 330382099 * ...
        (1 << 61) + 1,
    ])
    def test_large_composites(self, c):
        assert not is_prime(c)

    def test_brute_force_agreement_below_2000(self):
        def slow(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(n ** 0.5) + 1))

        for n in range(2000):
            assert is_prime(n) == slow(n), n


class TestPrevNextPrime:
    def test_prev_prime_basic(self):
        assert prev_prime(10) == 7
        assert prev_prime(8) == 7
        assert prev_prime(3) == 2
        assert prev_prime(2 ** 16) == 65_521

    def test_prev_prime_of_prime_is_strictly_below(self):
        assert prev_prime(7) == 5

    def test_prev_prime_no_prime_below(self):
        with pytest.raises(ArithmeticDomainError):
            prev_prime(2)
        with pytest.raises(ArithmeticDomainError):
            prev_prime(0)

    def test_next_prime_basic(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(7) == 11
        assert next_prime(65_520) == 65_521

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60)
    def test_next_prime_properties(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)

    @given(st.integers(min_value=3, max_value=10 ** 6))
    @settings(max_examples=60)
    def test_prev_prime_properties(self, n):
        p = prev_prime(n)
        assert p < n
        assert is_prime(p)
        # No prime strictly between p and n.
        assert all(not is_prime(q) for q in range(p + 1, min(n, p + 200)))


class TestLargestPrimeInBits:
    @pytest.mark.parametrize("bits,expected", [
        (8, 251),
        (16, 65_521),
        (24, 16_777_213),
        (32, 4_294_967_291),
        (64, 18_446_744_073_709_551_557),
    ])
    def test_paper_moduli(self, bits, expected):
        assert largest_prime_in_bits(bits) == expected

    def test_fits_in_bits(self):
        for bits in range(2, 40):
            p = largest_prime_in_bits(bits)
            assert p < (1 << bits)
            assert is_prime(p)

    def test_too_few_bits(self):
        with pytest.raises(ArithmeticDomainError):
            largest_prime_in_bits(1)

    def test_cached(self):
        assert largest_prime_in_bits(32) is largest_prime_in_bits(32) or \
            largest_prime_in_bits(32) == largest_prime_in_bits(32)
