"""Tests for repro.arith.polynomial."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField, field_for_bits
from repro.arith.polynomial import Poly
from repro.errors import ArithmeticDomainError

P = 4_294_967_291
F = PrimeField(P)
FSMALL = PrimeField(251)

coeff_lists = st.lists(st.integers(min_value=0, max_value=P - 1),
                       min_size=0, max_size=8)


def poly(coeffs, field=F):
    return Poly(field, coeffs)


class TestConstruction:
    def test_trailing_zeros_stripped(self):
        assert poly([1, 2, 0, 0]).coeffs == (1, 2)
        assert poly([0, 0, 0]).coeffs == ()

    def test_zero_one_x(self):
        assert Poly.zero(F).is_zero
        assert Poly.zero(F).degree == -1
        assert Poly.one(F).coeffs == (1,)
        assert Poly.x(F).coeffs == (0, 1)

    def test_coefficients_reduced(self):
        assert poly([P + 3, -1]).coeffs == (3, P - 1)

    def test_monomial(self):
        m = Poly.monomial(F, 3, 5)
        assert m.coeffs == (0, 0, 0, 5)
        with pytest.raises(ArithmeticDomainError):
            Poly.monomial(F, -1)

    def test_from_roots(self):
        p = Poly.from_roots(F, [2, 3])
        # (x-2)(x-3) = x^2 - 5x + 6
        assert p.coeffs == (6, P - 5, 1)
        assert p(2) == 0 and p(3) == 0 and p(4) != 0

    def test_from_roots_empty(self):
        assert Poly.from_roots(F, []) == Poly.one(F)

    def test_leading_coefficient_of_zero_poly(self):
        with pytest.raises(ArithmeticDomainError):
            _ = Poly.zero(F).leading_coefficient

    def test_repr_smoke(self):
        assert "x^2" in repr(poly([1, 0, 2]))
        assert repr(Poly.zero(F)).endswith("0)")


class TestRingOps:
    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=60)
    def test_add_commutes_and_sub_inverts(self, a, b):
        pa, pb = poly(a), poly(b)
        assert pa + pb == pb + pa
        assert (pa + pb) - pb == pa

    @given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
    @settings(max_examples=40)
    def test_mul_distributes(self, a, b, c):
        pa, pb, pc = poly(a), poly(b), poly(c)
        assert pa * (pb + pc) == pa * pb + pa * pc

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=40)
    def test_mul_degree(self, a, b):
        pa, pb = poly(a), poly(b)
        product = pa * pb
        if pa.is_zero or pb.is_zero:
            assert product.is_zero
        else:
            assert product.degree == pa.degree + pb.degree

    def test_mixed_field_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            poly([1]) + poly([1], FSMALL)
        with pytest.raises(ArithmeticDomainError):
            poly([1]) * poly([1], FSMALL)

    def test_scale(self):
        assert poly([1, 2]).scale(3).coeffs == (3, 6)
        assert poly([1, 2]).scale(0).is_zero


class TestDivision:
    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=60)
    def test_divmod_identity(self, a, b):
        pa, pb = poly(a), poly(b)
        if pb.is_zero:
            return
        q, r = divmod(pa, pb)
        assert q * pb + r == pa
        assert r.is_zero or r.degree < pb.degree

    def test_division_by_zero(self):
        with pytest.raises(ArithmeticDomainError):
            divmod(poly([1, 1]), Poly.zero(F))

    def test_floordiv_mod(self):
        a = Poly.from_roots(F, [1, 2, 3])
        b = Poly.from_roots(F, [2])
        assert a % b == Poly.zero(F)
        assert (a // b) == Poly.from_roots(F, [1, 3])

    def test_monic(self):
        p = poly([2, 4, 6])
        m = p.monic()
        assert m.is_monic()
        assert m.scale(6) == p

    def test_monic_zero(self):
        assert Poly.zero(F).monic().is_zero


class TestGcd:
    def test_common_roots(self):
        a = Poly.from_roots(F, [1, 2, 3])
        b = Poly.from_roots(F, [2, 3, 4])
        assert a.gcd(b) == Poly.from_roots(F, [2, 3])

    def test_coprime(self):
        a = Poly.from_roots(F, [1])
        b = Poly.from_roots(F, [2])
        assert a.gcd(b) == Poly.one(F)

    def test_gcd_with_zero(self):
        a = Poly.from_roots(F, [5]).scale(7)
        assert a.gcd(Poly.zero(F)) == a.monic()

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=30)
    def test_gcd_divides_both(self, a, b):
        pa, pb = poly(a), poly(b)
        g = pa.gcd(pb)
        if g.is_zero:
            assert pa.is_zero and pb.is_zero
            return
        assert (pa % g).is_zero
        assert (pb % g).is_zero


class TestDerivativeAndEval:
    def test_derivative(self):
        # d/dx (3 + 2x + 5x^3) = 2 + 15x^2
        assert poly([3, 2, 0, 5]).derivative().coeffs == (2, 0, 15)
        assert poly([7]).derivative().is_zero

    @given(coeffs=coeff_lists,
           x=st.integers(min_value=0, max_value=P - 1))
    @settings(max_examples=50)
    def test_call_matches_naive(self, coeffs, x):
        p = poly(coeffs)
        expected = sum(c * pow(x, i, P) for i, c in enumerate(coeffs)) % P
        assert p(x) == expected

    @given(coeffs=coeff_lists,
           points=st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                           min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_eval_batch_matches_call(self, coeffs, points):
        p = poly(coeffs)
        out = p.eval_batch(np.array(points, dtype=np.uint64))
        assert [int(v) for v in out] == [p(x % P) for x in points]


class TestPowMod:
    @given(base=coeff_lists, e=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30)
    def test_matches_naive(self, base, e):
        modulus = Poly.from_roots(F, [1, 5, 9])
        pb = poly(base)
        naive = Poly.one(F)
        for _ in range(e):
            naive = (naive * pb) % modulus
        assert pb.pow_mod(e, modulus) == naive % modulus

    def test_fermat_for_polynomials(self):
        # x**p mod (x - a) == a (Fermat), for the small field.
        f = FSMALL
        a = 17
        modulus = Poly(f, [(-a) % 251, 1])
        result = Poly.x(f).pow_mod(251, modulus)
        assert result.coeffs == (a,)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            Poly.x(F).pow_mod(-1, Poly.from_roots(F, [1, 2]))
