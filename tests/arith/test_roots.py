"""Tests for root finding (repro.arith.roots)."""

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField
from repro.arith.polynomial import Poly
from repro.arith.roots import find_all_roots, roots_among_candidates
from repro.errors import ArithmeticDomainError

P = 4_294_967_291
F = PrimeField(P)
FSMALL = PrimeField(251)


class TestRootsAmongCandidates:
    def test_basic_mask(self):
        f = Poly.from_roots(F, [10, 20])
        mask = roots_among_candidates(f, np.array([5, 10, 15, 20],
                                                  dtype=np.uint64))
        assert mask.tolist() == [False, True, False, True]

    def test_candidates_reduced_mod_p(self):
        f = Poly.from_roots(F, [3])
        # P + 3 aliases 3.
        mask = roots_among_candidates(f, np.array([P + 3], dtype=np.uint64))
        assert mask.tolist() == [True]

    def test_zero_poly_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            roots_among_candidates(Poly.zero(F), np.array([1], dtype=np.uint64))

    def test_constant_poly_has_no_roots(self):
        mask = roots_among_candidates(Poly.one(F),
                                      np.array([0, 1, 2], dtype=np.uint64))
        assert not mask.any()


class TestFindAllRoots:
    @given(roots=st.lists(st.integers(min_value=0, max_value=P - 1),
                          min_size=0, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_recovers_multiset(self, roots):
        f = Poly.from_roots(F, roots)
        if f.degree < 1:
            if not f.is_zero:
                assert find_all_roots(f) == Counter()
            return
        assert find_all_roots(f) == Counter(roots)

    def test_multiplicities(self):
        f = Poly.from_roots(F, [7, 7, 7, 11])
        assert find_all_roots(f) == Counter({7: 3, 11: 1})

    def test_zero_root_with_multiplicity(self):
        f = Poly.from_roots(F, [0, 0, 5])
        assert find_all_roots(f) == Counter({0: 2, 5: 1})

    def test_irreducible_quadratic_yields_nothing(self):
        # x^2 + 1 over GF(251): 251 % 4 == 3, so -1 is a non-residue.
        f = Poly(FSMALL, [1, 0, 1])
        assert find_all_roots(f) == Counter()

    def test_mixed_linear_and_irreducible(self):
        linear = Poly.from_roots(FSMALL, [9])
        irreducible = Poly(FSMALL, [1, 0, 1])
        roots = find_all_roots(linear * irreducible)
        assert roots == Counter({9: 1})

    def test_non_monic_input(self):
        f = Poly.from_roots(F, [4, 6]).scale(1234)
        assert find_all_roots(f) == Counter({4: 1, 6: 1})

    def test_zero_poly_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            find_all_roots(Poly.zero(F))

    def test_deterministic_without_rng(self):
        f = Poly.from_roots(F, list(range(100, 110)))
        assert find_all_roots(f) == find_all_roots(f)

    def test_explicit_rng(self):
        roots = [13, 17, 19, 23]
        f = Poly.from_roots(FSMALL, roots)
        for seed in range(5):
            assert find_all_roots(f, random.Random(seed)) == Counter(roots)

    def test_all_elements_of_small_field(self):
        # x^251 - x has every field element as a root: its linear part is
        # everything.  Use a smaller product to keep the test fast.
        values = list(range(25))
        f = Poly.from_roots(FSMALL, values)
        assert find_all_roots(f) == Counter(values)

    def test_wide_degree_random_multiset(self):
        rng = random.Random(99)
        roots = [rng.randrange(P) for _ in range(20)]
        roots += roots[:3]  # duplicates
        f = Poly.from_roots(F, roots)
        assert find_all_roots(f) == Counter(roots)
