"""Tests for repro.arith.montgomery (Montgomery and log-table backends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField
from repro.arith.montgomery import LogTableField, MontgomeryField
from repro.errors import ArithmeticDomainError

P16 = 65_521
P32 = 4_294_967_291
P64 = 18_446_744_073_709_551_557


class TestMontgomeryField:
    def test_rejects_even_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            MontgomeryField(2 ** 16)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            MontgomeryField(2)

    @pytest.mark.parametrize("p", [P16, P32, P64, 251])
    def test_roundtrip_conversion(self, p):
        m = MontgomeryField(p)
        for a in (0, 1, 2, p - 1, p // 2, 12345 % p):
            assert m.from_mont(m.to_mont(a)) == a

    @given(a=st.integers(min_value=0, max_value=P32 - 1),
           b=st.integers(min_value=0, max_value=P32 - 1))
    @settings(max_examples=80)
    def test_mul_matches_plain(self, a, b):
        m = MontgomeryField(P32)
        got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)))
        assert got == a * b % P32

    @given(a=st.integers(min_value=0, max_value=P64 - 1),
           b=st.integers(min_value=0, max_value=P64 - 1))
    @settings(max_examples=40)
    def test_mul_matches_plain_64bit(self, a, b):
        m = MontgomeryField(P64)
        got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)))
        assert got == a * b % P64

    @given(a=st.integers(min_value=0, max_value=P32 - 1),
           b=st.integers(min_value=0, max_value=P32 - 1))
    @settings(max_examples=40)
    def test_add_sub_in_domain(self, a, b):
        m = MontgomeryField(P32)
        am, bm = m.to_mont(a), m.to_mont(b)
        assert m.from_mont(m.add(am, bm)) == (a + b) % P32
        assert m.from_mont(m.sub(am, bm)) == (a - b) % P32

    @given(a=st.integers(min_value=0, max_value=P32 - 1),
           e=st.integers(min_value=0, max_value=500))
    @settings(max_examples=40)
    def test_pow(self, a, e):
        m = MontgomeryField(P32)
        assert m.from_mont(m.pow(m.to_mont(a), e)) == pow(a, e, P32)

    def test_pow_negative_exponent_rejected(self):
        m = MontgomeryField(P32)
        with pytest.raises(ArithmeticDomainError):
            m.pow(m.to_mont(3), -1)


class TestLogTableField:
    @pytest.fixture(scope="class")
    def lt(self):
        return LogTableField(P16)

    def test_rejects_large_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            LogTableField(P32)

    def test_rejects_composite(self):
        with pytest.raises(ArithmeticDomainError):
            LogTableField(65_520)

    def test_generator_is_primitive(self, lt):
        f = PrimeField(P16)
        # The generator's order must be exactly p - 1.
        order = P16 - 1
        for q in (2, 3, 5, 7, 13, 17, 241):  # prime factors of 65520
            if order % q == 0:
                assert f.pow(lt.generator, order // q) != 1

    @given(a=st.integers(min_value=0, max_value=P16 - 1),
           b=st.integers(min_value=0, max_value=P16 - 1))
    @settings(max_examples=100)
    def test_mul_matches_plain(self, a, b):
        lt = LogTableField(P16)
        assert lt.mul(a, b) == a * b % P16

    def test_mul_with_zero(self, lt):
        assert lt.mul(0, 12345) == 0
        assert lt.mul(12345, 0) == 0
        assert lt.mul(0, 0) == 0

    @given(a=st.integers(min_value=1, max_value=P16 - 1))
    @settings(max_examples=50)
    def test_inverse(self, a):
        lt = LogTableField(P16)
        assert lt.mul(a, lt.inv(a)) == 1

    def test_inverse_of_zero(self, lt):
        with pytest.raises(ArithmeticDomainError):
            lt.inv(0)

    @given(a=st.integers(min_value=0, max_value=P16 - 1),
           e=st.integers(min_value=0, max_value=300))
    @settings(max_examples=50)
    def test_pow(self, a, e):
        lt = LogTableField(P16)
        assert lt.pow(a, e) == pow(a, e, P16)

    def test_pow_zero_base(self, lt):
        assert lt.pow(0, 0) == 1
        assert lt.pow(0, 5) == 0
        with pytest.raises(ArithmeticDomainError):
            lt.pow(0, -1)

    def test_add_sub(self, lt):
        assert lt.add(P16 - 1, 1) == 0
        assert lt.sub(0, 1) == P16 - 1

    def test_batch_mul_matches_scalar(self, lt):
        rng = np.random.default_rng(7)
        a = rng.integers(0, P16, size=200, dtype=np.uint32)
        b = rng.integers(0, P16, size=200, dtype=np.uint32)
        out = lt.batch_mul(a, b)
        for x, y, z in zip(a.tolist(), b.tolist(), out.tolist()):
            assert z == x * y % P16

    def test_batch_mul_zeros(self, lt):
        a = np.array([0, 5, 0], dtype=np.uint32)
        b = np.array([7, 0, 0], dtype=np.uint32)
        assert lt.batch_mul(a, b).tolist() == [0, 0, 0]
