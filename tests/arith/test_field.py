"""Tests for repro.arith.field."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.field import PrimeField, field_for_bits
from repro.errors import ArithmeticDomainError

P32 = 4_294_967_291
P16 = 65_521
P64 = 18_446_744_073_709_551_557

elements32 = st.integers(min_value=0, max_value=P32 - 1)


@pytest.fixture(scope="module")
def f32():
    return PrimeField(P32)


@pytest.fixture(scope="module")
def f64():
    return PrimeField(P64)


class TestConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            PrimeField(2 ** 32)  # not prime

    def test_rejects_one(self):
        with pytest.raises(ArithmeticDomainError):
            PrimeField(1)

    def test_field_for_bits_matches_modulus(self):
        assert field_for_bits(16).modulus == P16
        assert field_for_bits(32).modulus == P32
        assert field_for_bits(64).modulus == P64

    def test_field_for_bits_cached(self):
        assert field_for_bits(32) is field_for_bits(32)

    def test_equality_and_hash(self):
        assert PrimeField(P16) == PrimeField(P16)
        assert PrimeField(P16) != PrimeField(P32)
        assert hash(PrimeField(P16)) == hash(PrimeField(P16))

    def test_contains(self, f32):
        assert 0 in f32
        assert P32 - 1 in f32
        assert P32 not in f32
        assert -1 not in f32


class TestScalarOps:
    @given(a=elements32, b=elements32)
    @settings(max_examples=100)
    def test_ring_axioms_32(self, a, b):
        f = PrimeField(P32)
        assert f.add(a, b) == (a + b) % P32
        assert f.sub(a, b) == (a - b) % P32
        assert f.mul(a, b) == (a * b) % P32
        assert f.add(a, f.neg(a)) == 0

    @given(a=st.integers(min_value=1, max_value=P32 - 1))
    @settings(max_examples=50)
    def test_inverse(self, a):
        f = PrimeField(P32)
        assert f.mul(a, f.inv(a)) == 1
        assert f.div(a, a) == 1

    def test_inverse_of_zero(self, f32):
        with pytest.raises(ArithmeticDomainError):
            f32.inv(0)
        with pytest.raises(ArithmeticDomainError):
            f32.div(1, 0)

    def test_reduce_arbitrary_ints(self, f32):
        assert f32.reduce(P32) == 0
        assert f32.reduce(-1) == P32 - 1
        assert f32.reduce(2 ** 40) == 2 ** 40 % P32

    @given(a=elements32, e=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_pow_matches_builtin(self, a, e):
        f = PrimeField(P32)
        assert f.pow(a, e) == pow(a, e, P32)

    def test_negative_exponent(self, f32):
        a = 123_456
        assert f32.mul(f32.pow(a, -1), a) == 1
        assert f32.pow(a, -3) == f32.inv(f32.pow(a, 3))

    def test_fermat(self, f32):
        # a**(p-1) == 1 for a != 0.
        assert f32.pow(9_999_991, P32 - 1) == 1


class TestBatchOps:
    @given(values=st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                           min_size=0, max_size=40))
    @settings(max_examples=50)
    def test_batch_power_sums_match_bruteforce(self, values):
        f = PrimeField(P32)
        sums = f.batch_power_sums(values, 5)
        for i in range(1, 6):
            assert sums[i - 1] == sum(pow(v % P32, i, P32)
                                      for v in values) % P32

    def test_batch_power_sums_empty(self, f32):
        assert f32.batch_power_sums([], 4) == [0, 0, 0, 0]

    def test_reduce_array_dtype_small_modulus(self, f32):
        out = f32.reduce_array([P32, P32 + 1, 5])
        assert out.dtype == np.uint64
        assert out.tolist() == [0, 1, 5]

    def test_reduce_array_large_modulus_object(self, f64):
        out = f64.reduce_array([P64 + 3, 7])
        assert out.dtype == object
        assert list(out) == [3, 7]

    def test_batch_mul_scalar_and_array(self, f32):
        a = f32.reduce_array([2, 3, P32 - 1])
        out = f32.batch_mul(a, 10)
        assert out.tolist() == [20, 30, (P32 - 1) * 10 % P32]
        out2 = f32.batch_mul(a, a)
        assert out2.tolist() == [4, 9, pow(P32 - 1, 2, P32)]

    def test_batch_add(self, f32):
        a = f32.reduce_array([P32 - 1, 5])
        assert f32.batch_add(a, 1).tolist() == [0, 6]

    def test_batch_power_sums_64bit_path(self, f64):
        values = [P64 - 1, 2 ** 63, 12345]
        sums = f64.batch_power_sums(values, 3)
        for i in range(1, 4):
            assert sums[i - 1] == sum(pow(v, i, P64) for v in values) % P64


class TestHornerEval:
    @given(coeffs=st.lists(elements32, min_size=1, max_size=8),
           points=st.lists(elements32, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_matches_scalar_horner(self, coeffs, points):
        f = PrimeField(P32)
        out = f.horner_eval(coeffs, np.array(points, dtype=np.uint64))

        def scalar(x):
            acc = 0
            for c in coeffs:
                acc = (acc * x + c) % P32
            return acc

        assert [int(v) for v in out] == [scalar(x) for x in points]

    def test_object_path_matches(self, f64):
        coeffs = [3, 0, P64 - 1]
        points = [0, 1, P64 - 1, 2 ** 63]
        out = f64.horner_eval(coeffs, np.array(points, dtype=object))

        def scalar(x):
            acc = 0
            for c in coeffs:
                acc = (acc * x + c) % P64
            return acc

        assert list(out) == [scalar(x % P64) for x in points]
