"""Tests for profile snapshots, folded export, and the diff engine."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import perf
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler


def _profiled_run():
    profiler = Profiler()
    profiler.configure(MetricsRegistry())
    with profiler.span("decode"):
        with profiler.span("newton"):
            sum(range(5000))
        with profiler.span("rootfind"):
            sum(range(5000))
    profiler.disable()
    return profiler


class TestProfileSnapshot:
    def test_snapshot_carries_sorted_paths(self):
        profiler = _profiled_run()
        doc = perf.profile_snapshot(profiler, scenario="unit", seed=7,
                                    git_rev="abc1234")
        assert doc["kind"] == "profile"
        assert doc["schema"] == perf.PROFILE_SCHEMA
        assert doc["scenario"] == "unit"
        assert doc["seed"] == 7
        assert doc["git_rev"] == "abc1234"
        paths = [span["path"] for span in doc["spans"]]
        assert paths == sorted(paths)
        assert "decode;newton" in paths

    def test_snapshot_roundtrip(self, tmp_path):
        doc = perf.profile_snapshot(_profiled_run(), scenario="unit",
                                    git_rev=None)
        path = str(tmp_path / "PROFILE_unit.json")
        perf.write_profile(doc, path)
        loaded = perf.load_profile(path)
        assert loaded == json.loads(json.dumps(doc))

    def test_load_rejects_non_profile(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"kind": "telemetry"}')
        with pytest.raises(ObservabilityError):
            perf.load_profile(str(path))

    def test_format_profile_lists_heaviest_paths(self):
        doc = perf.profile_snapshot(_profiled_run(), scenario="unit",
                                    git_rev=None)
        text = perf.format_profile(doc, top=2)
        assert "profile: unit" in text
        assert "more path(s)" in text  # 3 paths, top=2

    def test_format_profile_includes_flow_table(self):
        doc = perf.profile_snapshot(
            _profiled_run(), scenario="unit", git_rev=None,
            flows={"kind": "flow-accounts", "schema": 1,
                   "total_bank_bytes": 82,
                   "flows": {"flow0": {"observed": 4, "frames_emitted": 2,
                                       "bytes_emitted": 164,
                                       "bank_bytes": 82}}})
        text = perf.format_profile(doc)
        assert "flow0" in text
        assert "164" in text


class TestFolded:
    def test_folded_lines_are_sorted_integer_microseconds(self):
        doc = perf.profile_snapshot(_profiled_run(), git_rev=None)
        text = perf.render_folded(doc)
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack
            assert int(weight) > 0

    def test_folded_omits_zero_weight_paths(self):
        doc = {"kind": "profile", "schema": 1,
               "spans": [{"path": "a", "self_s": 0.0},
                         {"path": "b", "self_s": 0.5}]}
        assert perf.render_folded(doc) == "b 500000"

    def test_write_folded(self, tmp_path):
        doc = perf.profile_snapshot(_profiled_run(), git_rev=None)
        path = str(tmp_path / "out.folded")
        perf.write_folded(doc, path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read().rstrip("\n") == perf.render_folded(doc)


class TestClassifyFlatten:
    def test_classify_bench(self):
        assert perf.classify_snapshot(
            {"area": "quack", "metrics": {}}) == "bench"

    def test_classify_unknown_raises(self):
        with pytest.raises(ObservabilityError):
            perf.classify_snapshot({"kind": "mystery"})

    def test_flatten_bench_uses_means(self):
        kind, flat, rev = perf.flatten_snapshot({
            "area": "quack", "git_rev": "abc",
            "metrics": {"decode_us": {"mean": 120.0, "stdev": 3.0}}})
        assert kind == "bench"
        assert flat == {"decode_us": 120.0}
        assert rev == "abc"

    def test_flatten_profile_self_time_and_calls(self):
        doc = perf.profile_snapshot(_profiled_run(), git_rev="r1")
        kind, flat, rev = perf.flatten_snapshot(doc)
        assert kind == "profile"
        assert rev == "r1"
        assert "decode;newton" in flat
        assert flat["calls:decode;newton"] == 1.0


class TestDiff:
    def test_ranking_is_deterministic_and_severity_ordered(self):
        entries = perf.diff_flat(
            {"a": 1.0, "b": 1.0, "c": 1.0, "gone": 5.0},
            {"a": 3.0, "b": 1.1, "c": 1.0, "new": 2.0})
        names = [entry.name for entry in entries]
        # One-sided entries first (inf severity), name tie-break.
        assert names[:2] == ["gone", "new"]
        assert names[2] == "a"  # 3x beats 1.1x
        severities = [entry.severity for entry in entries]
        assert severities == sorted(severities, reverse=True)

    def test_one_sided_never_trips_threshold(self):
        entries = perf.diff_flat({"gone": 5.0}, {"new": 2.0})
        assert all(not entry.exceeded for entry in entries)
        assert all(math.isinf(entry.severity) for entry in entries)

    def test_threshold_symmetry(self):
        entries = perf.diff_flat({"up": 1.0, "down": 9.0, "flat": 1.0},
                                 {"up": 3.0, "down": 3.0, "flat": 1.2},
                                 threshold=2.0)
        by_name = {entry.name: entry for entry in entries}
        assert by_name["up"].exceeded
        assert by_name["down"].exceeded  # a 3x improvement also ranks
        assert not by_name["flat"].exceeded

    def test_noise_floor_drops_tiny_series(self):
        entries = perf.diff_flat({"tiny": 1e-12}, {"tiny": 9e-12},
                                 min_abs=1e-9)
        assert entries == []

    def test_zero_crossing_exceeds(self):
        entries = perf.diff_flat({"z": 0.0}, {"z": 4.0})
        assert entries[0].exceeded
        assert entries[0].note == "moved across zero"

    def test_bad_threshold_raises(self):
        with pytest.raises(ObservabilityError):
            perf.diff_flat({}, {}, threshold=1.0)

    def test_diff_files_bench_kind(self, tmp_path):
        def write(name, mean):
            path = tmp_path / name
            path.write_text(json.dumps({
                "schema": 1, "area": "quack", "git_rev": f"rev-{name}",
                "metrics": {"decode_us": {"mean": mean}}}))
            return str(path)

        report = perf.diff_files(write("a.json", 100.0),
                                 write("b.json", 500.0))
        assert report.kind == "bench"
        assert report.baseline_rev == "rev-a.json"
        assert not report.ok
        text = perf.format_diff(report)
        assert "FAIL" in text
        assert "rev-a.json" in text

    def test_diff_mismatched_kinds_raise(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"area": "x", "metrics": {}}))
        profile = tmp_path / "prof.json"
        profile.write_text(json.dumps({"kind": "profile", "schema": 1,
                                       "spans": []}))
        with pytest.raises(ObservabilityError):
            perf.diff_files(str(bench), str(profile))

    def test_diff_profiles(self, tmp_path):
        doc_a = perf.profile_snapshot(_profiled_run(), git_rev=None)
        doc_b = json.loads(json.dumps(doc_a))
        for span in doc_b["spans"]:
            span["self_s"] *= 10.0
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        perf.write_profile(doc_a, a)
        perf.write_profile(doc_b, b)
        report = perf.diff_files(a, b)
        assert report.kind == "profile"
        assert not report.ok

    def test_diff_telemetry_snapshots(self, tmp_path):
        from repro import obs
        from repro.obs.aggregate import mergeable_snapshot

        obs.reset()
        obs.enable_metrics()
        obs.count("quack_decodes_total", status="ok")
        snapshot = mergeable_snapshot(obs.METRICS)
        obs.disable()
        obs.reset()
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(snapshot))
        b.write_text(json.dumps(snapshot))
        report = perf.diff_files(str(a), str(b))
        assert report.kind == "telemetry"
        assert report.ok  # identical sides


class TestSpanHints:
    def test_hints_name_moved_paths(self, tmp_path):
        from repro.bench.store import profile_path

        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        doc = perf.profile_snapshot(_profiled_run(), git_rev=None)
        moved = json.loads(json.dumps(doc))
        for span in moved["spans"]:
            span["self_s"] *= 5.0
        perf.write_profile(doc, profile_path(str(base_dir), "quack"))
        perf.write_profile(moved, profile_path(str(cur_dir), "quack"))
        hints = perf.span_regression_hints(str(cur_dir), str(base_dir),
                                           ["quack"], min_abs=0.0)
        assert "area quack" in hints
        assert "calls:" not in hints

    def test_missing_profiles_are_skipped_silently(self, tmp_path):
        hints = perf.span_regression_hints(str(tmp_path), str(tmp_path),
                                           ["quack", "obs"])
        assert hints == ""
