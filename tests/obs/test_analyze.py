"""Tests for the trace-analytics engine (repro.obs.analyze)."""

import json

import pytest

from repro import obs
from repro.obs.analyze import (
    ConnectionTimeline,
    ParsedTrace,
    analyze,
    load_trace,
    parse_lines,
)


@pytest.fixture(autouse=True)
def _clean_switchboard():
    yield
    obs.disable()
    obs.reset()


def _line(etype, t, **fields):
    return json.dumps({"t": t, "type": etype, **fields})


def _flow_lines(flow, t0=0.0, pn0=0):
    """A tiny but complete single-connection trace fragment."""
    return [
        _line("transport.send", t0 + 0.00, flow=flow, pn=pn0, size=1200),
        _line("transport.cwnd", t0 + 0.01, flow=flow, cwnd=14_400,
              in_flight=1200, srtt=0.05),
        _line("transport.send", t0 + 0.02, flow=flow, pn=pn0 + 1, size=1200),
        _line("transport.loss", t0 + 0.10, flow=flow, pn=pn0,
              trigger="sidecar", congestion=True),
        _line("transport.retransmit", t0 + 0.11, flow=flow, pn=pn0 + 2,
              size=1200, cause="quack", latency=0.10),
        _line("transport.sample", t0 + 0.12, flow=flow, cwnd=7200,
              in_flight=2400, srtt=0.06),
        _line("transport.complete", t0 + 0.20, flow=flow, bytes=2400),
    ]


class TestParsing:
    def test_empty_input(self):
        trace = parse_lines([])
        assert trace.records == []
        assert trace.malformed == 0

    def test_blank_lines_skipped_silently(self):
        trace = parse_lines(["", "   ", "\n"])
        assert trace.records == []
        assert trace.malformed == 0

    def test_malformed_lines_counted_never_raised(self):
        lines = [
            "not json at all {",
            json.dumps(["an", "array"]),
            json.dumps({"type": "transport.send"}),          # no t
            json.dumps({"t": 1.0}),                          # no type
            json.dumps({"t": True, "type": "transport.send"}),  # bool t
            _line("transport.send", 0.5, flow="flow0", pn=0, size=1),
        ]
        trace = parse_lines(lines)
        assert trace.malformed == 5
        assert len(trace.records) == 1

    def test_unknown_event_types_kept(self):
        trace = parse_lines([_line("future.event", 1.0, anything=1)])
        assert trace.malformed == 0
        assert len(trace.records) == 1

    def test_load_trace_reads_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(_flow_lines("flow0")) + "\ngarbage\n")
        trace = load_trace(str(path))
        assert trace.source == str(path)
        assert trace.malformed == 1
        assert len(trace.records) == 7


class TestAnalyzeEmpty:
    def test_empty_trace(self):
        analysis = analyze(ParsedTrace(records=[], malformed=0))
        assert analysis.events == 0
        assert analysis.connections == {}
        assert analysis.attribution.total == 0
        assert analysis.decode.decodes == 0
        assert not analysis.truncated
        text = analysis.render_text()
        assert "nothing to analyze" in text
        analysis.render_markdown()  # must not raise

    def test_malformed_only_trace(self):
        trace = parse_lines(["{{{{", "nope"])
        analysis = analyze(trace)
        assert analysis.events == 0
        assert analysis.malformed == 2
        assert "2 malformed" in analysis.render_text()


class TestSingleConnection:
    def test_timeline_and_attribution(self):
        trace = parse_lines(_flow_lines("flow0"))
        analysis = analyze(trace)
        assert set(analysis.connections) == {"flow0"}
        timeline = analysis.connections["flow0"]
        assert timeline.sends == 2
        assert timeline.retransmits == 1
        assert timeline.losses == 1
        assert timeline.completed_at == pytest.approx(0.20)
        assert timeline.completed_bytes == 2400
        assert len(timeline.points) == 2
        times, cwnd = timeline.series("cwnd")
        assert times == [pytest.approx(0.01), pytest.approx(0.12)]
        assert cwnd == [14_400.0, 7_200.0]

        stats = analysis.attribution.by_cause()
        assert set(stats) == {"quack"}
        assert stats["quack"].count == 1
        assert stats["quack"].mean_latency == pytest.approx(0.10)
        assert analysis.attribution.unattributed == 0
        assert not analysis.truncated

    def test_out_of_order_records_are_sorted(self):
        lines = _flow_lines("flow0")
        trace = parse_lines(reversed(lines))
        analysis = analyze(trace)
        assert analysis.start == pytest.approx(0.0)
        assert analysis.end == pytest.approx(0.20)
        times, _ = analysis.connections["flow0"].series("cwnd")
        assert times == sorted(times)


class TestMultiConnection:
    def test_interleaved_flows_separate_cleanly(self):
        lines = []
        # interleave two connections line by line
        for a, b in zip(_flow_lines("flow0", t0=0.0),
                        _flow_lines("flow1", t0=0.005)):
            lines.extend([a, b])
        analysis = analyze(parse_lines(lines))
        assert set(analysis.connections) == {"flow0", "flow1"}
        for flow in ("flow0", "flow1"):
            timeline = analysis.connections[flow]
            assert timeline.sends == 2
            assert timeline.retransmits == 1
            assert timeline.completed_bytes == 2400
        causes = {record.flow for record in analysis.attribution.records}
        assert causes == {"flow0", "flow1"}

    def test_flow_selection_in_render(self):
        lines = _flow_lines("flow0") + _flow_lines("flow1", t0=1.0)
        analysis = analyze(parse_lines(lines))
        text = analysis.render_text(flows=["flow1"])
        assert "connection flow1" in text
        assert "connection flow0" not in text


class TestTruncation:
    def test_min_pn_above_zero_flags_truncation(self):
        trace = parse_lines(_flow_lines("flow0", pn0=40))
        analysis = analyze(trace)
        assert analysis.truncated
        assert "truncated" in analysis.render_text()
        assert "Warning" in analysis.render_markdown()

    def test_explicit_dropped_count_flags_truncation(self):
        trace = parse_lines(_flow_lines("flow0"))
        analysis = analyze(trace, dropped_events=17)
        assert analysis.truncated
        assert "17 events dropped" in analysis.render_text()

    def test_truncated_ring_run_is_detected(self):
        """A real ring-capped run analyzes without crashing and flags it."""
        from repro.obs.runner import run_traced

        result = run_traced("cc-division", seed=1, total_bytes=60_000,
                            capacity=40)
        assert result.events_dropped > 0
        analysis = analyze(result.events,
                           dropped_events=result.events_dropped)
        assert analysis.truncated
        analysis.render_text()  # must not raise on a partial trace


class TestDecodeAndHealth:
    def test_decode_health_series(self):
        lines = [
            _line("quack.decode", 0.1, status="ok", missing=2),
            _line("quack.decode", 0.2, status="ok", missing=5),
            _line("quack.decode", 0.3, status="threshold_exceeded",
                  missing=30),
            _line("sidecar.reset", 0.35, flow="flow0", epoch=1,
                  reason="threshold_exceeded"),
            _line("sidecar.wire_error", 0.4, flow="flow0"),
        ]
        analysis = analyze(parse_lines(lines))
        decode = analysis.decode
        assert decode.decodes == 3
        assert decode.success_rate == pytest.approx(2 / 3)
        assert decode.failures() == {"threshold_exceeded": 1}
        assert decode.max_missing == 30
        assert decode.resets == 1
        assert decode.false_positive_resets == 0
        assert decode.wire_errors == 1

    def test_false_positive_reset_detected(self):
        lines = [
            _line("quack.decode", 0.1, status="ok", missing=0),
            _line("sidecar.reset", 0.2, flow="flow0", epoch=1,
                  reason="spurious"),
        ]
        analysis = analyze(parse_lines(lines))
        assert analysis.decode.false_positive_resets == 1

    def test_health_dwell_times(self):
        lines = [
            _line("transport.send", 0.0, flow="flow0", pn=0, size=1),
            _line("sidecar.health", 1.0, old="healthy", new="degraded",
                  reason="decode_failures"),
            _line("sidecar.health", 3.0, old="degraded", new="healthy",
                  reason="recovered"),
            _line("transport.complete", 4.0, flow="flow0", bytes=1),
        ]
        analysis = analyze(parse_lines(lines))
        dwell = analysis.health.dwell_s
        assert dwell["healthy"] == pytest.approx(2.0)  # 0..1 and 3..4
        assert dwell["degraded"] == pytest.approx(2.0)
        assert analysis.health.final_state == "healthy"


class TestUnattributed:
    def test_pre_tagging_retransmits_counted_not_guessed(self):
        lines = [  # a retransmit event without the cause/latency fields
            json.dumps({"t": 0.5, "type": "transport.retransmit",
                        "flow": "flow0", "pn": 3, "size": 1200}),
        ]
        analysis = analyze(parse_lines(lines))
        assert analysis.attribution.unattributed == 1
        assert analysis.attribution.records == []
        assert "no cause tag" in analysis.render_text()


class TestEndToEnd:
    def test_real_run_fully_attributed(self, tmp_path):
        """Every retransmit in a live lossy run gets a known cause."""
        from repro.obs import export_jsonl
        from repro.obs.runner import run_traced

        result = run_traced("retransmission", seed=1, total_bytes=200_000)
        path = tmp_path / "trace.jsonl"
        export_jsonl(result.events, str(path))
        analysis = analyze(load_trace(str(path)))

        assert analysis.malformed == 0
        assert analysis.connections  # at least one connection seen
        retransmits = sum(t.retransmits
                          for t in analysis.connections.values())
        assert retransmits > 0, "lossy run must retransmit"
        assert analysis.attribution.unattributed == 0
        for record in analysis.attribution.records:
            assert record.cause in ("quack", "ack", "pto")
            assert record.latency is not None and record.latency > 0
        # both render paths digest a real trace
        text = analysis.render_text()
        assert "loss-recovery attribution" in text
        markdown = analysis.render_markdown()
        assert "## Loss-recovery attribution" in markdown
