"""End-to-end tests: traced scenarios cover every core component."""

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.runner import known_scenarios, run_traced, summarize
from repro.obs.schema import validate_file, validate_record


@pytest.fixture(autouse=True)
def _clean_switchboard():
    """Never leak an enabled tracer into other tests."""
    yield
    obs.disable()
    obs.reset()


class TestRunTraced:
    def test_unknown_scenario(self):
        with pytest.raises(ObservabilityError, match="unknown scenario"):
            run_traced("nope")

    def test_known_scenarios_lists_experiments_and_plans(self):
        names = known_scenarios()
        assert "cc-division" in names
        assert "blackout" in names

    def test_experiment_covers_all_core_components(self):
        result = run_traced("cc-division", seed=1, total_bytes=60_000)
        assert result.missing_core_components() == []
        assert result.events_dropped == 0
        assert not obs.TRACER.enabled  # switched off on the way out
        for event in result.events:
            validate_record(event.to_dict())

    def test_chaos_plan_scenario(self):
        result = run_traced("blackout", seed=1, total_bytes=60_000)
        assert result.missing_core_components() == []
        assert result.outcome.ok

    def test_ring_capacity_bounds_memory(self):
        result = run_traced("cc-division", seed=1, total_bytes=60_000,
                            capacity=50)
        assert len(result.events) == 50
        assert result.events_dropped == result.events_emitted - 50

    def test_metrics_snapshot_is_json_safe(self):
        result = run_traced("cc-division", seed=1, total_bytes=60_000)
        json.dumps(result.metrics, allow_nan=False)  # must not raise
        assert "transport_packets_sent_total" in result.metrics

    def test_profiler_spans_recorded(self):
        result = run_traced("cc-division", seed=1, total_bytes=60_000)
        spans = {entry["labels"]["span"]
                 for entry in result.metrics["obs_span_seconds"]["series"]}
        assert "quack.power_sum_update" in spans
        assert "quack.wire_encode" in spans and "quack.wire_decode" in spans

    def test_jsonl_export_validates(self, tmp_path):
        result = run_traced("ack-reduction", seed=2, total_bytes=60_000)
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(result.events, str(path))
        components = validate_file(str(path))
        for name in ("link", "transport", "quack", "sidecar"):
            assert components.get(name, 0) > 0


class TestSummarize:
    def test_summary_text(self):
        result = run_traced("cc-division", seed=1, total_bytes=60_000)
        text = summarize(result)
        assert "scenario: cc-division (seed 1)" in text
        assert "events by component" in text
        assert "metrics:" in text
        assert "WARNING" not in text
