"""Tests for the flight recorder (repro.obs.flight)."""

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.flight import FlightRecorder


@pytest.fixture(autouse=True)
def _clean_switchboard():
    yield
    obs.disable()
    obs.reset()
    obs.FLIGHT.disarm()


def _event(etype, t, **fields):
    return {"t": t, "type": etype, **fields}


def _lifecycle_events(ctx=3):
    return [
        _event("transport.send", 1.0, flow="f", pn=0, size=1460, ctx=ctx),
        _event("link.drop", 1.1, link="a->b", kind="data", size=1460,
               reason="loss", ctx=ctx),
        _event("sidecar.gap_detect", 1.2, flow="f", ctx=ctx, latency=0.2),
    ]


def _read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestTrigger:
    def test_disarmed_trigger_is_a_noop(self, tmp_path):
        recorder = FlightRecorder()
        assert recorder.trigger("whatever") is None
        assert recorder.dumps == []

    def test_dump_layout(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        path = recorder.trigger(
            "invariant-failure", scenario="blackout", time=2.5,
            detail="1 invariant violation(s)",
            events=_lifecycle_events(),
            extra_records=[{"kind": "invariant-violation", "text": "boom"}])
        records = _read_jsonl(path)
        header = records[0]
        assert header["kind"] == "flight-recorder"
        assert header["reason"] == "invariant-failure"
        assert header["scenario"] == "blackout"
        assert header["events"] == 3
        # The only span in the window is un-delivered, so it is elected.
        assert header["implicated_ctx"] == 3
        assert records[1]["type"] == "transport.send"
        assert {"kind": "invariant-violation", "text": "boom"} in records
        tree = records[-1]
        assert tree["kind"] == "span-tree" and tree["ctx"] == 3
        stages = [entry["stage"] for entry in tree["tree"]["stages"]]
        assert "gap_detected" in stages

    def test_explicit_implicated_ctx_wins(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        events = _lifecycle_events(ctx=3) + [
            _event("transport.send", 1.0, flow="f", pn=1, size=1460, ctx=4),
            _event("transport.deliver", 1.3, flow="f", pn=1, ctx=4),
        ]
        path = recorder.trigger("wire-error", implicated_ctx=4,
                                events=events)
        header = _read_jsonl(path)[0]
        assert header["implicated_ctx"] == 4

    def test_window_keeps_only_last_n(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path), last_n=2)
        path = recorder.trigger("overflow", events=_lifecycle_events())
        records = _read_jsonl(path)
        assert records[0]["events"] == 2
        assert records[0]["dropped_before_window"] == 1
        assert records[1]["type"] == "link.drop"

    def test_filenames_are_sequence_numbered(self, tmp_path):
        recorder = FlightRecorder()
        recorder.configure(str(tmp_path))
        first = recorder.trigger("a", scenario="plan one", events=[])
        second = recorder.trigger("a", events=[])
        assert first.endswith("flight-001-a-plan_one.jsonl")
        assert second.endswith("flight-002-a.jsonl")
        assert recorder.dumps == [first, second]

    def test_configure_rejects_bad_last_n(self, tmp_path):
        with pytest.raises(ObservabilityError, match="last_n"):
            FlightRecorder().configure(str(tmp_path), last_n=0)

    def test_trigger_reads_live_ring_by_default(self, tmp_path):
        obs.enable(profile=False)
        obs.TRACER.emit("transport.send", 1.0, flow="f", pn=0, size=1460,
                        ctx=11)
        obs.FLIGHT.configure(str(tmp_path))
        path = obs.FLIGHT.trigger("wire-error")
        records = _read_jsonl(path)
        assert records[0]["events"] == 1
        assert records[1]["ctx"] == 11


class TestChaosIntegration:
    def test_passing_plan_writes_no_dump(self, tmp_path):
        from repro.chaos.harness import run_plan

        obs.FLIGHT.configure(str(tmp_path))
        obs.enable(profile=False)
        result = run_plan("blackout", seed=1, total_bytes=1460 * 200)
        assert result.ok
        assert obs.FLIGHT.dumps == []
