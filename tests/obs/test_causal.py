"""Tests for per-packet lifecycle span trees (repro.obs.causal)."""

import pytest

from repro import obs
from repro.obs.causal import (
    REPAIR_LIFECYCLE,
    build_span_trees,
    format_causal_summary,
    format_span_tree,
)


@pytest.fixture(autouse=True)
def _clean_switchboard():
    yield
    obs.disable()
    obs.reset()


def _record(etype, t, **fields):
    return {"t": t, "type": etype, **fields}


def _local_repair_records(ctx=7, flow="flow0"):
    """One datagram lost on the wire and locally repaired by the sidecar.

    The quACK that reveals the gap is emitted by the *surrounding*
    packets while the victim is missing; the middlebox only observes the
    victim after the repair re-sends it.
    """
    return [
        _record("transport.send", 1.00, flow=flow, pn=3, size=1460, ctx=ctx),
        _record("link.drop", 1.01, link="p1->p2", kind="data", size=1460,
                reason="loss", ctx=ctx),
        _record("sidecar.quack_emit", 1.05, role="proxy", flow=flow, epoch=0),
        _record("sidecar.gap_detect", 1.06, flow=flow, ctx=ctx,
                latency=0.06),
        _record("sidecar.retransmit", 1.06, flow=flow, cause="quack",
                latency=0.06, ctx=ctx),
        _record("sidecar.mb_observe", 1.07, flow=flow, ctx=ctx),
        _record("transport.deliver", 1.10, flow=flow, pn=3, ctx=ctx),
    ]


class TestAssembly:
    def test_local_repair_span_is_complete_and_monotonic(self):
        analysis = build_span_trees(_local_repair_records())
        assert len(analysis.roots) == 1
        root = analysis.roots[0]
        assert root.ctx == 7
        assert root.attribution == "sidecar"
        assert root.monotonic
        assert root.lifecycle_complete
        assert root.tree_stages() >= set(REPAIR_LIFECYCLE)

    def test_quack_association_picks_gap_revealing_emit(self):
        # Two emits bracket the gap detection; the one *before* it (the
        # decode input) must be credited, not the later one.
        records = _local_repair_records()
        records.append(_record("sidecar.quack_emit", 1.09, role="proxy",
                               flow="flow0", epoch=0))
        root = build_span_trees(records).roots[0]
        emit = next(entry for entry in root.stages
                    if entry.stage == "quack_emitted")
        assert emit.time == 1.05
        assert emit.detail["gap"] == 1.06

    def test_e2e_retransmission_becomes_child_span(self):
        records = [
            _record("transport.send", 1.0, flow="f", pn=0, size=1460, ctx=1),
            _record("transport.loss", 1.4, flow="f", pn=0, trigger="reorder",
                    congestion=True, ctx=1),
            _record("transport.retransmit", 1.5, flow="f", pn=5, size=1460,
                    cause="ack", latency=0.5, ctx=9, parent_ctx=1),
            _record("transport.deliver", 1.6, flow="f", pn=5, ctx=9),
        ]
        analysis = build_span_trees(records)
        assert len(analysis.roots) == 1
        root = analysis.roots[0]
        assert [child.ctx for child in root.children] == [9]
        assert root.attribution == "e2e-ack"
        assert root.delivered_in_tree
        assert root.monotonic
        # The parent mirrors the child's departure as its repair stage.
        times = root.stage_times()
        assert times["retransmitted"] == 1.5

    def test_undelivered_span_is_lost(self):
        records = [
            _record("transport.send", 1.0, flow="f", pn=0, size=1460, ctx=1),
            _record("link.drop", 1.1, link="a->b", kind="data", size=1460,
                    reason="loss", ctx=1),
        ]
        root = build_span_trees(records).roots[0]
        assert root.attribution == "lost"
        assert not root.lifecycle_complete

    def test_clean_delivery_has_no_gap_stage(self):
        records = [
            _record("transport.send", 1.0, flow="f", pn=0, size=1460, ctx=1),
            _record("sidecar.mb_observe", 1.1, flow="f", ctx=1),
            _record("sidecar.quack_emit", 1.2, role="proxy", flow="f",
                    epoch=0),
            _record("transport.deliver", 1.3, flow="f", pn=0, ctx=1),
        ]
        root = build_span_trees(records).roots[0]
        assert root.attribution == "clean"
        assert root.monotonic
        # The covering quACK is attached without a gap credit.
        emit = next(entry for entry in root.stages
                    if entry.stage == "quack_emitted")
        assert "gap" not in emit.detail

    def test_events_without_ctx_contribute_nothing(self):
        records = [
            _record("transport.send", 1.0, flow="f", pn=0, size=1460),
            _record("sidecar.quack_emit", 1.2, role="proxy", flow="f",
                    epoch=0),
        ]
        analysis = build_span_trees(records)
        assert analysis.roots == []

    def test_out_of_order_input_is_sorted_by_time(self):
        records = list(reversed(_local_repair_records()))
        root = build_span_trees(records).roots[0]
        assert root.monotonic and root.lifecycle_complete


class TestRendering:
    def test_span_tree_text(self):
        root = build_span_trees(_local_repair_records()).roots[0]
        text = format_span_tree(root)
        assert "ctx 7" in text and "[sidecar]" in text
        assert "quack_emitted" in text and "retransmitted" in text
        assert "!! non-monotonic" not in text

    def test_causal_summary_counts(self):
        analysis = build_span_trees(_local_repair_records())
        text = format_causal_summary(analysis)
        assert "span trees: 1 packets" in text
        assert "sidecar=1" in text
        assert "complete repair lifecycles: 1" in text

    def test_span_to_dict_round_trips_edges(self):
        root = build_span_trees(_local_repair_records()).roots[0]
        record = root.to_dict()
        assert record["attribution"] == "sidecar"
        assert record["monotonic"] is True
        assert any("gap_detected" in key for key in record["edges"])


class TestAcceptance:
    """The ISSUE's acceptance surface: a real traced retransmission run
    produces at least one complete, monotonic repair lifecycle."""

    def test_traced_retransmission_yields_complete_repairs(self):
        from repro.obs.runner import run_traced

        result = run_traced("retransmission", seed=1,
                            total_bytes=1460 * 200, loss=0.05)
        try:
            analysis = build_span_trees(result.events)
        finally:
            obs.disable()
            obs.reset()
        assert len(analysis.roots) >= 200
        complete = analysis.complete_repairs()
        assert len(complete) >= 1
        assert all(root.monotonic for root in analysis.roots)
        counts = analysis.attribution_counts()
        assert counts.get("sidecar", 0) >= 1
        # Every complete repair shows the full chain in virtual-time
        # order inside its own tree.
        for root in complete:
            assert root.tree_stages() >= set(REPAIR_LIFECYCLE)
