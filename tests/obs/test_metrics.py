"""Tests for the labeled metrics registry."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    json_safe,
)


class TestJsonSafe:
    def test_finite_passthrough(self):
        assert json_safe(1.5) == 1.5
        assert json_safe(0) == 0
        assert json_safe("x") == "x"
        assert json_safe(None) is None

    def test_non_finite_to_none(self):
        assert json_safe(float("inf")) is None
        assert json_safe(float("-inf")) is None
        assert json_safe(float("nan")) is None


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_reset(self):
        counter = Counter()
        counter.inc(7)
        counter.reset()
        assert counter.snapshot() == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.snapshot() == 12.0


class TestHistogram:
    def test_observations(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.05
        assert snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(55.55 / 4)

    def test_quantile_from_buckets(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0

    def test_empty_snapshot_has_no_extremes(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_quantile_validation(self):
        with pytest.raises(ObservabilityError):
            Histogram().quantile(1.5)

    def test_overflow_quantile_reports_observed_max(self):
        # Every sample lands past the last bound: the bound itself would
        # understate the tail, so the observed maximum is reported.
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (5.0, 8.0, 50.0):
            hist.observe(value)
        assert hist.quantile(0.99) == 50.0
        assert hist.quantile(0.5) == 50.0

    def test_overflow_quantile_never_below_last_bound(self):
        snap = Histogram(buckets=(1.0, 2.0))
        snap.counts[-1] = 1  # overflow count with maximum unset
        snap.count = 1
        assert snap.quantile(0.99) == 2.0

    def test_needs_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", labels=("a",))
        second = registry.counter("x_total", labels=("a",))
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ObservabilityError):
            registry.counter("x_total", labels=("b",))

    def test_wrong_labels_on_child(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("a",))
        with pytest.raises(ObservabilityError):
            family.labels(b=1)

    def test_per_family_bucket_override(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", buckets=(0.5, 1.0, 3.0))
        family.labels().observe(2.0)
        assert family.labels().quantile(0.5) == 3.0
        # Re-registration with the same override is idempotent.
        assert registry.histogram("lat_seconds",
                                  buckets=(0.5, 1.0, 3.0)) is family

    def test_bucket_override_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.5, 1.0))
        with pytest.raises(ObservabilityError, match="bucket"):
            registry.histogram("lat_seconds", buckets=(0.5, 2.0))

    def test_children_keyed_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("a",))
        family.labels(a="one").inc()
        family.labels(a="one").inc()
        family.labels(a="two").inc()
        snap = family.snapshot()
        values = {tuple(s["labels"].items()): s["value"]
                  for s in snap["series"]}
        assert values[(("a", "one"),)] == 2.0
        assert values[(("a", "two"),)] == 1.0

    def test_reset_zeroes_but_keeps_families(self):
        registry = MetricsRegistry()
        registry.counter("x_total").labels().inc(5)
        registry.reset()
        snap = registry.snapshot()
        assert snap["x_total"]["series"][0]["value"] == 0.0

    def test_render_json_valid_with_infinite_gauge(self):
        # RttEstimator.min_rtt starts at inf; the export must stay JSON.
        registry = MetricsRegistry()
        registry.gauge("transport_min_rtt_seconds").labels().set(math.inf)
        parsed = json.loads(registry.render_json())
        assert parsed["transport_min_rtt_seconds"]["series"][0]["value"] is None

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",)).labels(a="y").inc(3)
        text = registry.render_text()
        assert "x_total{a=y}" in text and "3" in text

    def test_render_text_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()
