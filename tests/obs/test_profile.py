"""Tests for the hierarchical wall-clock profiler."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SPAN_METRIC, Profiler


class TestProfiler:
    def test_disabled_begin_is_falsy(self):
        profiler = Profiler()
        assert profiler.begin() == 0.0
        # end() without configure must be harmless.
        profiler.end("x", 0.0)

    def test_records_span_into_histogram(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        started = profiler.begin()
        assert started > 0.0
        profiler.end("quack.newton", started)
        snap = registry.snapshot()[SPAN_METRIC]["series"]
        assert snap[0]["labels"] == {"span": "quack.newton"}
        assert snap[0]["value"]["count"] == 1
        assert snap[0]["value"]["min"] >= 0.0

    def test_span_context_manager(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        with profiler.span("report.section"):
            pass
        series = registry.snapshot()[SPAN_METRIC]["series"]
        assert series[0]["value"]["count"] == 1

    def test_span_context_manager_disabled(self):
        profiler = Profiler()
        with profiler.span("x"):
            pass  # nothing recorded, nothing raised

    def test_disable_stops_recording(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        started = profiler.begin()
        profiler.disable()
        profiler.end("x", started)
        assert SPAN_METRIC not in registry.snapshot() \
            or not registry.snapshot()[SPAN_METRIC]["series"]


class TestHierarchy:
    def _configured(self):
        profiler = Profiler()
        profiler.configure(MetricsRegistry())
        return profiler

    def test_nested_spans_build_call_paths(self):
        profiler = self._configured()
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        stats = profiler.path_stats()
        assert set(stats) == {("outer",), ("outer", "inner")}
        assert stats[("outer", "inner")].calls == 1
        assert stats[("outer",)].calls == 1

    def test_self_time_excludes_children(self):
        profiler = self._configured()
        with profiler.span("outer"):
            with profiler.span("inner"):
                sum(range(20_000))
        stats = profiler.path_stats()
        outer = stats[("outer",)]
        inner = stats[("outer", "inner")]
        assert outer.cum_seconds >= inner.cum_seconds
        assert outer.self_seconds <= outer.cum_seconds - inner.cum_seconds \
            + 1e-9
        assert inner.self_seconds == pytest.approx(inner.cum_seconds)

    def test_reentrant_same_name_nests(self):
        profiler = self._configured()
        with profiler.span("work"):
            with profiler.span("work"):
                pass
        stats = profiler.path_stats()
        assert set(stats) == {("work",), ("work", "work")}

    def test_exception_inside_span_unwinds_stack(self):
        profiler = self._configured()
        with pytest.raises(ValueError):
            with profiler.span("outer"):
                with profiler.span("inner"):
                    raise ValueError("boom")
        assert profiler.depth == 0
        stats = profiler.path_stats()
        assert ("outer", "inner") in stats
        assert ("outer",) in stats

    def test_abandoned_explicit_begin_is_discarded_as_orphan(self):
        profiler = self._configured()
        with profiler.span("outer"):
            # An explicit begin whose end is skipped by an exception.
            profiler.begin("leaky")
        # The orphan was discarded when "outer" ended: depth balanced,
        # no "leaky" path recorded, later spans attribute normally.
        assert profiler.depth == 0
        with profiler.span("next"):
            pass
        stats = profiler.path_stats()
        assert all("leaky" not in path for path in stats)
        assert ("next",) in stats

    def test_end_without_begin_records_flat_at_root(self):
        profiler = self._configured()
        profiler.end("stray", 1.0)  # started while disabled, say
        assert ("stray",) in profiler.path_stats()

    def test_hierarchical_totals_equal_flat_histogram_sums(self):
        """Differential guard: per-name cum time across paths must equal
        the flat ``obs_span_seconds`` histogram the old profiler fed."""
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        for _ in range(3):
            with profiler.span("decode"):
                with profiler.span("newton"):
                    sum(range(1000))
                with profiler.span("rootfind"):
                    pass
        with profiler.span("newton"):  # same name, different path
            pass
        by_name: dict[str, float] = {}
        for path, stat in profiler.path_stats().items():
            by_name[path[-1]] = by_name.get(path[-1], 0.0) \
                + stat.cum_seconds
        series = registry.snapshot()[SPAN_METRIC]["series"]
        flat = {entry["labels"]["span"]: entry["value"]
                for entry in series}
        assert set(flat) == set(by_name)
        for name, value in flat.items():
            assert by_name[name] == pytest.approx(value["sum"], rel=1e-9)
        assert flat["newton"]["count"] == 4
        assert flat["decode"]["count"] == 3

    def test_reset_clears_paths_and_open_frames(self):
        profiler = self._configured()
        profiler.begin("open")
        profiler.reset()
        assert profiler.path_stats() == {}
        assert profiler.depth == 0

    def test_allocation_tracking_attributes_bytes(self):
        profiler = Profiler()
        profiler.configure(MetricsRegistry(), allocations=True)
        try:
            with profiler.span("alloc"):
                keep = [bytearray(64 * 1024)]
                assert keep
        finally:
            profiler.disable()
        stat = profiler.path_stats()[("alloc",)]
        assert stat.alloc_bytes > 0
