"""Tests for the wall-clock profiler."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SPAN_METRIC, Profiler


class TestProfiler:
    def test_disabled_begin_is_falsy(self):
        profiler = Profiler()
        assert profiler.begin() == 0.0
        # end() without configure must be harmless.
        profiler.end("x", 0.0)

    def test_records_span_into_histogram(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        started = profiler.begin()
        assert started > 0.0
        profiler.end("quack.newton", started)
        snap = registry.snapshot()[SPAN_METRIC]["series"]
        assert snap[0]["labels"] == {"span": "quack.newton"}
        assert snap[0]["value"]["count"] == 1
        assert snap[0]["value"]["min"] >= 0.0

    def test_span_context_manager(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        with profiler.span("report.section"):
            pass
        series = registry.snapshot()[SPAN_METRIC]["series"]
        assert series[0]["value"]["count"] == 1

    def test_span_context_manager_disabled(self):
        profiler = Profiler()
        with profiler.span("x"):
            pass  # nothing recorded, nothing raised

    def test_disable_stops_recording(self):
        registry = MetricsRegistry()
        profiler = Profiler()
        profiler.configure(registry)
        started = profiler.begin()
        profiler.disable()
        profiler.end("x", started)
        assert SPAN_METRIC not in registry.snapshot() \
            or not registry.snapshot()[SPAN_METRIC]["series"]
