"""Schema-drift guard: the instrumentation and EVENT_SCHEMA move together.

Walks every module under ``src/`` with :mod:`ast` and collects each
``TRACER.emit("<type>", t, field=..., ...)`` call site.  Two invariants:

* every event type emitted anywhere in the source is declared in
  :data:`repro.obs.schema.EVENT_SCHEMA` -- an undeclared emit would
  produce JSONL that ``python -m repro.obs.schema`` (the CI smoke job)
  rejects as an unknown type;
* every *required* field of a declared type is passed as a keyword at
  every call site that emits it -- otherwise the export is schema-valid
  only by accident of which code path ran.

This is the test that fails when someone adds an instrumentation point
without extending the vocabulary (or prunes the vocabulary while call
sites still reference it).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.obs.schema import EVENT_SCHEMA

SRC = Path(__file__).resolve().parents[2] / "src"


def _is_tracer_emit(node: ast.Call) -> bool:
    """Match ``TRACER.emit(...)`` / ``obs.TRACER.emit(...)`` / self-hosted
    ``self.emit`` is deliberately NOT matched (Tracer internals)."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    owner = func.value
    if isinstance(owner, ast.Name):
        return owner.id == "TRACER"
    if isinstance(owner, ast.Attribute):
        return owner.attr == "TRACER"
    return False


def collect_emit_sites() -> list[tuple[str, int, str, set[str]]]:
    """Every literal-typed emit call: (file, line, type, keyword names)."""
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and _is_tracer_emit(node)):
                continue
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
            sites.append((str(path.relative_to(SRC)), node.lineno,
                          node.args[0].value, keywords))
    return sites


def test_sources_contain_emit_sites():
    # The walk itself must be finding the instrumentation, or the other
    # assertions pass vacuously.
    sites = collect_emit_sites()
    assert len(sites) >= 30
    assert {etype for _, _, etype, _ in sites} >= {
        "link.drop", "transport.retransmit", "quack.decode",
        "sidecar.gap_detect"}


def test_every_emitted_type_is_declared():
    undeclared = [(f"{path}:{line}", etype)
                  for path, line, etype, _ in collect_emit_sites()
                  if etype not in EVENT_SCHEMA]
    assert not undeclared, (
        f"emit sites reference event types missing from EVENT_SCHEMA "
        f"(extend repro/obs/schema.py): {undeclared}")


def test_every_required_field_is_passed():
    # ``**kwargs`` forwarding (kw.arg None) makes a site unverifiable
    # statically; no current call site does that, and the first test
    # above would still catch an unknown type at runtime via CI's JSONL
    # validation.
    problems = []
    for path, line, etype, keywords in collect_emit_sites():
        required = set(EVENT_SCHEMA.get(etype, {}))
        missing = required - keywords
        if missing:
            problems.append((f"{path}:{line}", etype, sorted(missing)))
    assert not problems, (
        f"emit sites omit required schema fields: {problems}")
