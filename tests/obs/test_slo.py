"""Tests for declarative tail-latency budgets (repro.obs.slo)."""

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.aggregate import mergeable_snapshot
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.slo import (
    evaluate_budgets,
    format_verdicts,
    load_budget_file,
    run_scenarios,
)


@pytest.fixture(autouse=True)
def _clean_switchboard():
    yield
    obs.disable()
    obs.reset()


def _snapshot():
    registry = MetricsRegistry()
    hist = registry.histogram("repair_seconds", labels=("cause",),
                              buckets=LATENCY_BUCKETS)
    for value in (0.1, 0.2, 0.2, 0.4, 1.2):
        hist.labels(cause="quack").observe(value)
    decodes = registry.counter("decodes_total", labels=("status",))
    decodes.labels(status="ok").inc(98)
    decodes.labels(status="fail").inc(2)
    registry.counter("delivered_total", labels=()).labels().inc(500)
    return mergeable_snapshot(registry)


class TestStatBudgets:
    def test_quantile_within_budget(self):
        verdicts = evaluate_budgets(
            [{"name": "p99", "metric": "repair_seconds",
              "labels": {"cause": "quack"}, "stat": "p99", "max": 2.0}],
            _snapshot())
        assert verdicts[0].ok
        assert verdicts[0].observed == 1.5  # exact-to-bucket

    def test_quantile_violation(self):
        verdicts = evaluate_budgets(
            [{"name": "p99", "metric": "repair_seconds",
              "stat": "p99", "max": 0.25}], _snapshot())
        assert not verdicts[0].ok

    def test_counter_min_bound(self):
        verdicts = evaluate_budgets(
            [{"name": "delivered", "metric": "delivered_total",
              "stat": "value", "min": 400}], _snapshot())
        assert verdicts[0].ok and verdicts[0].observed == 500

    def test_min_count_guard_marks_unmeasured(self):
        verdicts = evaluate_budgets(
            [{"name": "p99", "metric": "repair_seconds",
              "stat": "p99", "max": 2.0, "min_count": 50}], _snapshot())
        assert not verdicts[0].ok
        assert verdicts[0].observed is None
        assert "min_count" in verdicts[0].detail

    def test_missing_metric_fails_by_default(self):
        verdicts = evaluate_budgets(
            [{"name": "ghost", "metric": "nope_seconds",
              "stat": "p50", "max": 1.0}], _snapshot())
        assert not verdicts[0].ok
        assert "unmeasured SLOs fail by default" in verdicts[0].detail

    def test_allow_missing_escape_hatch(self):
        verdicts = evaluate_budgets(
            [{"name": "ghost", "metric": "nope_seconds", "stat": "p50",
              "max": 1.0, "allow_missing": True}], _snapshot())
        assert verdicts[0].ok

    def test_budget_without_bounds_rejected(self):
        with pytest.raises(ObservabilityError, match="neither max nor min"):
            evaluate_budgets([{"name": "x", "metric": "repair_seconds",
                               "stat": "p50"}], _snapshot())

    def test_bad_stat_rejected(self):
        with pytest.raises(ObservabilityError, match="not valid"):
            evaluate_budgets([{"name": "x", "metric": "repair_seconds",
                               "stat": "median", "max": 1.0}], _snapshot())


class TestRatioBudgets:
    def test_failure_rate(self):
        verdicts = evaluate_budgets(
            [{"name": "decode failures", "ratio_of": "decodes_total",
              "label": "status", "ok_values": ["ok"], "max": 0.05}],
            _snapshot())
        assert verdicts[0].ok
        assert verdicts[0].observed == pytest.approx(0.02)
        assert "2/100" in verdicts[0].detail

    def test_failure_rate_violation(self):
        verdicts = evaluate_budgets(
            [{"name": "decode failures", "ratio_of": "decodes_total",
              "label": "status", "ok_values": ["ok"], "max": 0.01}],
            _snapshot())
        assert not verdicts[0].ok

    def test_nothing_recorded_is_unmeasured(self):
        verdicts = evaluate_budgets(
            [{"name": "x", "ratio_of": "ghost_total", "label": "status",
              "ok_values": ["ok"], "max": 0.1}], _snapshot())
        assert not verdicts[0].ok and verdicts[0].observed is None


class TestBudgetFile:
    def _write(self, tmp_path, doc):
        path = tmp_path / "budget.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_load_valid(self, tmp_path):
        path = self._write(tmp_path, {
            "kind": "slo-budgets", "schema": 1,
            "budgets": [{"name": "x", "metric": "m", "stat": "p50",
                         "max": 1.0}]})
        assert load_budget_file(path)["budgets"]

    def test_wrong_kind_rejected(self, tmp_path):
        path = self._write(tmp_path, {"kind": "telemetry", "schema": 1})
        with pytest.raises(ObservabilityError, match="not an slo-budgets"):
            load_budget_file(path)

    def test_future_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, {"kind": "slo-budgets", "schema": 99,
                                      "budgets": [{}]})
        with pytest.raises(ObservabilityError, match="not supported"):
            load_budget_file(path)

    def test_empty_budgets_rejected(self, tmp_path):
        path = self._write(tmp_path, {"kind": "slo-budgets", "schema": 1,
                                      "budgets": []})
        with pytest.raises(ObservabilityError, match="no budgets"):
            load_budget_file(path)

    def test_run_scenarios_requires_scenarios(self):
        with pytest.raises(ObservabilityError, match="no scenarios"):
            run_scenarios({"kind": "slo-budgets", "schema": 1,
                           "budgets": [{}]})

    def test_checked_in_seed_budget_file_is_loadable(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        doc = load_budget_file(str(repo / "benchmarks" / "slo"
                                   / "seed_scenarios.json"))
        assert doc["scenarios"]
        assert len(doc["budgets"]) >= 3


class TestFormatting:
    def test_verdict_lines(self):
        verdicts = evaluate_budgets(
            [{"name": "pass", "metric": "delivered_total", "stat": "value",
              "min": 1},
             {"name": "fail", "metric": "delivered_total", "stat": "value",
              "min": 10_000}], _snapshot())
        text = format_verdicts("budget.json", verdicts)
        assert "1 VIOLATED" in text
        assert "ok    pass" in text and "FAIL  fail" in text


class TestCli:
    def _snapshot_file(self, tmp_path):
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps(_snapshot()))
        return str(path)

    def _budget_file(self, tmp_path, max_p99):
        path = tmp_path / f"budget-{max_p99}.json"
        path.write_text(json.dumps({
            "kind": "slo-budgets", "schema": 1,
            "budgets": [{"name": "repair p99",
                         "metric": "repair_seconds",
                         "stat": "p99", "max": max_p99}]}))
        return str(path)

    def test_pass_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["slo", self._budget_file(tmp_path, 2.0),
                     "--snapshot", self._snapshot_file(tmp_path)])
        assert code == 0
        assert "all within budget" in capsys.readouterr().out

    def test_violation_exits_one(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["slo", self._budget_file(tmp_path, 0.25),
                     "--snapshot", self._snapshot_file(tmp_path)])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_unreadable_budget_exits_two(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["slo", str(tmp_path / "nope.json")]) == 2

    def test_sweep_aggregate_without_telemetry_exits_two(self, capsys,
                                                         tmp_path):
        from repro.cli import main

        snapshot = tmp_path / "aggregate.json"
        snapshot.write_text(json.dumps({"kind": "sweep-aggregate"}))
        code = main(["slo", self._budget_file(tmp_path, 2.0),
                     "--snapshot", str(snapshot)])
        assert code == 2
        assert "--telemetry" in capsys.readouterr().err
