"""Tests for the structured trace log and its JSONL export."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.trace import (
    RingSink,
    TraceEvent,
    Tracer,
    dump_jsonl,
    export_jsonl,
)


class TestTraceEvent:
    def test_to_dict_shape(self):
        event = TraceEvent(1.25, "link.drop",
                           {"link": "a->b", "size": 1500, "reason": "queue",
                            "kind": "data"})
        record = event.to_dict()
        assert record["t"] == 1.25
        assert record["type"] == "link.drop"
        assert record["link"] == "a->b" and record["reason"] == "queue"

    def test_non_finite_fields_sanitized(self):
        event = TraceEvent(0.0, "transport.cwnd",
                           {"flow": "f", "cwnd": 1, "in_flight": 0,
                            "srtt": float("inf")})
        assert event.to_dict()["srtt"] is None


class TestRingSink:
    def test_caps_and_counts(self):
        sink = RingSink(capacity=3)
        for index in range(5):
            sink.emit(TraceEvent(float(index), "x.y", {}))
        assert len(sink) == 3
        assert sink.emitted == 5
        assert sink.dropped == 2
        # Oldest events went first.
        assert [event.time for event in sink.events] == [2.0, 3.0, 4.0]

    def test_capacity_validation(self):
        with pytest.raises(ObservabilityError):
            RingSink(capacity=0)

    def test_clear(self):
        sink = RingSink(capacity=2)
        sink.emit(TraceEvent(0.0, "x.y", {}))
        sink.clear()
        assert len(sink) == 0 and sink.emitted == 0 and sink.dropped == 0

    def test_tally(self):
        sink = RingSink()
        sink.emit(TraceEvent(0.0, "a.b", {}))
        sink.emit(TraceEvent(0.1, "a.b", {}))
        sink.emit(TraceEvent(0.2, "c.d", {}))
        assert sink.tally() == {"a.b": 2, "c.d": 1}

    def test_tally_surfaces_drops(self):
        sink = RingSink(capacity=2)
        for index in range(5):
            sink.emit(TraceEvent(float(index), "a.b", {}))
        tally = sink.tally()
        assert tally["dropped_events"] == 3
        assert tally["a.b"] == 2  # only what the ring still holds


class TestTracer:
    def test_disabled_emit_is_noop(self):
        tracer = Tracer()
        tracer.emit("x.y", 0.0, a=1)
        assert tracer.events == []

    def test_configure_enables_and_captures(self):
        tracer = Tracer()
        sink = tracer.configure(capacity=16)
        assert tracer.enabled
        tracer.emit("x.y", 1.0, a=1)
        assert len(sink) == 1
        assert sink.events[0].fields == {"a": 1}

    def test_disable_keeps_events_readable(self):
        tracer = Tracer()
        tracer.configure()
        tracer.emit("x.y", 1.0)
        tracer.disable()
        tracer.emit("x.y", 2.0)  # ignored
        assert len(tracer.events) == 1

    def test_reconfigure_replaces_sink(self):
        tracer = Tracer()
        tracer.configure()
        tracer.emit("x.y", 1.0)
        tracer.configure()
        assert tracer.events == []


class TestJsonlExport:
    def test_dump_valid_json_lines(self):
        events = [TraceEvent(0.5, "quack.decode",
                             {"status": "ok", "missing": 2}),
                  TraceEvent(1.0, "transport.cwnd",
                             {"flow": "f", "cwnd": 10, "in_flight": 5,
                              "srtt": float("nan")})]
        buffer = io.StringIO()
        assert dump_jsonl(events, buffer) == 2
        lines = buffer.getvalue().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["status"] == "ok"
        assert parsed[1]["srtt"] is None  # nan sanitized, still valid JSON

    def test_export_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [TraceEvent(0.0, "link.deliver",
                             {"link": "a->b", "kind": "data", "size": 100})]
        assert export_jsonl(events, str(path)) == 1
        record = json.loads(path.read_text().strip())
        assert record == {"t": 0.0, "type": "link.deliver", "link": "a->b",
                          "kind": "data", "size": 100}
