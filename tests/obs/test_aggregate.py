"""Tests for mergeable telemetry snapshots (repro.obs.aggregate)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.aggregate import (
    hist_quantile,
    merge_hists,
    merge_snapshots,
    mergeable_snapshot,
    select_series,
    summarize_hist,
    summarize_snapshot,
)
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry


def _registry(counter=0, gauge=None, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("events_total", labels=("kind",)).labels(
            kind="x").inc(counter)
    if gauge is not None:
        registry.gauge("depth", labels=()).labels().set(gauge)
    for value in observations:
        registry.histogram("lat_seconds", labels=(),
                           buckets=LATENCY_BUCKETS).labels().observe(value)
    return registry


class TestMergeableSnapshot:
    def test_zero_valued_series_dropped(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labels=("kind",)).labels(kind="x")
        registry.histogram("lat_seconds", labels=()).labels()
        snapshot = mergeable_snapshot(registry)
        assert snapshot["families"] == {}

    def test_snapshot_is_json_serializable(self):
        snapshot = mergeable_snapshot(_registry(counter=3, gauge=2.0,
                                                observations=[0.1, 1.2]))
        json.dumps(snapshot, allow_nan=False)
        assert snapshot["kind"] == "telemetry"
        assert set(snapshot["families"]) == {"events_total", "depth",
                                             "lat_seconds"}


class TestMerge:
    def test_counters_sum_gauges_max_hists_add(self):
        a = mergeable_snapshot(_registry(counter=3, gauge=5.0,
                                         observations=[0.1]))
        b = mergeable_snapshot(_registry(counter=4, gauge=2.0,
                                         observations=[1.2, 1.2]))
        merged = merge_snapshots([a, b])
        counter = select_series(merged, "events_total", {"kind": "x"})
        assert counter[0]["value"] == 7
        assert select_series(merged, "depth")[0]["value"] == 5.0
        hist = select_series(merged, "lat_seconds")[0]["hist"]
        assert hist["count"] == 3
        assert hist["min"] == 0.1 and hist["max"] == 1.2

    def test_merge_is_commutative(self):
        a = mergeable_snapshot(_registry(counter=3, observations=[0.1, 0.4]))
        b = mergeable_snapshot(_registry(counter=9, observations=[2.2]))
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_empty_input_merges_to_empty(self):
        merged = merge_snapshots([])
        assert merged["families"] == {}

    def test_bucket_mismatch_rejected(self):
        a = {"buckets": [1.0, 2.0], "counts": [1, 0, 0], "sum": 0.5,
             "count": 1, "min": 0.5, "max": 0.5}
        b = {"buckets": [1.0, 5.0], "counts": [1, 0, 0], "sum": 0.5,
             "count": 1, "min": 0.5, "max": 0.5}
        with pytest.raises(ObservabilityError, match="different buckets"):
            merge_hists(a, b)

    def test_kind_clash_rejected(self):
        a = mergeable_snapshot(_registry(counter=1))
        b = mergeable_snapshot(_registry(counter=1))
        b["families"]["events_total"]["kind"] = "gauge"
        with pytest.raises(ObservabilityError, match="counter in one"):
            merge_snapshots([a, b])

    def test_non_telemetry_document_rejected(self):
        with pytest.raises(ObservabilityError, match="not a telemetry"):
            merge_snapshots([{"kind": "sweep-aggregate"}])

    def test_worker_split_equals_single_process(self):
        # The determinism claim: N observations split across processes
        # merge to exactly the single-process snapshot.  Binary-exact
        # values so float summation order cannot differ.
        values = [0.25, 0.5, 0.5, 2.0, 4.0]
        whole = mergeable_snapshot(_registry(counter=5, observations=values))
        parts = [mergeable_snapshot(_registry(counter=2,
                                              observations=values[:2])),
                 mergeable_snapshot(_registry(counter=3,
                                              observations=values[2:]))]
        assert merge_snapshots([whole]) == merge_snapshots(parts)


class TestQuantiles:
    def test_exact_to_bucket(self):
        snapshot = mergeable_snapshot(
            _registry(observations=[0.2] * 9 + [1.7]))
        hist = select_series(snapshot, "lat_seconds")[0]["hist"]
        assert hist_quantile(hist, 0.5) == 0.25
        assert hist_quantile(hist, 0.99) == 2.0

    def test_overflow_rank_reports_observed_max(self):
        snapshot = mergeable_snapshot(_registry(observations=[42.0]))
        hist = select_series(snapshot, "lat_seconds")[0]["hist"]
        assert hist_quantile(hist, 0.99) == 42.0

    def test_summaries(self):
        snapshot = mergeable_snapshot(
            _registry(counter=2, observations=[0.2, 0.2, 1.7]))
        summary = summarize_hist(
            select_series(snapshot, "lat_seconds")[0]["hist"])
        assert summary["count"] == 3
        assert summary["p50"] == 0.25 and summary["p999"] == 2.0
        flat = summarize_snapshot(snapshot)
        assert flat["events_total"][0]["value"] == 2
        assert flat["lat_seconds"][0]["p99"] == 2.0


class TestSelect:
    def test_label_subset_match(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total", labels=("kind", "flow"))
        family.labels(kind="x", flow="f0").inc(1)
        family.labels(kind="y", flow="f0").inc(2)
        snapshot = mergeable_snapshot(registry)
        assert len(select_series(snapshot, "events_total")) == 2
        only_x = select_series(snapshot, "events_total", {"kind": "x"})
        assert len(only_x) == 1 and only_x[0]["value"] == 1

    def test_unknown_metric_selects_nothing(self):
        assert select_series(mergeable_snapshot(MetricsRegistry()),
                             "nope_total") == []
