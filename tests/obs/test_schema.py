"""Tests for the trace-event schema and JSONL validator."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.schema import (
    CORE_COMPONENTS,
    EVENT_SCHEMA,
    component_of,
    main,
    validate_file,
    validate_lines,
    validate_record,
)

GOOD = {"t": 0.5, "type": "link.drop", "link": "a->b", "kind": "data",
        "size": 1500, "reason": "queue"}


class TestValidateRecord:
    def test_good_record(self):
        validate_record(GOOD)  # does not raise

    def test_extra_fields_allowed(self):
        validate_record({**GOOD, "annotation": "anything"})

    def test_missing_field(self):
        record = {key: value for key, value in GOOD.items()
                  if key != "reason"}
        with pytest.raises(ObservabilityError, match="reason"):
            validate_record(record)

    def test_wrong_type(self):
        with pytest.raises(ObservabilityError, match="size"):
            validate_record({**GOOD, "size": "big"})

    def test_bool_rejected_in_number_field(self):
        with pytest.raises(ObservabilityError, match="bool"):
            validate_record({**GOOD, "size": True})

    def test_unknown_event_type(self):
        with pytest.raises(ObservabilityError, match="unknown"):
            validate_record({"t": 0.0, "type": "nope.nope"})

    def test_missing_timestamp(self):
        record = {key: value for key, value in GOOD.items() if key != "t"}
        with pytest.raises(ObservabilityError, match="'t'"):
            validate_record(record)

    def test_not_an_object(self):
        with pytest.raises(ObservabilityError):
            validate_record([1, 2])


class TestSchemaShape:
    def test_every_type_has_component_prefix(self):
        for etype in EVENT_SCHEMA:
            assert "." in etype
            assert component_of(etype) == etype.split(".")[0]

    def test_core_components_covered(self):
        prefixes = {component_of(etype) for etype in EVENT_SCHEMA}
        for component in CORE_COMPONENTS:
            assert component in prefixes


class TestValidateLines:
    def test_counts_by_component(self):
        lines = [json.dumps(GOOD),
                 "",  # blank lines are skipped
                 json.dumps({"t": 1.0, "type": "quack.decode",
                             "status": "ok", "missing": 0})]
        assert validate_lines(lines) == {"link": 1, "quack": 1}

    def test_bad_json_names_the_line(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            validate_lines([json.dumps(GOOD), "{not json"])

    def test_bad_record_names_the_line(self):
        with pytest.raises(ObservabilityError, match="line 1"):
            validate_lines(['{"type": "nope.nope", "t": 0}'])


class TestCli:
    def test_valid_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(GOOD) + "\n")
        assert main([str(path)]) == 0
        assert "ok (1 events" in capsys.readouterr().out

    def test_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "nope.nope", "t": 0}\n')
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_no_arguments(self, capsys):
        assert main([]) == 2

    def test_validate_file_function(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(GOOD) + "\n")
        assert validate_file(str(path)) == {"link": 1}
