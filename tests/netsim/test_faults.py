"""Unit tests for the fault injectors (repro.netsim.faults)."""

import dataclasses
import random

import pytest

from repro.errors import SimulationError
from repro.netsim.core import Simulator
from repro.netsim.faults import (
    SIDECAR_KINDS,
    Blackout,
    BurstLoss,
    CompositeFault,
    Corruption,
    DelaySpike,
    Duplication,
    FaultDecision,
    flip_frame_bits,
)
from repro.netsim.link import Link
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.netsim.node import Host


def packet(kind=PacketKind.QUACK, payload=None):
    return Packet(src="a", dst="b", size_bytes=100, kind=kind,
                  payload=payload)


@dataclasses.dataclass(frozen=True)
class FramedPayload:
    frame: bytes


class TestBlackout:
    def test_drops_only_inside_windows(self):
        outage = Blackout([(1.0, 2.0)])
        assert not outage.on_transmit(packet(), 0.5).drop
        assert outage.on_transmit(packet(), 1.0).drop
        assert outage.on_transmit(packet(), 1.999).drop
        assert not outage.on_transmit(packet(), 2.0).drop  # half-open
        assert outage.stats.dropped == 2

    def test_kind_filter(self):
        outage = Blackout([(0.0, 10.0)], kinds=SIDECAR_KINDS)
        assert outage.on_transmit(packet(PacketKind.DATA), 1.0) \
            .drop is False
        assert outage.on_transmit(packet(PacketKind.QUACK), 1.0).drop
        assert outage.on_transmit(packet(PacketKind.CONTROL), 1.0).drop
        assert outage.stats.considered == 2  # DATA never counted

    def test_rejects_bad_windows(self):
        with pytest.raises(SimulationError):
            Blackout([(2.0, 1.0)])


class TestCorruption:
    def test_flips_frame_bytes(self):
        noise = Corruption(rate=1.0, seed=7)
        original = packet(payload=FramedPayload(frame=b"\x00" * 20))
        decision = noise.on_transmit(original, 0.0)
        assert decision.replacement is not None
        assert decision.replacement.payload.frame != original.payload.frame
        assert len(decision.replacement.payload.frame) == 20
        assert noise.stats.corrupted == 1

    def test_leaves_frameless_payloads_alone(self):
        noise = Corruption(rate=1.0, seed=7)
        decision = noise.on_transmit(packet(payload="not bytes"), 0.0)
        assert decision.replacement is None

    def test_rate_zero_never_corrupts(self):
        noise = Corruption(rate=0.0, seed=7)
        for _ in range(50):
            decision = noise.on_transmit(
                packet(payload=FramedPayload(frame=b"x" * 8)), 0.0)
            assert decision.replacement is None

    def test_seeded_replay_is_identical(self):
        outcomes = []
        for _ in range(2):
            noise = Corruption(rate=0.5, seed=42)
            outcomes.append([
                noise.on_transmit(
                    packet(payload=FramedPayload(frame=bytes(range(16)))),
                    0.0).replacement is not None
                for _ in range(40)])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_flip_frame_bits_never_a_noop(self):
        rng = random.Random(3)
        frame = bytes(64)
        for _ in range(100):
            assert flip_frame_bits(frame, rng) != frame


class TestDuplicationBurstDelay:
    def test_duplication_copies(self):
        dupes = Duplication(rate=1.0, seed=1, copies=3)
        decision = dupes.on_transmit(packet(), 0.0)
        assert decision.copies == 3
        assert dupes.stats.duplicated == 1

    def test_burst_loss_windows(self):
        bursts = BurstLoss([(1.0, 2.0)], rate=1.0, seed=1)
        assert not bursts.on_transmit(packet(), 0.5).drop
        assert bursts.on_transmit(packet(), 1.5).drop

    def test_delay_spike(self):
        spike = DelaySpike([(0.0, 1.0)], extra_delay_s=0.25)
        assert spike.on_transmit(packet(), 0.5).extra_delay == 0.25
        assert spike.on_transmit(packet(), 1.5).extra_delay == 0.0


class TestComposite:
    def test_merges_decisions(self):
        composite = CompositeFault([
            DelaySpike([(0.0, 10.0)], extra_delay_s=0.1),
            Duplication(rate=1.0, seed=1),
        ])
        decision = composite.on_transmit(packet(), 1.0)
        assert decision.extra_delay == pytest.approx(0.1)
        assert decision.copies == 2

    def test_drop_short_circuits(self):
        dupes = Duplication(rate=1.0, seed=1)
        composite = CompositeFault([Blackout([(0.0, 10.0)]), dupes])
        assert composite.on_transmit(packet(), 1.0).drop
        assert dupes.stats.considered == 0


class TestLinkIntegration:
    def build(self, faults):
        sim = Simulator()
        delivered = []
        link = Link(sim, bandwidth_bps=8e6, delay_s=0.001,
                    deliver=delivered.append, faults=faults)
        return sim, link, delivered

    def test_fault_drop_counted_separately(self):
        sim, link, delivered = self.build(Blackout([(0.0, 10.0)]))
        link.send(packet())
        sim.run(until=1.0)
        assert delivered == []
        assert link.stats.dropped_fault == 1
        assert link.stats.dropped_loss == 0

    def test_duplication_delivers_twice(self):
        sim, link, delivered = self.build(Duplication(rate=1.0, seed=1))
        link.send(packet())
        sim.run(until=1.0)
        assert len(delivered) == 2
        assert link.stats.duplicated_fault == 1
        assert link.stats.delivered == 2

    def test_delay_spike_postpones_delivery(self):
        sim, link, delivered = self.build(
            DelaySpike([(0.0, 10.0)], extra_delay_s=0.5))
        link.send(packet())
        sim.run(until=0.4)
        assert delivered == []
        sim.run(until=1.0)
        assert len(delivered) == 1

    def test_corruption_swaps_payload(self):
        sim, link, delivered = self.build(Corruption(rate=1.0, seed=3))
        link.send(packet(payload=FramedPayload(frame=b"\xaa" * 12)))
        sim.run(until=1.0)
        assert len(delivered) == 1
        assert delivered[0].payload.frame != b"\xaa" * 12
        assert link.stats.corrupted_fault == 1

    def test_no_faults_is_the_default(self):
        sim, link, delivered = self.build(None)
        link.send(packet())
        sim.run(until=1.0)
        assert len(delivered) == 1
        assert link.stats.dropped_fault == 0

    def test_hopspec_threads_faults_per_direction(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        outage = Blackout([(0.0, 10.0)])
        topology = build_path(sim, [a, b],
                              [HopSpec(faults_up=outage, faults_down=None)])
        assert topology.links_up[0].faults is outage
        assert topology.links_down[0].faults is None
