"""Timer cancel/rearm under mass flow teardown (Hypothesis).

The multi-tenant flow table multiplexes thousands of per-flow
lifecycles over the scheduler: admission arms a timer, churn storms
tear whole tenant populations down at once (tombstoning pending arms in
place), clamp evictions cancel mid-flight, and rejoin re-arms a
cancelled timer later.  The scheduler-props suite covers randomized
single-timer interleavings; these properties attack the *mass* pattern
-- teardown waves over a population of timers -- and check that

* both backends dispatch identically through arbitrary wave programs;
* a phased workload (all waves strictly before any firing) matches an
  independently computed oracle of exactly which flows fire, when, and
  in what order;
* after a full-population teardown nothing fires unless rejoined, and
  everything that fired before the wave is accounted for.
"""

from __future__ import annotations

import pytest

from repro.netsim.core import Simulator
from repro.netsim.sched import DEFAULT_BUCKET_WIDTH, DEFAULT_WHEEL_SLOTS

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

WIDTH = DEFAULT_BUCKET_WIDTH
HORIZON = WIDTH * DEFAULT_WHEEL_SLOTS

# Arm delays spanning every placement class of the wheel: sub-bucket,
# boundary, mid-ring, and the overflow heap past the horizon.
ARM_DELAYS = st.sampled_from([
    WIDTH / 2, WIDTH, WIDTH * 3, HORIZON / 2, HORIZON, HORIZON * 1.5])

#: One wave: (when index, action, first flow, population size, delay).
WAVES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.sampled_from(["teardown", "rejoin"]),
        st.integers(min_value=0, max_value=9999),
        st.integers(min_value=1, max_value=30),
        ARM_DELAYS,
    ),
    min_size=1, max_size=20,
)

FLOWS = st.lists(ARM_DELAYS, min_size=1, max_size=40)


def _run_waves(flows, waves, scheduler, wave_step):
    """Arm one timer per flow, then run teardown/rejoin waves over them."""
    sim = Simulator(scheduler=scheduler)
    log: list[tuple] = []
    timers = []

    def fire(index: int) -> None:
        log.append((index, round(sim.now, 12)))

    for index, delay in enumerate(flows):
        timer = sim.timer(fire, index)
        timers.append(timer)
        timer.rearm(delay)

    def wave(action, first, count, delay):
        for offset in range(count):
            timer = timers[(first + offset) % len(timers)]
            if action == "teardown":
                timer.cancel()
            else:
                timer.rearm(delay)

    for when_index, action, first, count, delay in waves:
        sim.schedule(when_index * wave_step, wave, action, first, count,
                     delay)
    sim.run()
    return log


@settings(max_examples=75, deadline=None)
@given(flows=FLOWS, waves=WAVES)
def test_backends_agree_through_teardown_waves(flows, waves):
    wave_step = WIDTH * 0.77
    assert _run_waves(flows, waves, "heap", wave_step) \
        == _run_waves(flows, waves, "calendar", wave_step)


@settings(max_examples=60, deadline=None)
@given(count=st.integers(min_value=1, max_value=40), waves=WAVES)
def test_phased_waves_match_the_oracle(count, waves):
    # Phased workload: every initial arm and every rejoin lands *after*
    # the last wave (delay >= 2*HORIZON, waves within 13 bucket widths),
    # so the final per-flow pending state alone decides what fires.  The
    # oracle replays the single-pending-arm semantics in plain Python:
    # cancel clears, rearm supersedes, ties break by arm order.
    late = HORIZON * 2
    wave_step = WIDTH * 0.77
    flows = [late + index * WIDTH for index in range(count)]
    waves = [(when, action, first, size, late + delay)
             for when, action, first, size, delay in waves]

    pending: dict[int, tuple[float, int]] = {
        index: (delay, index) for index, delay in enumerate(flows)}
    arm_seq = count
    for when_index, action, first, size, delay in sorted(
            waves, key=lambda w: w[0]):
        when = when_index * wave_step
        for offset in range(size):
            index = (first + offset) % count
            if action == "teardown":
                pending.pop(index, None)
            else:
                pending[index] = (when + delay, arm_seq)
                arm_seq += 1
    expected = [(index, round(time, 12))
                for index, (time, seq) in sorted(
                    pending.items(), key=lambda kv: (kv[1][0], kv[1][1]))]

    for scheduler in ("heap", "calendar"):
        assert _run_waves(flows, waves, scheduler, wave_step) \
            == expected, scheduler


@settings(max_examples=60, deadline=None)
@given(
    flows=FLOWS,
    teardown_buckets=st.integers(min_value=1, max_value=200),
    rejoin=st.sets(st.integers(min_value=0, max_value=39)),
    rejoin_delay=ARM_DELAYS,
)
def test_mass_teardown_silences_all_but_rejoined(flows, teardown_buckets,
                                                 rejoin, rejoin_delay):
    # One wave cancels the whole population (the churn-storm shape);
    # a second immediately rejoins a subset.  Offset the wave off the
    # delay grid so "fired before the wave" is unambiguous.
    teardown_at = teardown_buckets * WIDTH + WIDTH * 0.013
    rejoin = {index for index in rejoin if index < len(flows)}

    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        log: list[tuple] = []
        timers = []

        def fire(index: int) -> None:
            log.append((index, round(sim.now, 12)))

        for index, delay in enumerate(flows):
            timer = sim.timer(fire, index)
            timers.append(timer)
            timer.rearm(delay)

        def storm() -> None:
            for timer in timers:
                timer.cancel()
            for index in sorted(rejoin):
                timers[index].rearm(rejoin_delay)

        sim.schedule(teardown_at, storm)
        sim.run()

        early = {index for index, delay in enumerate(flows)
                 if delay < teardown_at}
        fired_early = [entry for entry in log if entry[1] < teardown_at]
        fired_late = [entry for entry in log if entry[1] > teardown_at]
        assert {index for index, _ in fired_early} == early, scheduler
        assert sorted(index for index, _ in fired_late) \
            == sorted(rejoin), scheduler
        assert len(log) == len(early) + len(rejoin), scheduler
