"""Tests for packets and the E2E-encryption capability model."""

import pytest

from repro.errors import SimulationError
from repro.netsim.packet import Packet, PacketKind


class TestBasics:
    def test_uids_are_unique(self):
        packets = [Packet(src="a", dst="b", size_bytes=100) for _ in range(50)]
        uids = [p.uid for p in packets]
        assert len(set(uids)) == 50

    def test_defaults(self):
        p = Packet(src="a", dst="b", size_bytes=100)
        assert p.kind is PacketKind.DATA
        assert p.identifier is None
        assert p.payload is None
        assert not p.has_protected_payload

    def test_repr_with_identifier(self):
        p = Packet(src="a", dst="b", size_bytes=10, identifier=0xDEADBEEF)
        assert "0xdeadbeef" in repr(p)
        assert "a->b" in repr(p)

    def test_repr_without_identifier(self):
        assert "id=-" in repr(Packet(src="a", dst="b", size_bytes=10))


class TestSealedPayload:
    def test_holder_of_key_can_read(self):
        p = Packet.sealed(src="a", dst="b", size_bytes=10, key=b"secret",
                          payload={"seq": 7})
        assert p.protected_payload(b"secret") == {"seq": 7}
        assert p.has_protected_payload

    def test_wrong_key_rejected(self):
        p = Packet.sealed(src="a", dst="b", size_bytes=10, key=b"secret",
                          payload="data")
        with pytest.raises(SimulationError, match="E2E-encrypted"):
            p.protected_payload(b"not-the-key")

    def test_unsealed_packet_has_no_payload(self):
        p = Packet(src="a", dst="b", size_bytes=10)
        with pytest.raises(SimulationError):
            p.protected_payload(b"any")

    def test_sealed_preserves_observable_fields(self):
        p = Packet.sealed(src="a", dst="b", size_bytes=1500, key=b"k",
                          payload="x", kind=PacketKind.ACK,
                          identifier=123, flow_id="f9", created_at=1.5)
        assert (p.src, p.dst, p.size_bytes) == ("a", "b", 1500)
        assert p.kind is PacketKind.ACK
        assert p.identifier == 123
        assert p.flow_id == "f9"
        assert p.created_at == 1.5


class TestPacketKind:
    def test_all_kinds_distinct(self):
        values = {k.value for k in PacketKind}
        assert len(values) == 4
