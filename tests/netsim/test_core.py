"""Tests for the discrete-event simulator core (repro.netsim.core).

Behavioral tests run against *both* scheduler backends ("heap" and
"calendar") via the parametrized ``sim`` fixture: the calendar queue must
be observably indistinguishable from the heap oracle.  Counter tests are
backend-specific, since the cost signatures differ by design.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.core import (
    Simulator,
    default_scheduler,
    set_default_scheduler,
)

BACKENDS = ["heap", "calendar"]


@pytest.fixture(params=BACKENDS)
def sim(request):
    return Simulator(scheduler=request.param)


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, sim):
        fired = []
        for name in "abcde":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_from_callback(self, sim):
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_zero_delay_from_callback_fires_same_run(self, sim):
        # A zero-delay event scheduled mid-dispatch lands in the bucket
        # currently being drained (the calendar's side-heap path).
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.0, fired.append, "second")

        sim.schedule(1.0, first)
        sim.schedule(1.0, fired.append, "pre-scheduled")
        sim.run()
        assert fired == ["first", "pre-scheduled", "second"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent_and_safe_after_firing(self, sim):
        handle = sim.schedule(0.1, lambda: None)
        sim.run()
        handle.cancel()
        handle.cancel()

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(0.1, fired.append, "keep1")
        handle = sim.schedule(0.2, fired.append, "drop")
        sim.schedule(0.3, fired.append, "keep2")
        handle.cancel()
        sim.run()
        assert fired == ["keep1", "keep2"]

    def test_cancelled_head_event_cannot_be_dispatched(self, sim):
        # Regression for the old double-heappop pattern: run() and
        # peek_next_time() each popped cancelled heads independently;
        # the unified drain helper must discard a cancelled head exactly
        # once and never dispatch it, no matter how the two interleave.
        fired = []
        head = sim.schedule(0.1, fired.append, "head")
        sim.schedule(0.2, fired.append, "next")
        head.cancel()
        assert sim.peek_next_time() == pytest.approx(0.2)
        head.cancel()  # re-cancel after the peek already swept it
        assert sim.peek_next_time() == pytest.approx(0.2)
        sim.run()
        assert fired == ["next"]
        stats = sim.resource_stats()
        assert stats["events_dispatched"] == 1
        assert stats["events_cancelled_dropped"] == 1  # dropped exactly once

    def test_cancel_mid_run_from_callback(self, sim):
        fired = []
        handle = sim.schedule(0.2, fired.append, "victim")
        sim.schedule(0.1, handle.cancel)
        sim.schedule(0.3, fired.append, "after")
        sim.run()
        assert fired == ["after"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        executed = sim.run(until=2.0)
        assert fired == ["early"]
        assert executed == 1
        assert sim.now == 2.0  # clock advanced to the horizon
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_exact_event_time_inclusive(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_guard(self, sim):
        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        executed = sim.run(max_events=50)
        assert executed == 50

    def test_chunked_run_matches_single_run(self):
        # The transfer loops run in until= chunks with peeks in between;
        # a suspended mid-batch calendar state must resume correctly.
        def drive(sim, chunk):
            fired = []
            for k in range(40):
                sim.schedule(0.013 * k + 0.0004, fired.append, k)
            if chunk is None:
                sim.run()
            else:
                while sim.peek_next_time() is not None:
                    sim.run(until=sim.now + chunk)
            return fired

        reference = drive(Simulator(scheduler="heap"), None)
        for backend in BACKENDS:
            for chunk in (0.25, 0.001, 0.0005):
                assert drive(Simulator(scheduler=backend),
                             chunk) == reference, (backend, chunk)

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(0.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_peek_next_time(self, sim):
        assert sim.peek_next_time() is None
        handle = sim.schedule(3.0, lambda: None)
        assert sim.peek_next_time() == 3.0
        handle.cancel()
        assert sim.peek_next_time() is None

    def test_peek_does_not_advance_anything(self, sim):
        # Peeking between run(until=) chunks must not commit the window:
        # an event scheduled afterwards at an earlier time still fires
        # first.
        fired = []
        sim.schedule(0.5, fired.append, "late")
        sim.run(until=0.1)
        assert sim.peek_next_time() == pytest.approx(0.5)
        sim.schedule(0.05, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_pending_events(self, sim):
        handles = [sim.schedule(1.0, lambda: None) for _ in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        assert sim.pending_events == 3

    def test_handle_time_property(self, sim):
        handle = sim.schedule(4.5, lambda: None)
        assert handle.time == 4.5


class TestSchedulerSelection:
    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert default_scheduler() == "calendar"
        assert Simulator().scheduler_name == "calendar"

    def test_explicit_selection(self):
        assert Simulator(scheduler="heap").scheduler_name == "heap"
        assert Simulator(scheduler="calendar").scheduler_name == "calendar"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="bogus")
        with pytest.raises(SimulationError):
            set_default_scheduler("bogus")

    def test_set_default_scheduler(self):
        try:
            set_default_scheduler("heap")
            assert Simulator().scheduler_name == "heap"
        finally:
            set_default_scheduler(None)
        assert Simulator().scheduler_name == default_scheduler()

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        assert Simulator().scheduler_name == "heap"
        monkeypatch.setenv("REPRO_SCHEDULER", "nonsense")
        with pytest.raises(SimulationError):
            Simulator()


class TestHeapResourceCounters:
    """The heap oracle's cost signature: one push + one pop per event."""

    def test_counters_track_pushes_pops_and_dispatches(self):
        sim = Simulator(scheduler="heap")
        for index in range(5):
            sim.schedule(0.001 * index, lambda: None)
        sim.run()
        stats = sim.resource_stats()
        assert stats["scheduler"] == "heap"
        assert stats["heap_pushes"] == 5
        assert stats["heap_pops"] == 5
        assert stats["events_dispatched"] == 5
        assert stats["events_cancelled_dropped"] == 0

    def test_cancelled_events_counted_separately(self):
        sim = Simulator(scheduler="heap")
        keep = sim.schedule(0.001, lambda: None)
        drop = sim.schedule(0.002, lambda: None)
        drop.cancel()
        sim.run()
        assert not keep.cancelled
        stats = sim.resource_stats()
        assert stats["events_dispatched"] == 1
        assert stats["events_cancelled_dropped"] == 1
        assert stats["heap_pops"] == 2

    def test_peek_discards_count_as_cancelled_drops(self):
        sim = Simulator(scheduler="heap")
        sim.schedule(0.001, lambda: None).cancel()
        assert sim.peek_next_time() is None
        assert sim.resource_stats()["events_cancelled_dropped"] == 1


class TestCalendarResourceCounters:
    """The calendar's cost signature: O(1) bucket appends, ~no heap ops."""

    def test_near_horizon_events_never_touch_a_heap(self):
        sim = Simulator(scheduler="calendar")
        for index in range(5):
            sim.schedule(0.001 * index, lambda: None)
        sim.run()
        stats = sim.resource_stats()
        assert stats["scheduler"] == "calendar"
        assert stats["events_dispatched"] == 5
        assert stats["bucket_inserts"] == 5
        assert stats["heap_pushes"] == 0
        assert stats["heap_pops"] == 0

    def test_same_bucket_events_dispatch_as_one_batch(self):
        sim = Simulator(scheduler="calendar")
        for _ in range(100):
            sim.schedule(0.0105, lambda: None)  # all in one 1 ms bucket
        sim.run()
        stats = sim.resource_stats()
        assert stats["events_dispatched"] == 100
        assert stats["batch_dispatches"] == 1

    def test_far_future_events_overflow_then_migrate(self):
        sim = Simulator(scheduler="calendar")
        fired = []
        sim.schedule(0.001, fired.append, "near")
        sim.schedule(30.0, fired.append, "far")  # beyond the ring horizon
        sim.run()
        assert fired == ["near", "far"]
        stats = sim.resource_stats()
        assert stats["heap_pushes"] == 1  # only the far event
        assert stats["overflow_migrations"] == 1

    def test_cancelled_events_counted(self):
        sim = Simulator(scheduler="calendar")
        sim.schedule(0.001, lambda: None)
        sim.schedule(0.002, lambda: None).cancel()
        sim.run()
        stats = sim.resource_stats()
        assert stats["events_dispatched"] == 1
        assert stats["events_cancelled_dropped"] == 1
