"""Tests for the discrete-event simulator core (repro.netsim.core)."""

import pytest

from repro.errors import SimulationError
from repro.netsim.core import Simulator


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abcde":
            sim.schedule(1.0, fired.append, name)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_from_callback(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent_and_safe_after_firing(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        sim.run()
        handle.cancel()
        handle.cancel()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "keep1")
        handle = sim.schedule(0.2, fired.append, "drop")
        sim.schedule(0.3, fired.append, "keep2")
        handle.cancel()
        sim.run()
        assert fired == ["keep1", "keep2"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        executed = sim.run(until=2.0)
        assert fired == ["early"]
        assert executed == 1
        assert sim.now == 2.0  # clock advanced to the horizon
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_exact_event_time_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        executed = sim.run(max_events=50)
        assert executed == 50

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(0.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        handle = sim.schedule(3.0, lambda: None)
        assert sim.peek_next_time() == 3.0
        handle.cancel()
        assert sim.peek_next_time() is None

    def test_pending_events(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        assert sim.pending_events == 3

    def test_handle_time_property(self):
        sim = Simulator()
        handle = sim.schedule(4.5, lambda: None)
        assert handle.time == 4.5


class TestResourceCounters:
    def test_counters_track_pushes_pops_and_dispatches(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(0.001 * index, lambda: None)
        sim.run()
        stats = sim.resource_stats()
        assert stats["heap_pushes"] == 5
        assert stats["heap_pops"] == 5
        assert stats["events_dispatched"] == 5
        assert stats["events_cancelled_dropped"] == 0

    def test_cancelled_events_counted_separately(self):
        sim = Simulator()
        keep = sim.schedule(0.001, lambda: None)
        drop = sim.schedule(0.002, lambda: None)
        drop.cancel()
        sim.run()
        assert not keep.cancelled
        stats = sim.resource_stats()
        assert stats["events_dispatched"] == 1
        assert stats["events_cancelled_dropped"] == 1
        assert stats["heap_pops"] == 2

    def test_peek_discards_count_as_cancelled_drops(self):
        sim = Simulator()
        sim.schedule(0.001, lambda: None).cancel()
        assert sim.peek_next_time() is None
        assert sim.resource_stats()["events_cancelled_dropped"] == 1
