"""ECN threshold plumbing through HopSpec/build_path."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path


class TestHopSpecEcn:
    def test_both_directions_get_the_threshold(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        topo = build_path(sim, [a, b], [HopSpec(ecn_threshold=4)])
        assert topo.links_up[0].ecn_threshold == 4
        assert topo.links_down[0].ecn_threshold == 4

    def test_default_is_disabled(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        topo = build_path(sim, [a, b], [HopSpec()])
        assert topo.links_up[0].ecn_threshold is None

    def test_burst_marks_through_topology(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        topo = build_path(sim, [a, b],
                          [HopSpec(bandwidth_bps=1e6, delay_s=0.001,
                                   ecn_threshold=2)])
        marked = []
        b.add_handler(PacketKind.DATA, lambda p: marked.append(p.ecn_ce))
        for _ in range(6):
            a.send(Packet(src="a", dst="b", size_bytes=1000))
        sim.run()
        assert marked == [False, False, True, True, True, True]
        assert topo.links_up[0].stats.ce_marked == 4
