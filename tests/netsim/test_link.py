"""Tests for links (repro.netsim.link)."""

import pytest

from repro.errors import SimulationError
from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.loss import BernoulliLoss, DeterministicLoss
from repro.netsim.packet import Packet


def make_link(sim, sink, bw=8e6, delay=0.01, **kwargs):
    return Link(sim, bw, delay, lambda p: sink.append((sim.now, p)), **kwargs)


def packet(size=1000):
    return Packet(src="a", dst="b", size_bytes=size)


class TestTiming:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, bw=8e6, delay=0.01)
        link.send(packet(1000))  # 1000 B at 8 Mbps = 1 ms
        sim.run()
        assert len(sink) == 1
        assert sink[0][0] == pytest.approx(0.011)

    def test_back_to_back_serialization(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, bw=8e6, delay=0.0)
        link.send(packet(1000))
        link.send(packet(1000))
        sim.run()
        times = [t for t, _ in sink]
        assert times == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink)
        packets = [packet() for _ in range(10)]
        for p in packets:
            link.send(p)
        sim.run()
        assert [p.uid for _, p in sink] == [p.uid for p in packets]

    def test_serialization_delay_helper(self):
        sim = Simulator()
        link = make_link(sim, [], bw=1e6)
        assert link.serialization_delay(1250) == pytest.approx(0.01)

    def test_rtt_contribution(self):
        sim = Simulator()
        assert make_link(sim, [], delay=0.033).rtt_contribution == 0.033


class TestQueueing:
    def test_drop_tail_when_full(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, queue_packets=3)
        accepted = [link.send(packet()) for _ in range(6)]
        assert accepted == [True, True, True, False, False, False]
        sim.run()
        assert len(sink) == 3
        assert link.stats.dropped_queue == 3
        assert link.stats.offered == 6

    def test_queue_depth(self):
        sim = Simulator()
        link = make_link(sim, [])
        for _ in range(4):
            link.send(packet())
        assert link.queue_depth == 4
        sim.run()
        assert link.queue_depth == 0

    def test_queue_drains_then_accepts_more(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, queue_packets=2)
        link.send(packet())
        link.send(packet())
        assert not link.send(packet())
        sim.run()
        assert link.send(packet())
        sim.run()
        assert len(sink) == 3


class TestLossAccounting:
    def test_loss_applied_after_serialization(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, loss_model=DeterministicLoss({1}))
        for _ in range(3):
            link.send(packet())
        sim.run()
        assert len(sink) == 2
        assert link.stats.dropped_loss == 1
        assert link.stats.delivered == 2
        assert link.stats.loss_rate == pytest.approx(1 / 3)

    def test_lost_packet_still_occupies_the_wire(self):
        """A dropped packet consumes its serialization slot (it was sent,
        then lost) -- later packets are not sped up."""
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, bw=8e6, delay=0.0,
                         loss_model=DeterministicLoss({0}))
        link.send(packet(1000))
        link.send(packet(1000))
        sim.run()
        assert len(sink) == 1
        assert sink[0][0] == pytest.approx(0.002)

    def test_bytes_delivered(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink)
        link.send(packet(700))
        link.send(packet(300))
        sim.run()
        assert link.stats.bytes_delivered == 1000

    def test_loss_rate_with_no_traffic(self):
        sim = Simulator()
        assert make_link(sim, []).stats.loss_rate == 0.0


class TestValidation:
    def test_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Link(sim, 0, 0.01, lambda p: None)
        with pytest.raises(SimulationError):
            Link(sim, 1e6, -1, lambda p: None)
        with pytest.raises(SimulationError):
            Link(sim, 1e6, 0.01, lambda p: None, queue_packets=0)

    def test_repr(self):
        sim = Simulator()
        link = Link(sim, 20e6, 0.005, lambda p: None, name="up")
        assert "up" in repr(link) and "20.0 Mbps" in repr(link)
