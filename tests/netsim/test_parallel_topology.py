"""Tests for the parallel-paths topology builder and path-pinned sends."""

import pytest

from repro.errors import SimulationError
from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_parallel_paths


def build(num_paths=2):
    sim = Simulator()
    left, right = Host(sim, "left"), Host(sim, "right")
    middles = [Router(sim, f"m{i}") for i in range(num_paths)]
    hops = [(HopSpec(delay_s=0.01 * (i + 1)),
             HopSpec(delay_s=0.01 * (i + 1))) for i in range(num_paths)]
    topos = build_parallel_paths(sim, left, right, middles, hops)
    return sim, left, right, middles, topos


class TestBuildParallelPaths:
    def test_returns_one_topology_per_path(self):
        sim, left, right, middles, topos = build(3)
        assert len(topos) == 3
        for topo, middle in zip(topos, middles):
            assert topo.node_named(middle.name) is middle

    def test_default_route_is_first_path(self):
        sim, left, right, middles, topos = build()
        assert left.routes["right"] == "m0"
        assert right.routes["left"] == "m0"

    def test_default_send_uses_first_path(self):
        sim, left, right, middles, topos = build()
        got = []
        right.add_handler(PacketKind.DATA, lambda p: got.append(sim.now))
        left.send(Packet(src="left", dst="right", size_bytes=100))
        sim.run()
        # Path 0 delays: 10 ms + 10 ms (plus tiny serialization).
        assert got and got[0] < 0.03

    def test_via_steers_to_second_path(self):
        sim, left, right, middles, topos = build()
        got = []
        right.add_handler(PacketKind.DATA, lambda p: got.append(sim.now))
        left.send(Packet(src="left", dst="right", size_bytes=100), via="m1")
        sim.run()
        # Path 1 delays: 20 ms + 20 ms.
        assert got and got[0] > 0.04

    def test_via_unknown_neighbor_rejected(self):
        sim, left, right, middles, topos = build()
        with pytest.raises(SimulationError, match="no link"):
            left.send(Packet(src="left", dst="right", size_bytes=10),
                      via="nowhere")

    def test_reverse_direction_steering(self):
        sim, left, right, middles, topos = build()
        got = []
        left.add_handler(PacketKind.ACK, lambda p: got.append(sim.now))
        right.send(Packet(src="right", dst="left", size_bytes=50,
                          kind=PacketKind.ACK), via="m1")
        sim.run()
        assert got and got[0] > 0.04

    def test_validation(self):
        sim = Simulator()
        left, right = Host(sim, "l"), Host(sim, "r")
        with pytest.raises(SimulationError):
            build_parallel_paths(sim, left, right, [], [])
        with pytest.raises(SimulationError):
            build_parallel_paths(sim, left, right, [Router(sim, "m")], [])
