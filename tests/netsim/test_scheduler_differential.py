"""Differential oracle: heap vs. calendar scheduler, byte-identical.

The calendar-queue backend (DESIGN.md §15) is only admissible if it is
*observationally indistinguishable* from the legacy binary heap: every
event fires at the same virtual time, in the same order, producing the
same packets, the same trace, the same metrics.  This suite enforces
that at the strongest level we can measure -- byte equality of the
serialized artifacts:

* the JSONL trace export of every seed scenario and every chaos plan,
* the mergeable telemetry snapshot of the same runs,
* the ``strip_timing`` sweep aggregates, crossing scheduler *and*
  worker count (heap/serial vs. calendar/4-workers),
* (``--runslow``) every sweep grid checked into ``examples/sweeps/``.

If a future scheduler change reorders even one same-tick tie, these
tests fail on the first diverging byte rather than on some downstream
statistic.
"""

from __future__ import annotations

import glob
import io
import json
import os

import pytest

from repro import obs
from repro.chaos import PLANS
from repro.netsim.core import set_default_scheduler
from repro.obs.aggregate import mergeable_snapshot
from repro.obs.runner import EXPERIMENT_SCENARIOS, run_traced
from repro.obs.trace import dump_jsonl
from repro.sweep import SweepSpec, run_sweep, strip_timing

SWEEP_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "examples", "sweeps")


def _traced_artifacts(scenario: str, scheduler: str,
                      **kwargs) -> tuple[str, str]:
    """Run ``scenario`` under ``scheduler``; return (jsonl, telemetry).

    Both return values are fully serialized strings so the assertions
    compare bytes, not structures -- a reordered dict key or a float
    that repr()s differently is a failure too.
    """
    # Defense-armed chaos plans memoize their unassisted-baseline run in
    # a process-global cache; a warm cache would make the second
    # scheduler's trace skip the baseline simulation the first one
    # performed.  Clearing it keeps the two runs structurally identical
    # -- and puts the baseline transfer itself under differential test.
    from repro.chaos.harness import _BASELINE_CACHE

    _BASELINE_CACHE.clear()
    set_default_scheduler(scheduler)
    try:
        result = run_traced(scenario, profile=False, **kwargs)
    finally:
        set_default_scheduler(None)
    buffer = io.StringIO()
    dump_jsonl(result.events, buffer)
    telemetry = json.dumps(mergeable_snapshot(obs.METRICS), sort_keys=True)
    return buffer.getvalue(), telemetry


def _assert_schedulers_agree(scenario: str, **kwargs) -> None:
    heap_trace, heap_telemetry = _traced_artifacts(scenario, "heap", **kwargs)
    cal_trace, cal_telemetry = _traced_artifacts(scenario, "calendar",
                                                 **kwargs)
    # The run must have actually produced something to compare.
    assert heap_trace.strip(), f"{scenario}: empty trace under heap"
    assert heap_trace == cal_trace, \
        f"{scenario}: JSONL trace diverged between heap and calendar"
    assert heap_telemetry == cal_telemetry, \
        f"{scenario}: telemetry snapshot diverged between heap and calendar"


class TestSeedScenarios:
    """Every protocol experiment, traced under both backends."""

    @pytest.mark.parametrize("scenario", EXPERIMENT_SCENARIOS)
    def test_trace_and_telemetry_byte_identical(self, scenario):
        _assert_schedulers_agree(scenario, seed=1, total_bytes=60_000)

    def test_nontrivial_seed_and_loss(self):
        # A second operating point so the equality is not an artifact of
        # one lucky parameterization.
        _assert_schedulers_agree("retransmission", seed=1234,
                                 total_bytes=40_000, loss=0.08)


class TestChaosPlans:
    """Every chaos plan -- faults, crashes, adversaries -- both backends."""

    @pytest.mark.parametrize("plan", sorted(PLANS))
    def test_trace_and_telemetry_byte_identical(self, plan):
        _assert_schedulers_agree(plan, seed=1, total_bytes=40_000)


def _stripped_dump(spec, *, workers, scheduler, monkeypatch):
    """One sweep run pinned to a scheduler via the env var the
    fork-spawned workers inherit."""
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    try:
        aggregate = run_sweep(spec, workers=workers)
    finally:
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    return json.dumps(strip_timing(aggregate.to_dict()), sort_keys=True)


class TestSweepCrossSchedulerDeterminism:
    """workers x scheduler: all four corners produce the same bytes."""

    SPEC = {
        "name": "xsched-retx", "scenario": "retransmission", "seed": 42,
        "base": {"total_bytes": 30000},
        "grid": {"loss_rate": [0.01, 0.05],
                 "lossy_delay": [0.002, 0.01]},
    }

    def test_heap_serial_matches_calendar_parallel(self, monkeypatch):
        spec = SweepSpec.from_dict(self.SPEC)
        heap_serial = _stripped_dump(spec, workers=1, scheduler="heap",
                                     monkeypatch=monkeypatch)
        cal_parallel = _stripped_dump(spec, workers=4, scheduler="calendar",
                                      monkeypatch=monkeypatch)
        assert heap_serial == cal_parallel

    def test_calendar_serial_matches_heap_parallel(self, monkeypatch):
        spec = SweepSpec.from_dict(self.SPEC)
        cal_serial = _stripped_dump(spec, workers=1, scheduler="calendar",
                                    monkeypatch=monkeypatch)
        heap_parallel = _stripped_dump(spec, workers=4, scheduler="heap",
                                       monkeypatch=monkeypatch)
        assert cal_serial == heap_parallel


def _example_sweep_paths():
    paths = sorted(glob.glob(os.path.join(SWEEP_DIR, "*.json")))
    assert paths, f"no example sweeps found under {SWEEP_DIR}"
    return paths


@pytest.mark.slow
class TestExampleSweepGrids:
    """The full checked-in grids (nightly: ``pytest --runslow``)."""

    @pytest.mark.parametrize(
        "path", _example_sweep_paths(),
        ids=[os.path.splitext(os.path.basename(p))[0]
             for p in _example_sweep_paths()])
    def test_grid_identical_across_schedulers(self, path, monkeypatch):
        with open(path, encoding="utf-8") as handle:
            spec = SweepSpec.from_dict(json.load(handle))
        heap = _stripped_dump(spec, workers=1, scheduler="heap",
                              monkeypatch=monkeypatch)
        calendar = _stripped_dump(spec, workers=4, scheduler="calendar",
                                  monkeypatch=monkeypatch)
        assert heap == calendar
