"""Tests for loss models (repro.netsim.loss)."""

import random

import pytest

from repro.netsim.loss import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    NoLoss,
)
from repro.netsim.packet import Packet


def packet():
    return Packet(src="a", dst="b", size_bytes=100)


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(packet()) for _ in range(100))


class TestBernoulli:
    def test_rate_zero_never_drops(self):
        model = BernoulliLoss(0.0)
        assert not any(model.should_drop(packet()) for _ in range(200))

    def test_empirical_rate(self):
        model = BernoulliLoss(0.3, random.Random(1))
        drops = sum(model.should_drop(packet()) for _ in range(5000))
        assert drops / 5000 == pytest.approx(0.3, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)

    def test_deterministic_with_seeded_rng(self):
        a = BernoulliLoss(0.5, random.Random(9))
        b = BernoulliLoss(0.5, random.Random(9))
        seq_a = [a.should_drop(packet()) for _ in range(50)]
        seq_b = [b.should_drop(packet()) for _ in range(50)]
        assert seq_a == seq_b


class TestGilbertElliott:
    def test_steady_state_loss_rate_formula(self):
        model = GilbertElliottLoss(0.01, 0.1, loss_good=0.0, loss_bad=0.5)
        pi_bad = 0.01 / 0.11
        assert model.steady_state_loss_rate() == pytest.approx(pi_bad * 0.5)

    def test_empirical_rate_approaches_steady_state(self):
        model = GilbertElliottLoss(0.02, 0.2, loss_good=0.0, loss_bad=0.5,
                                   rng=random.Random(3))
        n = 40_000
        drops = sum(model.should_drop(packet()) for _ in range(n))
        assert drops / n == pytest.approx(model.steady_state_loss_rate(),
                                          abs=0.01)

    def test_burstiness(self):
        """Losses should cluster more than Bernoulli at equal rates."""
        ge = GilbertElliottLoss(0.01, 0.3, loss_good=0.0, loss_bad=0.8,
                                rng=random.Random(5))
        seq = [ge.should_drop(packet()) for _ in range(20_000)]
        rate = sum(seq) / len(seq)
        # Count adjacent loss pairs; for Bernoulli this would be ~rate**2.
        pairs = sum(1 for a, b in zip(seq, seq[1:]) if a and b)
        pair_rate = pairs / (len(seq) - 1)
        assert pair_rate > 3 * rate ** 2

    def test_zero_transitions_stay_in_state(self):
        model = GilbertElliottLoss(0.0, 0.0, loss_good=0.0, loss_bad=1.0)
        assert model.steady_state_loss_rate() == 0.0
        assert not any(model.should_drop(packet()) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.1)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.1, 0.1, loss_bad=-0.2)


class TestDeterministic:
    def test_drops_exact_ordinals(self):
        model = DeterministicLoss({0, 2, 5})
        results = [model.should_drop(packet()) for _ in range(7)]
        assert results == [True, False, True, False, False, True, False]

    def test_empty_set(self):
        model = DeterministicLoss(set())
        assert not any(model.should_drop(packet()) for _ in range(10))
