"""Property-based scheduler equivalence (Hypothesis).

The differential suite proves heap == calendar on the *real* workloads;
this suite attacks the backends with randomized interleavings of
schedule / schedule_at / cancel / timer-rearm / partial-run operations
that no scenario would naturally produce -- bucket-boundary times,
cancel-then-reschedule churn, far-future jumps in and out of the
overflow heap.

Properties:

* dispatch order is strictly non-decreasing in ``(time, seq)``;
* a cancelled event never fires, and fires exactly once otherwise;
* both backends produce the *identical* dispatch sequence for any
  program of operations.
"""

from __future__ import annotations

import pytest

from repro.netsim.core import Simulator
from repro.netsim.sched import DEFAULT_BUCKET_WIDTH, DEFAULT_WHEEL_SLOTS

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

WIDTH = DEFAULT_BUCKET_WIDTH
HORIZON = DEFAULT_BUCKET_WIDTH * DEFAULT_WHEEL_SLOTS

# Delays chosen to stress every placement class: zero-delay chains,
# sub-bucket, exact bucket boundaries, mid-window, and past the ring
# horizon (the overflow heap).
DELAYS = st.sampled_from([
    0.0, WIDTH / 10, WIDTH / 2,
    WIDTH, WIDTH * 1.5, WIDTH * 2,
    WIDTH * 100, HORIZON - WIDTH, HORIZON, HORIZON * 2,
])

# One operation of the random program.  ``target`` indexes into the
# set of previously scheduled events (modulo its size) for cancels.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), DELAYS),
        st.tuples(st.just("schedule_from_callback"), DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0,
                                                 max_value=10_000)),
        st.tuples(st.just("rearm_timer"), DELAYS),
        st.tuples(st.just("run_for"), DELAYS),
    ),
    min_size=1, max_size=60,
)


def _execute(ops, scheduler: str) -> list[tuple]:
    """Run one operation program; return the dispatch log.

    Log entries are ``(kind, label, round(time, 12))`` so the comparison
    is over observable behavior (which callback fired when), not over
    backend internals.
    """
    sim = Simulator(scheduler=scheduler)
    log: list[tuple] = []
    handles: list = []
    timer_holder = [None]

    def fire(label):
        log.append(("fire", label, round(sim.now, 12)))

    def fire_and_schedule(label, delay):
        log.append(("chain", label, round(sim.now, 12)))
        handles.append(sim.schedule(delay, fire, f"{label}+chained"))

    def timer_tick():
        log.append(("timer", timer_holder[0].rearms, round(sim.now, 12)))

    timer_holder[0] = sim.timer(timer_tick)

    for position, (op, arg) in enumerate(ops):
        if op == "schedule":
            handles.append(sim.schedule(arg, fire, f"ev{position}"))
        elif op == "schedule_from_callback":
            handles.append(
                sim.schedule(arg, fire_and_schedule, f"cb{position}", arg))
        elif op == "cancel":
            if handles:
                handles[arg % len(handles)].cancel()
        elif op == "rearm_timer":
            timer_holder[0].rearm(arg)
        elif op == "run_for":
            sim.run(until=sim.now + arg)
    sim.run()  # drain whatever is left
    return log


@settings(max_examples=200, deadline=None)
@given(ops=OPS)
def test_backends_dispatch_identically(ops):
    assert _execute(ops, "heap") == _execute(ops, "calendar")


@settings(max_examples=100, deadline=None)
@given(ops=OPS)
def test_dispatch_times_monotone_under_calendar(ops):
    log = _execute(ops, "calendar")
    times = [entry[2] for entry in log]
    assert times == sorted(times)


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(DELAYS, min_size=1, max_size=30),
    cancels=st.sets(st.integers(min_value=0, max_value=29)),
)
def test_cancelled_never_fire_others_exactly_once(delays, cancels):
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        fired: list[int] = []
        handles = [sim.schedule(delay, fired.append, index)
                   for index, delay in enumerate(delays)]
        for index in cancels:
            if index < len(handles):
                handles[index].cancel()
        sim.run()
        expected = [i for i in range(len(delays))
                    if i not in cancels]
        assert sorted(fired) == expected, scheduler
        # ... and in (time, seq) order: stable sort by delay == the
        # expected dispatch order, since seq is the schedule index.
        expected_order = sorted(expected, key=lambda i: (delays[i], i))
        assert fired == expected_order, scheduler


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(DELAYS, min_size=1, max_size=20),
    chunk=DELAYS.filter(lambda d: d > 0),
)
def test_chunked_run_equals_single_run(delays, chunk):
    def run_all_at_once(scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, fired.append, index)
        sim.run()
        return fired

    def run_chunked(scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, fired.append, index)
        deadline = max(delays) + chunk
        while sim.now < deadline:
            sim.run(until=min(sim.now + chunk, deadline))
        return fired

    reference = run_all_at_once("heap")
    for scheduler in ("heap", "calendar"):
        assert run_all_at_once(scheduler) == reference, scheduler
        assert run_chunked(scheduler) == reference, scheduler
