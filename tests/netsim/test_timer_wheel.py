"""Timer-wheel edge cases: the reusable :class:`repro.netsim.Timer`.

The recurring clocks (quACK emission, PTO, checkpoints, staleness
probes) all live on :class:`Timer` handles; these tests pin down the
corners the scenario suites reach only by accident: rearming from
inside the timer's own callback, cancel-after-fire idempotency, timers
landing exactly on bucket boundaries, and far-future arms migrating
from the overflow heap into the ring without reordering.
"""

from __future__ import annotations

import pytest

from repro.netsim.core import Simulator
from repro.netsim.sched import (
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_WHEEL_SLOTS,
    CalendarScheduler,
)

BACKENDS = ["heap", "calendar"]
WIDTH = DEFAULT_BUCKET_WIDTH
HORIZON = DEFAULT_BUCKET_WIDTH * DEFAULT_WHEEL_SLOTS


@pytest.fixture(params=BACKENDS)
def sim(request):
    return Simulator(scheduler=request.param)


class TestRearmWithinCallback:
    """The normal life of a recurring clock: rearm from its own tick."""

    def test_periodic_rearm_fires_every_period(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                timer.rearm(0.02)

        timer = sim.timer(tick)
        timer.rearm(0.02)
        sim.run()
        assert len(ticks) == 5
        for index, when in enumerate(ticks, start=1):
            assert when == pytest.approx(0.02 * index)

    def test_rearm_same_tick_zero_delay(self, sim):
        # A zero-delay rearm from the callback lands in the *currently
        # dispatching* bucket -- the calendar must merge it in, not lose
        # it or fire it out of order.
        order = []

        def tick():
            order.append(("tick", sim.now))
            if len(order) < 3:
                timer.rearm(0.0)

        timer = sim.timer(tick)
        sim.schedule(0.01, order.append, ("other", 0.01))
        timer.rearm(0.005)
        sim.run()
        assert order == [("tick", 0.005), ("tick", 0.005), ("tick", 0.005),
                         ("other", 0.01)]

    def test_rearm_from_callback_supersedes_nothing_pending(self, sim):
        # After the callback started, the arm that fired is spent;
        # rearm() must not try to cancel it again (rearms counts arms).
        fire_count = [0]

        def tick():
            fire_count[0] += 1
            if fire_count[0] == 1:
                timer.rearm(0.1)

        timer = sim.timer(tick)
        timer.rearm(0.1)
        sim.run()
        assert fire_count[0] == 2
        assert timer.rearms == 2


class TestCancelIdempotency:
    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        timer = sim.timer(fired.append, "x")
        timer.rearm(0.01)
        sim.run()
        assert fired == ["x"]
        timer.cancel()  # already fired: must be a no-op
        timer.cancel()  # and idempotent
        sim.run()
        assert fired == ["x"]

    def test_cancel_before_fire_then_rearm(self, sim):
        fired = []
        timer = sim.timer(fired.append, "x")
        timer.rearm(0.01)
        timer.cancel()
        sim.run()
        assert fired == []
        # The cancelled run dispatched nothing, so the clock is still 0
        # and the new arm fires at an absolute 0.02.
        timer.rearm(0.02)
        sim.run()
        assert fired == ["x"]
        assert sim.now == pytest.approx(0.02)

    def test_rearm_supersedes_pending_arm_exactly_once(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.rearm(0.5)
        timer.rearm(0.1)  # supersedes: only the 0.1 s arm may fire
        sim.run()
        assert fired == [pytest.approx(0.1)]
        assert timer.rearms == 2

    def test_next_fire_time_tracks_the_live_arm(self, sim):
        timer = sim.timer(lambda: None)
        assert timer.next_fire_time is None
        timer.rearm(0.25)
        assert timer.next_fire_time == pytest.approx(0.25)
        timer.rearm(0.125)
        assert timer.next_fire_time == pytest.approx(0.125)
        timer.cancel()
        assert timer.next_fire_time is None


class TestBucketBoundaries:
    """Times landing exactly on calendar bucket edges."""

    @pytest.mark.parametrize("boundary_multiple", [1, 2, 7,
                                                   DEFAULT_WHEEL_SLOTS - 1,
                                                   DEFAULT_WHEEL_SLOTS])
    def test_exact_boundary_times_fire_in_order(self, boundary_multiple):
        reference = None
        for scheduler in BACKENDS:
            sim = Simulator(scheduler=scheduler)
            fired = []
            edge = WIDTH * boundary_multiple
            # Straddle the edge: just below, exactly on, just above.
            sim.schedule(edge + WIDTH / 4, fired.append, "above")
            sim.schedule(edge, fired.append, "on-a")
            sim.schedule(edge - WIDTH / 4, fired.append, "below")
            sim.schedule(edge, fired.append, "on-b")  # same-time tie
            sim.run()
            assert fired == ["below", "on-a", "on-b", "above"], scheduler
            if reference is None:
                reference = fired
            assert fired == reference

    def test_timer_rearm_onto_boundary(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.rearm_at(WIDTH * 3)  # exactly the start of bucket 3
        sim.schedule(WIDTH * 3 - 1e-9, fired.append, None)
        sim.run()
        assert fired[0] is None
        assert fired[1] == pytest.approx(WIDTH * 3)


class TestOverflowMigration:
    """Far-future arms: overflow heap -> ring, without reordering."""

    def test_far_future_timer_fires_on_time(self, sim):
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.rearm(HORIZON * 4)  # way past the ring horizon
        sim.schedule(0.01, fired.append, "near")
        sim.run()
        assert fired == ["near", pytest.approx(HORIZON * 4)]

    def test_migrated_events_keep_time_seq_order(self):
        # Schedule a cluster beyond the horizon, with deliberate ties,
        # then let the window advance across it: migration must not
        # perturb (time, seq) order relative to the heap oracle.
        def run(scheduler):
            sim = Simulator(scheduler=scheduler)
            fired = []
            far = HORIZON * 2
            for index in range(8):
                sim.schedule(far + (index % 3) * WIDTH / 2,
                             fired.append, index)
            # Near-horizon activity that drags the window forward bucket
            # by bucket, forcing a migration (rather than a single
            # overflow-driven window jump) before the cluster is due.
            def step():
                if sim.now < far:
                    stepper.rearm(HORIZON / 3)
            stepper = sim.timer(step)
            stepper.rearm(HORIZON / 3)
            sim.run()
            return fired

        assert run("calendar") == run("heap")

    def test_cancelled_overflow_arm_never_migrates_into_firing(self):
        sim = Simulator(scheduler="calendar")
        backend = sim._sched
        assert isinstance(backend, CalendarScheduler)
        fired = []
        timer = sim.timer(fired.append, "far")
        timer.rearm(HORIZON * 3)
        assert backend.heap_pushes == 1  # it really went to overflow
        timer.cancel()
        sim.schedule(HORIZON * 3 + WIDTH, fired.append, "live")
        sim.run()
        assert fired == ["live"]
        assert backend.events_cancelled_dropped == 1

    def test_overflow_migration_counter_increments(self):
        sim = Simulator(scheduler="calendar")
        backend = sim._sched
        sim.schedule(HORIZON * 2, lambda: None)
        assert backend.overflow_migrations == 0
        sim.run()
        assert backend.overflow_migrations == 1

    def test_rearm_cycle_through_overflow_and_back(self, sim):
        # A timer alternating between near and far arms crosses the
        # ring/overflow boundary repeatedly.
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 1:
                timer.rearm(HORIZON * 1.5)  # near -> overflow
            elif len(fired) == 2:
                timer.rearm(WIDTH / 2)      # overflow -> near
        timer = sim.timer(tick)
        timer.rearm(0.01)
        sim.run()
        assert len(fired) == 3
        assert fired[0] == pytest.approx(0.01)
        assert fired[1] == pytest.approx(0.01 + HORIZON * 1.5)
        assert fired[2] == pytest.approx(0.01 + HORIZON * 1.5 + WIDTH / 2)
