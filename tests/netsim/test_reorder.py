"""Tests for the reordering (jitter) link extension."""

import random

import pytest

from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.reorder import JitterLink


def packet(size=1000):
    return Packet(src="a", dst="b", size_bytes=size)


class TestJitterLink:
    def test_zero_jitter_is_fifo(self):
        sim = Simulator()
        sink = []
        link = JitterLink(sim, 8e6, 0.01, lambda p: sink.append(p.uid),
                          jitter_s=0.0)
        packets = [packet() for _ in range(20)]
        for p in packets:
            link.send(p)
        sim.run()
        assert sink == [p.uid for p in packets]

    def test_jitter_actually_reorders(self):
        sim = Simulator()
        sink = []
        # Serialization gap 1 ms, jitter up to 20 ms: lots of overtaking.
        link = JitterLink(sim, 8e6, 0.005, lambda p: sink.append(p.uid),
                          jitter_s=0.020, rng=random.Random(3))
        packets = [packet() for _ in range(100)]
        for p in packets:
            link.send(p)
        sim.run()
        sent_order = [p.uid for p in packets]
        assert sorted(sink) == sorted(sent_order)  # nothing lost
        assert sink != sent_order                  # but order changed
        inversions = sum(1 for a, b in zip(sink, sink[1:]) if a > b)
        assert inversions > 5

    def test_delay_bounds(self):
        sim = Simulator()
        arrivals = []
        link = JitterLink(sim, 8e6, 0.010, lambda p: arrivals.append(sim.now),
                          jitter_s=0.005, rng=random.Random(1))
        link.send(packet())
        sim.run()
        # serialization 1 ms + delay in [10, 15] ms.
        assert 0.011 <= arrivals[0] <= 0.016

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            JitterLink(sim, 8e6, 0.01, lambda p: None, jitter_s=-1.0)

    def test_repr(self):
        sim = Simulator()
        link = JitterLink(sim, 8e6, 0.01, lambda p: None, jitter_s=0.002,
                          name="wobble")
        assert "wobble" in repr(link)


class TestReorderingVsSidecarGrace:
    """Section 3.3's reordering hazard, end to end.

    A consumer with grace=1 declares reordered packets lost, removes them
    from its power sums, and is poisoned when they arrive; a larger grace
    rides the jitter out.
    """

    def run_session(self, grace: int, seed: int = 5) -> tuple[int, int]:
        from repro.quack.power_sum import PowerSumQuack
        from repro.sidecar.consumer import QuackConsumer

        sim = Simulator()
        rng = random.Random(seed)
        receiver_quack = PowerSumQuack(threshold=10)
        consumer = QuackConsumer(threshold=10, grace=grace)
        arrived = []

        link = JitterLink(sim, 8e6, 0.005, lambda p: arrived.append(p),
                          jitter_s=0.015, rng=rng)

        failures = [0]
        losses = [0]

        def deliver_and_quack(p):
            receiver_quack.insert(p.identifier)
            if receiver_quack.count % 4 == 0:
                feedback = consumer.on_quack(receiver_quack.copy(), sim.now)
                if not feedback.ok:
                    failures[0] += 1
                losses[0] += len(feedback.lost)

        link.deliver = deliver_and_quack
        for pn in range(200):
            identifier = rng.getrandbits(32)
            p = Packet(src="a", dst="b", size_bytes=1000,
                       identifier=identifier)
            sim.schedule(pn * 0.002, self._send, link, consumer, p)
        sim.run()
        return failures[0], losses[0]

    @staticmethod
    def _send(link, consumer, p):
        consumer.record_send(p.identifier, p.uid, link.sim.now)
        link.send(p)

    def test_grace_one_gets_poisoned(self):
        failures, losses = self.run_session(grace=1)
        # Spurious loss declarations happen, then decoding degrades.
        assert losses > 0
        assert failures > 0

    def test_larger_grace_survives(self):
        failures_g1, _ = self.run_session(grace=1)
        failures_g4, losses_g4 = self.run_session(grace=4)
        assert failures_g4 < failures_g1
        assert failures_g4 == 0  # grace 4 rides out all the jitter here
