"""Tests for measurement helpers (repro.netsim.trace)."""

import pytest

from repro.netsim.packet import Packet, PacketKind
from repro.netsim.trace import EventTrace, FlowMonitor, PacketCounter


class TestFlowMonitor:
    def test_goodput_average(self):
        m = FlowMonitor()
        m.record_delivery(1000, 1.0)
        m.record_delivery(1000, 2.0)
        assert m.total_bytes == 2000
        assert m.goodput_bps() == pytest.approx(2000 * 8 / 2.0)

    def test_goodput_with_horizon(self):
        m = FlowMonitor()
        m.record_delivery(1000, 1.0)
        m.record_delivery(9000, 10.0)
        assert m.goodput_bps(until=5.0) == pytest.approx(1000 * 8 / 5.0)

    def test_bytes_delivered_by(self):
        m = FlowMonitor()
        m.record_delivery(500, 1.0)
        m.record_delivery(500, 3.0)
        assert m.bytes_delivered_by(0.5) == 0
        assert m.bytes_delivered_by(1.0) == 500
        assert m.bytes_delivered_by(2.0) == 500
        assert m.bytes_delivered_by(10.0) == 1000

    def test_empty_monitor(self):
        m = FlowMonitor()
        assert m.goodput_bps() == 0.0
        assert m.duration == 0.0
        assert m.first_delivery is None

    def test_first_last_completion(self):
        m = FlowMonitor()
        m.record_delivery(1, 0.5)
        m.record_delivery(1, 2.5)
        m.record_completion(2.6)
        assert m.first_delivery == 0.5
        assert m.last_delivery == 2.5
        assert m.completed_at == 2.6


class TestPacketCounter:
    def test_counts_by_kind(self):
        counter = PacketCounter()
        counter(Packet(src="a", dst="b", size_bytes=100))
        counter(Packet(src="a", dst="b", size_bytes=50,
                       kind=PacketKind.ACK))
        counter(Packet(src="a", dst="b", size_bytes=80,
                       kind=PacketKind.QUACK))
        assert counter.packets[PacketKind.DATA] == 1
        assert counter.packets[PacketKind.ACK] == 1
        assert counter.bytes[PacketKind.QUACK] == 80
        assert counter.total_packets == 3
        assert counter.total_bytes == 230


class TestEventTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        p = Packet(src="a", dst="b", size_bytes=10)
        trace.record(1.0, "r1", "forward", p)
        trace.record(2.0, "r2", "drop", p)
        assert len(trace) == 2
        assert [e.where for e in trace.filtered(what="drop")] == ["r2"]
        assert [e.time for e in trace.filtered(where="r1")] == [1.0]

    def test_capacity(self):
        trace = EventTrace(capacity=2)
        p = Packet(src="a", dst="b", size_bytes=10)
        for i in range(5):
            trace.record(float(i), "x", "e", p)
        assert len(trace) == 2
        assert trace.dropped_events == 3
