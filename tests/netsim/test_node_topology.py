"""Tests for nodes, routing, and topology building."""

import pytest

from repro.errors import SimulationError
from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path


def data(src, dst, size=100, kind=PacketKind.DATA):
    return Packet(src=src, dst=dst, size_bytes=size, kind=kind)


class TestHost:
    def test_dispatch_by_kind(self):
        sim = Simulator()
        host = Host(sim, "h")
        got = {"data": [], "ack": []}
        host.add_handler(PacketKind.DATA, got["data"].append)
        host.add_handler(PacketKind.ACK, got["ack"].append)
        host.receive(data("x", "h"))
        host.receive(data("x", "h", kind=PacketKind.ACK))
        assert len(got["data"]) == 1 and len(got["ack"]) == 1
        assert host.received_count == 2

    def test_multiple_handlers_same_kind(self):
        sim = Simulator()
        host = Host(sim, "h")
        calls = []
        host.add_handler(PacketKind.DATA, lambda p: calls.append("first"))
        host.add_handler(PacketKind.DATA, lambda p: calls.append("second"))
        host.receive(data("x", "h"))
        assert calls == ["first", "second"]

    def test_no_handler_is_an_error(self):
        host = Host(Simulator(), "h")
        with pytest.raises(SimulationError, match="no handler"):
            host.receive(data("x", "h"))

    def test_misdelivered_packet_rejected(self):
        host = Host(Simulator(), "h")
        with pytest.raises(SimulationError, match="addressed"):
            host.receive(data("x", "other"))

    def test_send_requires_route(self):
        host = Host(Simulator(), "h")
        with pytest.raises(SimulationError, match="no route"):
            host.send(data("h", "far"))

    def test_send_to_self_rejected(self):
        host = Host(Simulator(), "h")
        with pytest.raises(SimulationError):
            host.send(data("h", "h"))

    def test_route_without_link_rejected(self):
        host = Host(Simulator(), "h")
        host.add_route("far", "neighbor")
        with pytest.raises(SimulationError, match="no link"):
            host.send(data("h", "far"))


class TestRouter:
    def build(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        router = Router(sim, "r")
        topo = build_path(sim, [a, router, b], [HopSpec(), HopSpec()])
        return sim, a, router, b, topo

    def test_forwards_toward_destination(self):
        sim, a, router, b, _ = self.build()
        got = []
        b.add_handler(PacketKind.DATA, got.append)
        a.send(data("a", "b"))
        sim.run()
        assert len(got) == 1
        assert router.forwarded_count == 1

    def test_taps_observe_forwarded_packets(self):
        sim, a, router, b, _ = self.build()
        b.add_handler(PacketKind.DATA, lambda p: None)
        seen = []
        router.add_tap(seen.append)
        a.send(data("a", "b"))
        sim.run()
        assert len(seen) == 1

    def test_packet_addressed_to_router_terminates_there(self):
        sim, a, router, b, _ = self.build()
        seen = []
        router.add_tap(seen.append)
        a.send(data("a", "r", kind=PacketKind.QUACK))
        sim.run()
        assert len(seen) == 1
        assert router.forwarded_count == 0

    def test_policy_custody(self):
        sim, a, router, b, _ = self.build()
        got = []
        b.add_handler(PacketKind.DATA, got.append)
        held = []

        class Holder:
            def on_packet(self, packet):
                held.append(packet)
                return False  # take custody

        router.policy = Holder()
        a.send(data("a", "b"))
        sim.run()
        assert got == [] and len(held) == 1
        # The policy can release later via emit().
        router.emit(held[0])
        sim.run()
        assert len(got) == 1

    def test_policy_pass_through(self):
        sim, a, router, b, _ = self.build()
        got = []
        b.add_handler(PacketKind.DATA, got.append)

        class PassThrough:
            def on_packet(self, packet):
                return True

        router.policy = PassThrough()
        a.send(data("a", "b"))
        sim.run()
        assert len(got) == 1


class TestBuildPath:
    def test_chain_routing_end_to_end(self):
        sim = Simulator()
        nodes = [Host(sim, "h0"), Router(sim, "r1"), Router(sim, "r2"),
                 Host(sim, "h3")]
        build_path(sim, nodes, [HopSpec()] * 3)
        got = []
        nodes[3].add_handler(PacketKind.DATA, got.append)
        nodes[0].add_handler(PacketKind.DATA, got.append)
        nodes[0].send(data("h0", "h3"))
        sim.run()
        assert len(got) == 1
        # And the reverse direction.
        nodes[3].send(data("h3", "h0"))
        sim.run()
        assert len(got) == 2

    def test_intermediate_destinations_routable(self):
        sim = Simulator()
        nodes = [Host(sim, "h0"), Router(sim, "r1"), Host(sim, "h2")]
        build_path(sim, nodes, [HopSpec(), HopSpec()])
        seen = []
        nodes[1].add_tap(seen.append)
        nodes[0].send(data("h0", "r1", kind=PacketKind.QUACK))
        sim.run()
        assert len(seen) == 1

    def test_asymmetric_hop(self):
        spec = HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                       bandwidth_down_bps=1e6, delay_down_s=0.05)
        assert spec.down_bandwidth() == 1e6
        assert spec.down_delay() == 0.05
        sym = HopSpec(bandwidth_bps=10e6, delay_s=0.01)
        assert sym.down_bandwidth() == 10e6
        assert sym.down_delay() == 0.01

    def test_base_rtt(self):
        sim = Simulator()
        nodes = [Host(sim, "a"), Host(sim, "b")]
        topo = build_path(sim, nodes,
                          [HopSpec(delay_s=0.01, delay_down_s=0.03)])
        assert topo.base_rtt() == pytest.approx(0.04)
        assert topo.one_way_delay() == pytest.approx(0.01)

    def test_node_named(self):
        sim = Simulator()
        nodes = [Host(sim, "a"), Host(sim, "b")]
        topo = build_path(sim, nodes, [HopSpec()])
        assert topo.node_named("b") is nodes[1]
        with pytest.raises(SimulationError):
            topo.node_named("zzz")

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            build_path(sim, [Host(sim, "a")], [])
        with pytest.raises(SimulationError):
            build_path(sim, [Host(sim, "a"), Host(sim, "b")], [])
        with pytest.raises(SimulationError):
            build_path(sim, [Host(sim, "x"), Host(sim, "x")], [HopSpec()])
