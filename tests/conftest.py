"""Shared pytest plumbing: the ``slow`` marker and ``--runslow``.

Tier-1 (the default ``pytest`` invocation) skips tests marked
``@pytest.mark.slow`` -- the multi-second end-to-end protocol scenarios
-- to keep the edit-test loop fast.  CI's full-suite job and anyone
verifying a protocol change run ``pytest --runslow`` to include them.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked @pytest.mark.slow")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow; use --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
