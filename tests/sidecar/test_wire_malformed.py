"""Deterministic malformed-input coverage for the sidecar byte formats.

Mirrors ``tests/quack/test_wire_malformed.py`` for the other two framed
formats -- control messages (:func:`decode_control`) and checkpoint
blobs (:func:`decode_checkpoint`) -- and pins the same contract: every
hostile shape raises :class:`WireFormatError` (never ``IndexError`` /
``struct.error``), the CRC catches every single-bit flip, and frames
whose CRC was *re-forged* over corrupted bytes still fail structural
validation rather than crash.
"""

import struct
import zlib

import pytest

from repro.errors import WireFormatError
from repro.quack import wire
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.protocol import (
    TRANSCRIPT_BYTES,
    ConfigMessage,
    HelloAckMessage,
    HelloMessage,
    ResetMessage,
    ResumeMessage,
    VersionSwitchMessage,
    decode_control,
    encode_control,
)
from repro.sidecar.snapshot import (
    EmitterCheckpoint,
    decode_checkpoint,
    encode_checkpoint,
)


def reforge_crc(frame: bytes) -> bytes:
    """Recompute the trailing CRC-32 so corruption survives the CRC gate."""
    return frame[:-4] + struct.pack(">I", zlib.crc32(frame[:-4]))


def control_frames() -> dict[str, bytes]:
    messages = {
        "reset": ResetMessage(flow_id="flow0", epoch=3),
        "config": ConfigMessage(flow_id="flow0", every_n=32,
                                interval_s=0.025, threshold=20),
        "resume": ResumeMessage(flow_id="flow0", epoch=2, count=100),
        "hello": HelloMessage(flow_id="flow0", min_version=1,
                              max_version=2, threshold=20, bits=32,
                              interval_us=0, features=7),
        "hello-ack": HelloAckMessage(
            flow_id="flow0", version=2, threshold=20, bits=32,
            interval_us=0, features=7,
            transcript=bytes(TRANSCRIPT_BYTES)),
        "version-switch": VersionSwitchMessage(flow_id="flow0",
                                               version=2, epoch=0),
    }
    frames = {}
    for name, message in messages.items():
        frames[f"{name}-v1"] = encode_control(message)
        frames[f"{name}-v2"] = encode_control(message, version=2,
                                              features=0x07)
    return frames


def checkpoint_blob() -> bytes:
    quack = PowerSumQuack(threshold=4, bits=16, count_bits=16)
    quack.insert_many([11, 22, 33])
    frame = wire.encode(quack, include_count=True, include_checksum=True)
    return encode_checkpoint(EmitterCheckpoint(
        flow_id="flow0", epoch=1, taken_at=0.5, frame=frame,
        wire_version=2, features=0x07))


_CONTROL_FRAMES = control_frames()


class TestControlMalformed:
    @pytest.mark.parametrize("name", sorted(_CONTROL_FRAMES))
    def test_every_truncation_raises(self, name):
        frame = _CONTROL_FRAMES[name]
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_control(frame[:cut])

    @pytest.mark.parametrize("name", sorted(_CONTROL_FRAMES))
    def test_every_single_bit_flip_is_caught(self, name):
        frame = _CONTROL_FRAMES[name]
        for position in range(len(frame) * 8):
            mangled = bytearray(frame)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_control(bytes(mangled))

    @pytest.mark.parametrize("version", (0, 3, 9, 255))
    def test_unsupported_versions_name_the_range(self, version):
        frame = bytearray(_CONTROL_FRAMES["reset-v1"])
        frame[2] = version
        with pytest.raises(WireFormatError,
                           match=rf"control frame: unsupported version "
                                 rf"{version} \(supported 1\.\.2\)"):
            decode_control(reforge_crc(bytes(frame)))

    @pytest.mark.parametrize("kind", (0, 7, 99, 255))
    def test_unknown_kinds_rejected(self, kind):
        frame = bytearray(_CONTROL_FRAMES["reset-v1"])
        frame[3] = kind
        with pytest.raises(WireFormatError, match="unknown control"):
            decode_control(reforge_crc(bytes(frame)))

    @pytest.mark.parametrize("name,expected", [
        ("reset-v1", "reset body"),
        ("reset-v2", "reset body"),
        ("config-v1", "config body"),
        ("resume-v1", "resume body"),
        ("hello-v1", "hello body"),
        ("hello-v2", "hello body"),
        ("hello-ack-v1", "hello-ack body"),
        ("version-switch-v1", "version-switch body"),
    ])
    def test_truncated_bodies_name_the_kind(self, name, expected):
        frame = _CONTROL_FRAMES[name]
        shortened = reforge_crc(frame[:-5] + frame[-4:])
        with pytest.raises(WireFormatError, match=expected):
            decode_control(shortened)

    def test_flow_id_longer_than_the_frame(self):
        frame = bytearray(_CONTROL_FRAMES["reset-v1"])
        frame[4:6] = struct.pack(">H", 0xFFFF)
        with pytest.raises(WireFormatError, match="flow id"):
            decode_control(reforge_crc(bytes(frame)))

    def test_undecodable_flow_id(self):
        message = ResetMessage(flow_id="fl", epoch=1)
        frame = bytearray(encode_control(message))
        frame[6] = 0xFF  # lone continuation byte is not UTF-8
        with pytest.raises(WireFormatError, match="flow id"):
            decode_control(reforge_crc(bytes(frame)))

    def test_garbage_is_never_a_message(self):
        for blob in (b"", b"\x00" * 40, b"\xff" * 40, b"sD" + b"\x01" * 20):
            with pytest.raises(WireFormatError):
                decode_control(blob)


class TestCheckpointMalformed:
    def test_every_truncation_raises(self):
        blob = checkpoint_blob()
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                decode_checkpoint(blob[:cut])

    def test_every_single_bit_flip_is_caught(self):
        blob = checkpoint_blob()
        for position in range(len(blob) * 8):
            mangled = bytearray(blob)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_checkpoint(bytes(mangled))

    @pytest.mark.parametrize("version", (0, 3, 7, 255))
    def test_unsupported_versions_name_the_range(self, version):
        blob = bytearray(checkpoint_blob())
        blob[2] = version
        with pytest.raises(WireFormatError,
                           match=rf"checkpoint: unsupported version "
                                 rf"{version} \(supported 1\.\.2\)"):
            decode_checkpoint(reforge_crc(bytes(blob)))

    def test_bad_magic(self):
        blob = bytearray(checkpoint_blob())
        blob[0] = ord("x")
        with pytest.raises(WireFormatError, match="magic"):
            decode_checkpoint(reforge_crc(bytes(blob)))

    def test_frame_length_lies(self):
        blob = checkpoint_blob()
        mangled = bytearray(blob)
        # The frame-length u32 sits after flow id (5 bytes), epoch (4),
        # taken_at (8), and the v2 session bytes (2).
        offset = 5 + len("flow0") + 12 + 2
        mangled[offset:offset + 4] = struct.pack(">I", 9999)
        with pytest.raises(WireFormatError, match="stated"):
            decode_checkpoint(reforge_crc(bytes(mangled)))

    def test_embedded_frame_corruption_is_caught_on_use(self):
        # A checkpoint whose own CRC was re-forged over a corrupted
        # embedded quACK frame parses, but the frame's inner CRC fails
        # when the restore path deserializes the accumulator.
        blob = bytearray(checkpoint_blob())
        blob[-10] ^= 0x40
        checkpoint = decode_checkpoint(reforge_crc(bytes(blob)))
        with pytest.raises(WireFormatError):
            checkpoint.quack()

    def test_garbage_is_never_a_checkpoint(self):
        for blob in (b"", b"\x00" * 40, b"\xff" * 40, b"sJ" + b"\x01" * 30):
            with pytest.raises(WireFormatError):
                decode_checkpoint(blob)
