"""Tests for the epoch/reset protocol (paper Section 3.3).

"If the number of missing packets exceeds the threshold, the sender and
receiver must reset the connection if they wish to use the quACK."  The
implementation generalizes this to any unrecoverable decode divergence:
drain, restart the cumulative state under a new epoch, and discard stale
snapshots.  These tests poison a live session on purpose and watch it
heal.
"""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.sidecar.agents import ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import PacketCountFrequency
from repro.transport.connection import ReceiverConnection, SenderConnection

SETTLE = 0.1


def build_assisted(total=1460 * 400, reset_after=2):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    # Slow enough that the transfer (~585 KB) outlives a mid-flight reset.
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=5e6, delay_s=0.005),
                HopSpec(bandwidth_bps=5e6, delay_s=0.005)])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total)
    tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                          flow_id="flow0", policy=PacketCountFrequency(4),
                          threshold=16)
    sidecar = ServerSidecar(sim, sender, threshold=16, grace=2,
                            apply_losses=False,
                            reset_after_failures=reset_after,
                            settle_time=SETTLE)
    return sim, sender, receiver, tap, sidecar


def run(sim, sender, receiver, deadline=60.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.25, deadline))
        if sender.complete and receiver.complete:
            break
        if sim.peek_next_time() is None:
            break


# Poisoning, used throughout: inserting a ghost identifier into the
# consumer's cumulative sums makes every subsequent delta contain a
# "missing" identifier that is in no log -- the same class of divergence
# a wrongly-declared loss causes -- so every decode fails until the
# session resets.


class TestRecovery:
    def test_session_heals_after_reset(self):
        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.1)
        releases_before = sender.stats.sidecar_releases
        assert releases_before > 0
        # Poison with a ghost entry nothing will ever acknowledge.
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert receiver.complete
        assert sidecar.stats.resets_initiated >= 1
        assert tap.resets_applied >= 1
        assert tap.epoch == sidecar.epoch
        # The session worked again after the reset: more window credits
        # landed than had before the poisoning.
        assert sender.stats.sidecar_releases > releases_before
        # And failures stopped accumulating once healed.
        assert sidecar._consecutive_failures < 2

    def test_without_reset_the_session_stays_broken(self):
        sim, sender, receiver, tap, sidecar = build_assisted(reset_after=None)
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert receiver.complete  # the transport never depended on it
        assert sidecar.stats.resets_initiated == 0
        assert sidecar.stats.decode_failures > 5  # every quACK failed

    def test_transfer_completes_despite_pause(self):
        """The reset pauses the sender twice for settle_time; the
        transfer must simply take a bit longer, not wedge."""
        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert sender.complete and receiver.complete
        assert receiver.stats.bytes_received == 1460 * 400

    def test_stale_epoch_quacks_discarded_and_answered(self):
        """A snapshot from the abandoned epoch arriving after the reset
        is discarded, and the emitter is reminded with a fresh reset (so
        a lost ResetMessage cannot wedge the handshake)."""
        from repro.quack.power_sum import PowerSumQuack
        from repro.sidecar.protocol import quack_packet

        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert sidecar.epoch >= 1
        # Replay an epoch-0 snapshot at the server.
        stale = PowerSumQuack(16)
        stale.insert(4242)
        releases = sender.stats.sidecar_releases
        sidecar.sender.host.receive(quack_packet(
            "proxy", "server", stale, "flow0", sim.now, epoch=0))
        assert sidecar.stats.stale_epoch_quacks >= 1
        assert sender.stats.sidecar_releases == releases  # not processed
        sim.run(until=sim.now + 1.0)
        # The reminder reset reached the emitter (already at that epoch).
        assert tap.epoch == sidecar.epoch

    def test_multiple_poisonings_multiple_epochs(self):
        sim, sender, receiver, tap, sidecar = build_assisted(
            total=1460 * 800)
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        sim.run(until=2.0)
        first_epoch = sidecar.epoch
        assert first_epoch >= 1
        sidecar.consumer.mine.insert(0xFEEDFACE)
        run(sim, sender, receiver)
        assert receiver.complete
        assert sidecar.epoch > first_epoch
        assert tap.epoch == sidecar.epoch


class TestEpochPlumbing:
    def test_emitter_ignores_stale_and_duplicate_resets(self):
        sim = Simulator()
        server = Host(sim, "server")
        proxy = Router(sim, "proxy")
        client = Host(sim, "client")
        build_path(sim, [server, proxy, client], [HopSpec(), HopSpec()])
        tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                              flow_id="flow0",
                              policy=PacketCountFrequency(2))
        tap._apply_reset(2)
        assert tap.epoch == 2 and tap.resets_applied == 1
        tap._apply_reset(2)  # duplicate
        tap._apply_reset(1)  # stale
        assert tap.epoch == 2 and tap.resets_applied == 1
        tap._apply_reset(5)
        assert tap.epoch == 5 and tap.resets_applied == 2

    def test_reset_clears_the_emitter_accumulator(self):
        sim = Simulator()
        server = Host(sim, "server")
        proxy = Router(sim, "proxy")
        client = Host(sim, "client")
        build_path(sim, [server, proxy, client], [HopSpec(), HopSpec()])
        tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                              flow_id="flow0",
                              policy=PacketCountFrequency(2))
        tap.emitter.observe(123, 0.0)
        assert tap.emitter.quack.count == 1
        tap._apply_reset(1)
        assert tap.emitter.quack.count == 0
