"""Tests for sidecar discovery (extension X2)."""

import random

import pytest

from repro.netsim.core import Simulator
from repro.netsim.loss import BernoulliLoss, DeterministicLoss
from repro.netsim.node import Host, Router
from repro.netsim.packet import PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.sidecar.discovery import (
    PROTOCOL_ACK_REDUCTION,
    PROTOCOL_CC_DIVISION,
    DiscoveringProxy,
    DiscoveringServerSidecar,
    SidecarOffer,
)
from repro.transport.connection import ReceiverConnection, SenderConnection


def build(total=1460 * 60, loss_down=None):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.005,
                        loss_down=loss_down),
                HopSpec(bandwidth_bps=20e6, delay_s=0.005)])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total)
    return sim, server, proxy, client, sender, receiver


def run_to_completion(sim, sender, receiver, deadline=30.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if sender.complete and receiver.complete:
            break
        if sim.peek_next_time() is None:
            break


class TestHandshake:
    def test_offer_accept_then_quacks_flow(self):
        sim, server, proxy, client, sender, receiver = build()
        proxy_agent = DiscoveringProxy(sim, proxy)
        host_agent = DiscoveringServerSidecar(sim, sender)
        sender.start()
        run_to_completion(sim, sender, receiver)
        assert receiver.complete
        assert host_agent.accepted_from == "proxy"
        flow = proxy_agent.flows[sender.flow_id]
        assert flow.accepted
        assert flow.quacks_sent > 0
        assert host_agent.sidecar is not None
        assert host_agent.sidecar.stats.quacks_received > 0
        assert host_agent.sidecar.stats.decode_failures == 0
        assert sender.stats.sidecar_releases > 0

    def test_host_without_library_stays_unassisted(self):
        sim, server, proxy, client, sender, receiver = build()
        proxy_agent = DiscoveringProxy(sim, proxy, max_offers=3)
        # The host has no discovery library: sink control packets like an
        # application that ignores unknown datagrams.
        server.add_handler(PacketKind.CONTROL, lambda p: None)
        sender.start()
        run_to_completion(sim, sender, receiver)
        assert receiver.complete
        flow = proxy_agent.flows[sender.flow_id]
        assert not flow.accepted
        assert flow.quacks_sent == 0
        assert flow.offers_sent == 3  # offered, gave up

    def test_protocol_mismatch_declined_by_silence(self):
        sim, server, proxy, client, sender, receiver = build()
        proxy_agent = DiscoveringProxy(
            sim, proxy, protocols=(PROTOCOL_CC_DIVISION,), max_offers=2)
        host_agent = DiscoveringServerSidecar(
            sim, sender, accept_protocols=(PROTOCOL_ACK_REDUCTION,))
        sender.start()
        run_to_completion(sim, sender, receiver)
        assert receiver.complete
        assert host_agent.offers_seen > 0
        assert host_agent.accepted_from is None
        assert not proxy_agent.flows[sender.flow_id].accepted

    def test_lost_offers_are_retried(self):
        # Drop the first two control packets toward the server.
        sim, server, proxy, client, sender, receiver = build(
            loss_down=DeterministicLoss({0, 1}))
        proxy_agent = DiscoveringProxy(sim, proxy, offer_interval_s=0.05)
        host_agent = DiscoveringServerSidecar(sim, sender)
        sender.start()
        run_to_completion(sim, sender, receiver)
        assert receiver.complete
        flow = proxy_agent.flows[sender.flow_id]
        assert flow.offers_sent >= 2
        # Some quACKs or ACKs were also on that lossy reverse path; the
        # handshake must still have landed eventually.
        assert host_agent.accepted_from == "proxy" or flow.offers_sent >= 3

    def test_negotiated_parameters_are_used(self):
        sim, server, proxy, client, sender, receiver = build()
        proxy_agent = DiscoveringProxy(sim, proxy, threshold=12, bits=16)
        host_agent = DiscoveringServerSidecar(sim, sender, quack_every=4)
        sender.start()
        run_to_completion(sim, sender, receiver)
        flow = proxy_agent.flows[sender.flow_id]
        assert flow.accepted
        assert flow.emitter.quack.threshold == 12
        assert flow.emitter.quack.bits == 16
        assert flow.emitter.policy.every_n == 4
        assert host_agent.sidecar.consumer.threshold == 12

    def test_duplicate_accepts_ignored(self):
        sim, server, proxy, client, sender, receiver = build()
        proxy_agent = DiscoveringProxy(sim, proxy, offer_interval_s=0.02,
                                       max_offers=5)
        host_agent = DiscoveringServerSidecar(sim, sender)
        sender.start()
        run_to_completion(sim, sender, receiver)
        # Several offers -> several accepts; exactly one sidecar instance.
        assert host_agent.offers_seen >= 1
        assert host_agent.sidecar is not None
        assert proxy_agent.flows[sender.flow_id].accepted
