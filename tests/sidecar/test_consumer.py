"""Tests for the sender-side sidecar session state (repro.sidecar.consumer).

The receiver side is simulated with a plain PowerSumQuack accumulating
the identifiers that "arrived"; the consumer under test decodes its
snapshots exactly as a sidecar would (paper, Sections 3.2-3.3).
"""

import pytest

from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.consumer import QuackConsumer

P32 = 4_294_967_291


def receiver(threshold=5):
    return PowerSumQuack(threshold)


def ids(*values):
    return list(values)


class TestBasicDecoding:
    def test_all_received(self):
        consumer = QuackConsumer(threshold=5)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102, 103)):
            consumer.record_send(identifier, f"pkt{i}", now=float(i))
            theirs.insert(identifier)
        feedback = consumer.on_quack(theirs, now=3.0)
        assert feedback.ok
        assert feedback.received == ["pkt0", "pkt1", "pkt2"]
        assert feedback.lost == [] and feedback.suspected == []
        assert consumer.outstanding == 0

    def test_middle_loss_declared_immediately_with_grace_one(self):
        consumer = QuackConsumer(threshold=5, grace=1)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102, 103)):
            consumer.record_send(identifier, i, now=float(i))
            if identifier != 102:
                theirs.insert(identifier)
        feedback = consumer.on_quack(theirs, now=3.0)
        assert feedback.ok
        assert feedback.lost == [1]
        assert feedback.received == [0, 2]
        assert feedback.num_missing == 1
        assert consumer.outstanding == 0
        assert consumer.stats.declared_lost == 1

    def test_grace_two_requires_two_strikes(self):
        consumer = QuackConsumer(threshold=5, grace=2)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102, 103)):
            consumer.record_send(identifier, i, now=float(i))
            if identifier != 102:
                theirs.insert(identifier)
        first = consumer.on_quack(theirs, now=3.0)
        assert first.suspected == [1] and first.lost == []
        assert consumer.outstanding == 1  # the suspect stays logged
        # Receiver gets more traffic; the suspect is still missing.
        consumer.record_send(104, 3, now=4.0)
        theirs.insert(104)
        second = consumer.on_quack(theirs, now=5.0)
        assert second.lost == [1]
        assert second.received == [3]
        assert consumer.outstanding == 0

    def test_empty_quack_and_log(self):
        consumer = QuackConsumer(threshold=5)
        feedback = consumer.on_quack(receiver(), now=0.0)
        assert feedback.ok
        assert feedback.received == [] and feedback.lost == []


class TestTrailingInTransit:
    def test_trailing_missing_treated_as_in_transit(self):
        consumer = QuackConsumer(threshold=5, grace=1)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102, 103, 104)):
            consumer.record_send(identifier, i, now=float(i))
        # Only the first two arrived; 103/104 are still flying.
        theirs.insert(101)
        theirs.insert(102)
        feedback = consumer.on_quack(theirs, now=4.0)
        assert feedback.ok
        assert feedback.lost == []
        assert feedback.in_transit == 2
        assert feedback.received == [0, 1]
        assert consumer.outstanding == 2

    def test_interior_loss_before_trailing_run_is_still_lost(self):
        consumer = QuackConsumer(threshold=5, grace=1)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102, 103, 104)):
            consumer.record_send(identifier, i, now=float(i))
        theirs.insert(101)
        theirs.insert(103)  # 102 lost; 104 in flight
        feedback = consumer.on_quack(theirs, now=4.0)
        assert feedback.lost == [1]
        assert feedback.in_transit == 1
        assert feedback.received == [0, 2]

    def test_trailing_rule_can_be_disabled(self):
        consumer = QuackConsumer(threshold=5, grace=1,
                                 trailing_in_transit=False)
        theirs = receiver()
        for i, identifier in enumerate(ids(101, 102)):
            consumer.record_send(identifier, i, now=float(i))
        theirs.insert(101)
        feedback = consumer.on_quack(theirs, now=2.0)
        assert feedback.lost == [1]
        assert feedback.in_transit == 0


class TestInFlightTruncation:
    def test_truncates_when_m_exceeds_threshold(self):
        """Section 3.3: with m > t, decode the log prefix and treat the
        newest (m - t) entries as in transit."""
        consumer = QuackConsumer(threshold=3, grace=1)
        theirs = receiver(threshold=3)
        identifiers = [1000 + i for i in range(10)]
        for i, identifier in enumerate(identifiers):
            consumer.record_send(identifier, i, now=float(i))
        # Receiver saw the first 4 packets except #2 (which is lost);
        # packets 4..9 are still in flight -> m = 7 > t = 3.
        for i in (0, 1, 3):
            theirs.insert(identifiers[i])
        feedback = consumer.on_quack(theirs, now=10.0)
        assert feedback.ok
        assert feedback.lost == [2]
        assert feedback.received == [0, 1, 3]
        # 4 truncated + any trailing remainder treated as in transit.
        assert feedback.in_transit >= 4
        assert consumer.outstanding == 6  # 4..9 still unresolved

    def test_everything_in_flight(self):
        consumer = QuackConsumer(threshold=2, grace=1)
        theirs = receiver(threshold=2)
        for i in range(8):
            consumer.record_send(2000 + i, i, now=float(i))
        feedback = consumer.on_quack(theirs, now=9.0)  # receiver saw nothing
        assert feedback.ok
        assert feedback.lost == [] and feedback.received == []
        assert feedback.in_transit == 8
        assert consumer.outstanding == 8


class TestCollisions:
    def test_partial_collision_group_reported_indeterminate(self):
        a, b = 4, P32 + 4  # distinct raw identifiers, same residue
        consumer = QuackConsumer(threshold=4, grace=1)
        theirs = receiver(threshold=4)
        consumer.record_send(a, "A", 0.0)
        consumer.record_send(b, "B", 1.0)
        consumer.record_send(77, "C", 2.0)
        theirs.insert(a)      # one of the colliding pair arrived
        theirs.insert(77)
        feedback = consumer.on_quack(theirs, now=3.0)
        assert feedback.ok
        assert set(feedback.indeterminate) == {"A", "B"}
        assert feedback.lost == []
        assert feedback.received == ["C"]
        # Ambiguous entries stay in the log (no strikes).
        assert consumer.outstanding == 2


class TestFailureModes:
    def test_receiver_ahead_of_log_is_inconsistent(self):
        consumer = QuackConsumer(threshold=4)
        theirs = receiver(threshold=4)
        theirs.insert(999)  # receiver saw something never logged
        feedback = consumer.on_quack(theirs, now=0.0)
        assert feedback.status is DecodeStatus.INCONSISTENT
        assert consumer.stats.quacks_failed == 1

    def test_false_loss_declaration_poisons_the_session(self):
        """Declaring a packet lost that later arrives makes subsequent
        decodes inconsistent -- the Section 3.3 reordering hazard."""
        consumer = QuackConsumer(threshold=4, grace=1,
                                 trailing_in_transit=False)
        theirs = receiver(threshold=4)
        consumer.record_send(111, "x", 0.0)
        consumer.on_quack(theirs.copy(), now=1.0)  # declared lost
        assert consumer.stats.declared_lost == 1
        theirs.insert(111)  # ... but it arrives after all
        consumer.record_send(222, "y", 2.0)
        theirs.insert(222)
        feedback = consumer.on_quack(theirs, now=3.0)
        assert feedback.status is DecodeStatus.INCONSISTENT

    def test_failed_decode_leaves_state_untouched(self):
        consumer = QuackConsumer(threshold=4)
        theirs = receiver(threshold=4)
        consumer.record_send(5, "m", 0.0)
        bogus = theirs.copy()
        bogus.insert(12345)
        before_log = list(consumer.log)
        before_sums = consumer.mine.power_sums
        feedback = consumer.on_quack(bogus, now=1.0)
        assert not feedback.ok
        assert consumer.log == before_log
        assert consumer.mine.power_sums == before_sums

    def test_grace_validation(self):
        with pytest.raises(ValueError):
            QuackConsumer(threshold=4, grace=0)


class TestRecoveryFlows:
    def test_threshold_reset_after_losses(self):
        """Section 3.3 'Resetting the threshold': declared losses leave the
        sums, so the next quACK's threshold budget is fresh."""
        consumer = QuackConsumer(threshold=2, grace=1)
        theirs = receiver(threshold=2)
        batch1 = [10, 11, 12, 13]
        for i, identifier in enumerate(batch1):
            consumer.record_send(identifier, i, now=float(i))
        for identifier in (10, 13):
            theirs.insert(identifier)
        # 2 missing = t: decodes, both declared lost.
        feedback = consumer.on_quack(theirs, now=4.0)
        assert sorted(feedback.lost) == [1, 2]
        # Next round: 2 more losses; without the reset this would exceed t.
        batch2 = [20, 21, 22]
        for i, identifier in enumerate(batch2):
            consumer.record_send(identifier, 10 + i, now=5.0 + i)
        theirs.insert(21)
        feedback2 = consumer.on_quack(theirs, now=9.0)
        assert feedback2.ok
        # 20 (meta 10) is interior-missing -> lost; 22 (meta 12) trails ->
        # in transit under the trailing rule.
        assert feedback2.lost == [10]
        assert feedback2.in_transit == 1
        assert feedback2.received == [11]

    def test_dropped_quack_resilience(self):
        consumer = QuackConsumer(threshold=4, grace=1)
        theirs = receiver(threshold=4)
        for i in range(6):
            consumer.record_send(300 + i, i, now=float(i))
            theirs.insert(300 + i)
            if i == 2:
                _dropped = theirs.copy()  # this snapshot never arrives
        feedback = consumer.on_quack(theirs, now=6.0)
        assert feedback.ok
        assert feedback.received == list(range(6))

    def test_retransmission_relogs_same_identifier(self):
        consumer = QuackConsumer(threshold=4, grace=1)
        theirs = receiver(threshold=4)
        consumer.record_send(500, "orig", 0.0)
        consumer.record_send(501, "other", 0.5)
        theirs.insert(501)
        feedback = consumer.on_quack(theirs, now=1.0)
        assert feedback.lost == ["orig"]
        # Retransmit: same identifier goes back into the log and sums.
        consumer.record_send(500, "retx", 2.0)
        theirs.insert(500)  # this time it arrives
        feedback2 = consumer.on_quack(theirs, now=3.0)
        assert feedback2.ok
        assert feedback2.received == ["retx"]


class TestMaintenance:
    def test_expire_older_than(self):
        consumer = QuackConsumer(threshold=4)
        consumer.record_send(1, "old", now=0.0)
        consumer.record_send(2, "new", now=10.0)
        expired = consumer.expire_older_than(now=11.0, age=5.0)
        assert expired == ["old"]
        assert consumer.outstanding == 1
        # The expiry also removed the identifier from the sums: a quACK
        # covering only "new" must still decode.
        theirs = receiver(threshold=4)
        theirs.insert(2)
        assert consumer.on_quack(theirs, now=12.0).ok

    def test_evict_oldest(self):
        consumer = QuackConsumer(threshold=4)
        assert consumer.evict_oldest() is None
        consumer.record_send(1, "a", 0.0)
        consumer.record_send(2, "b", 1.0)
        assert consumer.evict_oldest() == "a"
        assert consumer.outstanding == 1

    def test_reset(self):
        consumer = QuackConsumer(threshold=4)
        consumer.record_send(1, "a", 0.0)
        consumer.reset()
        assert consumer.outstanding == 0
        assert consumer.mine.count == 0
        assert consumer.mine.power_sums == (0, 0, 0, 0)

    def test_stats_accumulate(self):
        consumer = QuackConsumer(threshold=4, grace=1)
        theirs = receiver(threshold=4)
        consumer.record_send(7, "a", 0.0)
        theirs.insert(7)
        consumer.on_quack(theirs, 1.0)
        assert consumer.stats.sent_logged == 1
        assert consumer.stats.quacks_processed == 1
        assert consumer.stats.confirmed_received == 1
