"""Unit tests for the CC-division pacing proxy internals."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.cc_division import PacingProxy
from repro.sidecar.protocol import quack_packet
from repro.transport.cc.fixed import FixedWindow


def build_proxy(buffer_packets=4, controller=None):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client], [HopSpec(), HopSpec()])
    agent = PacingProxy(sim, proxy, server="server", client="client",
                        flow_id="f", threshold=8,
                        buffer_packets=buffer_packets,
                        controller=controller)
    delivered = []
    client.add_handler(PacketKind.DATA, delivered.append)
    server.add_handler(PacketKind.QUACK, lambda p: None)
    return sim, server, proxy, client, agent, delivered


def data_packet(identifier, flow_id="f"):
    return Packet(src="server", dst="client", size_bytes=1500,
                  kind=PacketKind.DATA, identifier=identifier,
                  flow_id=flow_id)


class TestCustody:
    def test_takes_custody_of_matching_data(self):
        sim, server, proxy, client, agent, delivered = build_proxy()
        server.send(data_packet(1))
        sim.run(until=1)
        assert agent.stats.taken_custody == 1
        assert agent.stats.forwarded == 1
        assert len(delivered) == 1

    def test_other_flows_pass_through_untouched(self):
        sim, server, proxy, client, agent, delivered = build_proxy()
        server.send(data_packet(1, flow_id="other"))
        sim.run(until=1)
        assert agent.stats.taken_custody == 0
        assert len(delivered) == 1

    def test_acks_pass_through(self):
        sim, server, proxy, client, agent, delivered = build_proxy()
        acks = []
        server.add_handler(PacketKind.ACK, acks.append)
        client.send(Packet(src="client", dst="server", size_bytes=52,
                           kind=PacketKind.ACK, flow_id="f"))
        sim.run(until=1)
        assert len(acks) == 1
        assert agent.stats.taken_custody == 0

    def test_buffer_overflow_drops(self):
        # A window of 1 packet wedges the drain; the 4-packet buffer then
        # overflows.
        sim, server, proxy, client, agent, delivered = build_proxy(
            buffer_packets=4, controller=FixedWindow(1))
        for i in range(8):
            server.send(data_packet(100 + i))
        sim.run(until=0.2)
        assert agent.stats.buffer_drops > 0
        assert agent.stats.max_buffer_depth <= 4

    def test_window_gates_forwarding(self):
        sim, server, proxy, client, agent, delivered = build_proxy(
            buffer_packets=64, controller=FixedWindow(2))
        for i in range(6):
            server.send(data_packet(200 + i))
        sim.run(until=0.2)
        # Only 2 packets' worth of window, no quACK feedback yet.
        assert agent.stats.forwarded == 2
        assert agent.buffer_depth == 4


class TestQuackFeedback:
    def test_client_quack_opens_the_window(self):
        sim, server, proxy, client, agent, delivered = build_proxy(
            buffer_packets=64, controller=FixedWindow(2))
        for i in range(4):
            server.send(data_packet(300 + i))
        sim.run(until=0.1)
        assert agent.stats.forwarded == 2
        # The client quACKs the two forwarded packets.
        receiver_quack = PowerSumQuack(8)
        for i in range(2):
            receiver_quack.insert(300 + i)
        client.send(quack_packet("client", "proxy", receiver_quack, "f",
                                 sim.now))
        sim.run(until=0.3)
        assert agent.stats.quacks_from_client == 1
        assert agent.stats.decode_failures == 0
        assert agent.stats.forwarded == 4  # window freed, rest drained

    def test_expire_sweep_releases_stuck_window(self):
        sim, server, proxy, client, agent, delivered = build_proxy(
            buffer_packets=64, controller=FixedWindow(2))
        agent.expire_age = 0.3
        for i in range(4):
            server.send(data_packet(400 + i))
        sim.run(until=0.1)
        assert agent.stats.forwarded == 2
        # No quACKs ever arrive; the sweep must eventually give up on the
        # unconfirmed packets and drain the rest.
        sim.run(until=3.0)
        assert agent.stats.forwarded == 4
