"""Sidecar resilience: retry/backoff, restart detection, health ladder.

The hardening layer this file covers exists because a sidecar must be
*strictly optional* assistance (paper, Sections 1-2): every failure mode
of the sidecar channel -- lost handshakes, wiped middleboxes, corrupted
datagrams, silence -- must degrade the assistance, never the transport.
"""

import dataclasses

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.agents import HostEmitterAgent, ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import PacketCountFrequency
from repro.sidecar.health import HealthConfig, HealthMonitor, HealthState
from repro.sidecar.protocol import (
    CorruptFrame,
    QuackMessage,
    ResetMessage,
    quack_packet,
    reset_packet,
)
from repro.transport.connection import ReceiverConnection, SenderConnection

SETTLE = 0.1


def build_assisted(total=1460 * 400, reset_after=2, health=None,
                   divide_cc=False):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=5e6, delay_s=0.005),
                HopSpec(bandwidth_bps=5e6, delay_s=0.005)])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total,
                              cc_from_acks=not divide_cc)
    tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                          flow_id="flow0", policy=PacketCountFrequency(4),
                          threshold=16)
    sidecar = ServerSidecar(sim, sender, threshold=16, grace=2,
                            apply_losses=False,
                            reset_after_failures=reset_after,
                            settle_time=SETTLE, health=health)
    return sim, sender, receiver, tap, sidecar


def run(sim, sender, receiver, deadline=60.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.25, deadline))
        if sender.complete and receiver.complete:
            break
        if sim.peek_next_time() is None:
            break


class TestStaleResets:
    """Satellite: out-of-order ResetMessage delivery must be harmless."""

    def make_tap(self):
        sim = Simulator()
        server = Host(sim, "server")
        proxy = Router(sim, "proxy")
        client = Host(sim, "client")
        build_path(sim, [server, proxy, client], [HopSpec(), HopSpec()])
        return sim, proxy, ProxyEmitterTap(
            sim, proxy, server="server", client="client", flow_id="flow0",
            policy=PacketCountFrequency(2))

    def test_older_epoch_reset_is_counted_not_applied(self):
        sim, proxy, tap = self.make_tap()
        tap._apply_reset(3)
        assert tap.epoch == 3 and tap.resets_applied == 1
        tap.emitter.observe(42, 0.0)
        tap._apply_reset(1)  # delayed duplicate of an old handshake
        assert tap.epoch == 3
        assert tap.stale_resets == 1
        assert tap.emitter.quack.count == 1  # accumulator untouched

    def test_same_epoch_reset_is_idempotent_not_stale(self):
        sim, proxy, tap = self.make_tap()
        tap._apply_reset(2)
        tap._apply_reset(2)
        assert tap.resets_applied == 1
        assert tap.stale_resets == 0  # a duplicate is not "stale"

    def test_out_of_order_delivery_over_the_wire(self):
        """Two resets delivered newest-first: the session ends on the
        newest epoch and counts exactly one stale delivery."""
        sim, proxy, tap = self.make_tap()
        newer = reset_packet("server", "proxy",
                             ResetMessage(flow_id="flow0", epoch=2), 0.0)
        older = reset_packet("server", "proxy",
                             ResetMessage(flow_id="flow0", epoch=1), 0.0)
        proxy.receive(newer)
        proxy.receive(older)
        assert tap.epoch == 2
        assert tap.resets_applied == 1
        assert tap.stale_resets == 1
        assert tap.fault_counters()["stale_resets"] == 1

    def test_host_emitter_agent_counts_stale_resets_too(self):
        sim = Simulator()
        server = Host(sim, "server")
        client = Host(sim, "client")
        build_path(sim, [server, client], [HopSpec()])
        agent = HostEmitterAgent(sim, client, peer="server",
                                 flow_id="flow0",
                                 policy=PacketCountFrequency(2))
        agent._apply_reset(5)
        agent._apply_reset(4)
        assert agent.epoch == 5
        assert agent.stale_resets == 1


class TestCorruptFrameCounting:
    def test_emitter_counts_corrupt_control_frames(self):
        sim = Simulator()
        server = Host(sim, "server")
        proxy = Router(sim, "proxy")
        client = Host(sim, "client")
        build_path(sim, [server, proxy, client], [HopSpec(), HopSpec()])
        tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                              flow_id="flow0",
                              policy=PacketCountFrequency(2))
        mangled = Packet(src="server", dst="proxy", size_bytes=40,
                         kind=PacketKind.CONTROL, flow_id="flow0",
                         payload=CorruptFrame(frame=b"\x00" * 12,
                                              flow_id="flow0"))
        proxy.receive(mangled)
        assert tap.corrupt_frames == 1
        assert tap.epoch == 0  # nothing was applied

    def test_server_classifies_checksum_failure_as_wire_error(self):
        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.05)
        snapshot = PowerSumQuack(16)
        snapshot.insert(1234)
        pkt = quack_packet("proxy", "server", snapshot, "flow0", sim.now)
        bad = dataclasses.replace(
            pkt, payload=dataclasses.replace(
                pkt.payload,
                frame=pkt.payload.frame[:-1]
                + bytes([pkt.payload.frame[-1] ^ 0xFF])))
        failures_before = sidecar._consecutive_failures
        sidecar.sender.host.receive(bad)
        assert sidecar.stats.wire_errors == 1
        assert sidecar.stats.decode_failures >= 1
        # Corruption must not push the session toward a reset: a reset
        # cannot fix a noisy channel.
        assert sidecar._consecutive_failures == failures_before


class TestResetRetry:
    def test_lost_reset_is_retried_with_backoff(self):
        """Drop every CONTROL packet for a while: the epoch must still
        converge once the channel heals, via the retry timer."""
        sim, sender, receiver, tap, sidecar = build_assisted()
        proxy = tap.router
        # Interpose on the server->proxy link to swallow resets.
        link = sender.host.links["proxy"]
        original_deliver = link.deliver
        blackhole = {"on": True, "swallowed": 0}

        def deliver(packet):
            if blackhole["on"] and packet.kind is PacketKind.CONTROL:
                blackhole["swallowed"] += 1
                return
            original_deliver(packet)

        link.deliver = deliver
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)  # poison -> reset
        sim.run(until=1.0)
        assert sidecar.epoch == 1
        assert blackhole["swallowed"] >= 1
        assert tap.epoch == 0  # the emitter never heard the reset
        assert sidecar.stats.reset_retries >= 1
        blackhole["on"] = False  # channel heals
        run(sim, sender, receiver)
        sim.run(until=sim.now + 2.0)
        assert tap.epoch == sidecar.epoch  # retry converged the handshake
        assert receiver.complete

    def test_backoff_delay_doubles_to_cap(self):
        sim, sender, receiver, tap, sidecar = build_assisted()
        sidecar._peer = "proxy"
        sidecar._epoch_confirmed = False
        sidecar._arm_retry(initial=True)
        assert sidecar._retry_delay == pytest.approx(2 * SETTLE)
        sidecar._retry_reset()
        assert sidecar._retry_delay == pytest.approx(4 * SETTLE)
        for _ in range(8):
            sidecar._retry_reset()
        assert sidecar._retry_delay == pytest.approx(sidecar.reset_retry_cap)

    def test_current_epoch_quack_cancels_retry(self):
        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert sidecar.epoch >= 1
        assert sidecar._epoch_confirmed
        assert sidecar._retry_timer.next_fire_time is None


class TestRestartDetection:
    def test_count_regression_triggers_implicit_reset(self):
        sim, sender, receiver, tap, sidecar = build_assisted(
            total=1460 * 800)
        sender.start()
        sim.run(until=0.5)
        assert tap.emitter.quack.count > sidecar.restart_margin
        tap.crash_restart()
        assert tap.restarts == 1
        run(sim, sender, receiver)
        assert receiver.complete
        assert sidecar.stats.restarts_detected >= 1
        assert sidecar.stats.resets_initiated >= 1
        sim.run(until=sim.now + 2.0)
        assert tap.epoch == sidecar.epoch

    def test_small_regression_is_reordering_not_restart(self):
        """A snapshot that lags by a few packets (datagram reordering)
        must not be mistaken for a crash."""
        sim, sender, receiver, tap, sidecar = build_assisted()
        sender.start()
        sim.run(until=0.3)
        assert sidecar._last_emitter_count is not None
        lagging = sidecar._last_emitter_count - 2  # tiny regression
        assert lagging > 0
        assert not sidecar._detect_restart(lagging)
        assert sidecar.stats.restarts_detected == 0


class TestHealthLadderUnit:
    def test_escalation_and_gating(self):
        monitor = HealthMonitor(HealthConfig(degrade_after=2,
                                             e2e_only_after=4,
                                             stale_after=1.0,
                                             probation=0.5))
        assert monitor.allow_receipts and monitor.allow_losses
        monitor.on_failure(0.1)
        assert monitor.state is HealthState.HEALTHY
        monitor.on_failure(0.2)
        assert monitor.state is HealthState.DEGRADED
        assert monitor.allow_receipts and not monitor.allow_losses
        monitor.on_failure(0.3)
        monitor.on_failure(0.4)
        assert monitor.state is HealthState.E2E_ONLY
        assert not monitor.allow_receipts and not monitor.allow_losses

    def test_recovery_needs_a_clean_probation(self):
        monitor = HealthMonitor(HealthConfig(probation=0.5))
        for t in range(5):
            monitor.on_failure(float(t))
        assert monitor.state is HealthState.E2E_ONLY
        monitor.on_good_quack(10.0)
        assert monitor.state is HealthState.RECOVERING
        monitor.on_good_quack(10.2)  # probation not yet served
        assert monitor.state is HealthState.RECOVERING
        monitor.on_good_quack(10.6)
        assert monitor.state is HealthState.HEALTHY
        assert monitor.stats.recoveries == 1

    def test_failure_during_probation_falls_back(self):
        monitor = HealthMonitor(HealthConfig(probation=0.5))
        for t in range(5):
            monitor.on_failure(float(t))
        monitor.on_good_quack(10.0)
        monitor.on_failure(10.1)
        assert monitor.state is HealthState.E2E_ONLY

    def test_staleness(self):
        monitor = HealthMonitor(HealthConfig(stale_after=1.0))
        assert monitor.is_stale(1.0)  # never heard a quACK
        monitor.on_good_quack(1.0)
        assert not monitor.is_stale(1.5)
        assert monitor.is_stale(2.0)
        monitor.on_stale(2.0)
        assert monitor.state is HealthState.E2E_ONLY

    def test_transition_audit_trail(self):
        monitor = HealthMonitor(HealthConfig(degrade_after=1,
                                             e2e_only_after=2))
        monitor.on_failure(0.5)
        monitor.on_failure(0.7)
        trail = monitor.stats.transitions
        assert [(t.old, t.new) for t in trail] == [
            (HealthState.HEALTHY, HealthState.DEGRADED),
            (HealthState.DEGRADED, HealthState.E2E_ONLY),
        ]
        assert trail[0].time == 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(degrade_after=5, e2e_only_after=2)
        with pytest.raises(ValueError):
            HealthConfig(stale_after=0.0)


class TestHealthIntegration:
    HEALTH = HealthConfig(degrade_after=2, e2e_only_after=5,
                          stale_after=0.25, probation=0.25)

    def test_receipts_suppressed_in_e2e_only(self):
        sim, sender, receiver, tap, sidecar = build_assisted(
            reset_after=None, health=self.HEALTH)
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)  # every decode now fails
        run(sim, sender, receiver)
        assert receiver.complete  # transport never depended on it
        assert sidecar.health_state is HealthState.E2E_ONLY
        assert sidecar.stats.receipts_suppressed >= 0
        counters = sidecar.fault_counters()
        assert counters["health"] == "e2e_only"

    def test_cc_division_handed_back_in_e2e_only(self):
        sim, sender, receiver, tap, sidecar = build_assisted(
            reset_after=None, health=self.HEALTH, divide_cc=True)
        assert sender.cc_from_acks is False
        sender.start()
        sim.run(until=0.1)
        sidecar.consumer.mine.insert(0xDEADBEEF)
        run(sim, sender, receiver)
        assert sidecar.health_state is HealthState.E2E_ONLY
        # The e2e ACKs drive congestion control again: no starvation.
        assert sender.cc_from_acks is True
        assert receiver.complete

    def test_without_health_config_behavior_is_legacy(self):
        sim, sender, receiver, tap, sidecar = build_assisted()
        assert sidecar.monitor is None
        assert sidecar.health_state is HealthState.HEALTHY
        sender.start()
        run(sim, sender, receiver)
        assert receiver.complete
        assert sidecar.stats.receipts_suppressed == 0
