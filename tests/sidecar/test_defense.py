"""Plausibility gates, the quarantine ledger, and the QUARANTINED rung.

The defense's contract: an honest emitter never trips a gate (counts
are monotone mod wraparound, never ahead of the sent log, sums always
decode), while each adversary family produces its typed signal; enough
signals quarantine the channel, and quarantine is terminal until a
clean-decode probation is served.
"""

import pytest

from repro.quack.base import DecodeStatus
from repro.sidecar.defense import (
    AdversarialSignal,
    DefenseConfig,
    PlausibilityValidator,
    QuarantineLedger,
    SignalKind,
    missing_within_log,
)
from repro.sidecar.health import HealthConfig, HealthMonitor, HealthState

THRESHOLD = 16
COUNT_BITS = 16
MODULUS = 1 << COUNT_BITS


def make_validator(**overrides) -> PlausibilityValidator:
    config = DefenseConfig(**overrides)
    return PlausibilityValidator(config, THRESHOLD, COUNT_BITS, "flow0")


class TestCountGates:
    def test_honest_monotone_stream_is_accepted(self):
        validator = make_validator()
        for step, count in enumerate((4, 8, 12, 16)):
            verdict = validator.check_snapshot(count, sent_count=20,
                                               now=0.01 * step)
            assert verdict.action == "accept"
            assert verdict.signal is None
            validator.note_accepted(count)
        assert validator.max_count == 16
        assert validator.stats.signals == 0

    def test_count_ahead_of_sent_log_is_signalled(self):
        validator = make_validator()
        verdict = validator.check_snapshot(30, sent_count=20, now=0.0)
        assert verdict.action == "drop"
        assert verdict.signal.kind is SignalKind.COUNT_AHEAD

    def test_small_regression_is_silent_reordering(self):
        validator = make_validator()
        validator.note_accepted(40)
        verdict = validator.check_snapshot(38, sent_count=50, now=0.0)
        assert verdict.action == "drop"
        assert verdict.signal is None
        assert validator.stats.stale_dropped == 1

    def test_regression_at_replay_margin_is_signalled(self):
        validator = make_validator()
        validator.note_accepted(200)
        behind = 200 - 4 * THRESHOLD  # exactly the default margin
        verdict = validator.check_snapshot(behind, sent_count=220, now=1.0)
        assert verdict.action == "regressed"
        assert verdict.signal.kind is SignalKind.COUNT_REGRESSION
        assert verdict.signal.observed == behind
        assert verdict.signal.expected == 200

    def test_wraparound_advance_is_accepted(self):
        validator = make_validator()
        validator.note_accepted(MODULUS - 2)
        # Mod-aware: 3 is 5 ahead of 65534, not 65531 behind.
        verdict = validator.check_snapshot(3, sent_count=3, now=0.0)
        assert verdict.action == "accept"
        validator.note_accepted(3)
        assert validator.max_count == 3

    def test_rewind_rebases_the_high_water_count(self):
        validator = make_validator()
        validator.note_accepted(500)
        validator.rewind(420)
        verdict = validator.check_snapshot(424, sent_count=600, now=0.0)
        assert verdict.action == "accept"


class TestRateGate:
    def test_flood_trips_rate_anomaly(self):
        validator = make_validator(rate_max=5, rate_window_s=0.05)
        signals = []
        for arrival in range(10):
            verdict = validator.check_snapshot(4, sent_count=10,
                                               now=0.001 * arrival)
            if verdict.signal is not None:
                signals.append(verdict.signal.kind)
            else:
                validator.note_accepted(4)
        assert SignalKind.RATE_ANOMALY in signals

    def test_honest_cadence_never_trips(self):
        validator = make_validator(rate_max=5, rate_window_s=0.05)
        for arrival in range(20):
            verdict = validator.check_snapshot(4, sent_count=10,
                                               now=0.02 * arrival)
            assert verdict.signal is None


class TestDecodeAndResumeGates:
    def test_inconsistent_decode_is_forged_evidence(self):
        validator = make_validator()
        signal = validator.classify_decode_failure(
            DecodeStatus.INCONSISTENT, num_missing=9, outstanding=4, now=2.0)
        assert signal.kind is SignalKind.FORGED_EVIDENCE

    def test_other_decode_failures_are_not_adversarial(self):
        validator = make_validator()
        for status in (DecodeStatus.OK, DecodeStatus.THRESHOLD_EXCEEDED):
            assert validator.classify_decode_failure(
                status, num_missing=0, outstanding=0, now=0.0) is None

    def test_resume_from_future_epoch_is_implausible(self):
        validator = make_validator()
        signal = validator.check_resume(5, 100, current_epoch=2,
                                        sent_count=200, now=0.0)
        assert signal.kind is SignalKind.IMPLAUSIBLE_RESUME

    def test_resume_count_ahead_of_sent_is_implausible(self):
        validator = make_validator()
        signal = validator.check_resume(0, 300, current_epoch=0,
                                        sent_count=200, now=0.0)
        assert signal.kind is SignalKind.IMPLAUSIBLE_RESUME

    def test_honest_resume_passes(self):
        validator = make_validator()
        assert validator.check_resume(0, 180, current_epoch=0,
                                      sent_count=200, now=0.0) is None


class TestMissingWithinLog:
    def test_subset_is_clean(self):
        assert missing_within_log([3, 5], [1, 3, 5, 7]) == []

    def test_alien_identifiers_are_reported(self):
        assert missing_within_log([3, 99], [1, 3, 5]) == [99]

    def test_multiplicity_is_respected(self):
        # The log holds one copy of 3; a second missing 3 is alien.
        assert missing_within_log([3, 3], [1, 3, 5]) == [3]


def signal_at(time: float,
              kind: SignalKind = SignalKind.FORGED_EVIDENCE) -> AdversarialSignal:
    return AdversarialSignal(time=time, kind=kind, flow_id="flow0",
                             detail="test")


class TestQuarantineLedger:
    def test_trips_after_threshold_inside_window(self):
        ledger = QuarantineLedger(quarantine_after=3, signal_window_s=5.0)
        assert not ledger.record(signal_at(0.0))
        assert not ledger.record(signal_at(0.1))
        assert ledger.record(signal_at(0.2))
        assert ledger.quarantined
        assert ledger.quarantined_at == pytest.approx(0.2)

    def test_sparse_signals_outside_window_never_trip(self):
        ledger = QuarantineLedger(quarantine_after=3, signal_window_s=1.0)
        for time in (0.0, 2.0, 4.0, 6.0, 8.0):
            assert not ledger.record(signal_at(time))
        assert not ledger.quarantined

    def test_verdict_is_sticky(self):
        ledger = QuarantineLedger(quarantine_after=1, signal_window_s=5.0)
        assert ledger.record(signal_at(0.0))
        # Further signals are ledgered as evidence but trip nothing new.
        assert not ledger.record(signal_at(0.1))
        assert ledger.quarantines == 1
        assert len(ledger.signals) == 2

    def test_by_kind_tally(self):
        ledger = QuarantineLedger()
        ledger.record(signal_at(0.0, SignalKind.COUNT_AHEAD))
        ledger.record(signal_at(6.0, SignalKind.COUNT_AHEAD))
        ledger.record(signal_at(12.0, SignalKind.FORGED_EVIDENCE))
        assert ledger.by_kind() == {"count_ahead": 2, "forged_evidence": 1}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DefenseConfig(quarantine_after=0)
        with pytest.raises(ValueError):
            DefenseConfig(rate_max=0)
        with pytest.raises(ValueError):
            DefenseConfig(signal_window_s=0.0)


class TestQuarantinedRung:
    def make_monitor(self) -> HealthMonitor:
        return HealthMonitor(HealthConfig(quarantine_probation=1.0,
                                          probation=0.25))

    def test_enter_from_any_rung(self):
        monitor = self.make_monitor()
        monitor.on_adversarial(1.0, "lying")
        assert monitor.state is HealthState.QUARANTINED
        assert not monitor.allow_receipts
        assert not monitor.allow_losses
        assert monitor.stats.quarantines == 1

    def test_probation_must_be_served_clean(self):
        monitor = self.make_monitor()
        monitor.on_adversarial(0.0)
        monitor.on_good_quack(1.0)  # starts the clean clock
        assert monitor.state is HealthState.QUARANTINED
        monitor.on_good_quack(1.5)  # not yet 1.0 s of clean decodes
        assert monitor.state is HealthState.QUARANTINED
        monitor.on_good_quack(2.1)
        assert monitor.state is HealthState.RECOVERING
        # The normal probation then leads back to HEALTHY.
        monitor.on_good_quack(2.5)
        assert monitor.state is HealthState.HEALTHY

    def test_fresh_violation_restarts_the_clean_clock(self):
        monitor = self.make_monitor()
        monitor.on_adversarial(0.0)
        monitor.on_good_quack(1.0)
        monitor.on_adversarial(1.5, "still lying")
        monitor.on_good_quack(2.0)  # clock restarted here, not at 1.0
        assert monitor.state is HealthState.QUARANTINED
        monitor.on_good_quack(3.1)
        assert monitor.state is HealthState.RECOVERING

    def test_failure_keeps_quarantine_and_clears_clock(self):
        monitor = self.make_monitor()
        monitor.on_adversarial(0.0)
        monitor.on_good_quack(1.0)
        monitor.on_failure(1.5)
        assert monitor.state is HealthState.QUARANTINED
        monitor.on_good_quack(2.0)
        monitor.on_good_quack(2.9)  # only 0.9 s since the restart
        assert monitor.state is HealthState.QUARANTINED

    def test_silence_is_no_pardon(self):
        monitor = self.make_monitor()
        monitor.on_adversarial(0.0)
        monitor.on_stale(10.0)
        assert monitor.state is HealthState.QUARANTINED
