"""Per-segment controller choice in CC division (paper §2.1).

"splitting an end-to-end connection into multiple segments enables the
PEP to better adjust its sending rate or implement a different kind of
congestion control on each segment entirely" -- here we actually swap
the proxy's segment controller and watch the ladder: e2e AIMD < divided
AIMD < divided BBR (model-based control shrugs off the access-link
noise completely).
"""

import pytest

from repro.sidecar.cc_division import run_cc_division
from repro.transport.cc.bbr import BbrLite

TOTAL = 500_000


@pytest.fixture(scope="module")
def ladder():
    base = run_cc_division(sidecar=False, total_bytes=TOTAL, seed=3)
    aimd = run_cc_division(sidecar=True, total_bytes=TOTAL, seed=3)
    bbr = run_cc_division(sidecar=True, total_bytes=TOTAL, seed=3,
                          proxy_controller_factory=BbrLite)
    return base, aimd, bbr


def test_all_complete(ladder):
    assert all(r.completed for r in ladder)


def test_division_beats_end_to_end(ladder):
    base, aimd, _ = ladder
    assert aimd.completion_time < base.completion_time


def test_model_based_segment_controller_beats_aimd(ladder):
    _, aimd, bbr = ladder
    assert bbr.completion_time < aimd.completion_time


def test_no_decode_failures_with_either_controller(ladder):
    _, aimd, bbr = ladder
    assert aimd.server_sidecar_failures == 0
    assert bbr.server_sidecar_failures == 0
    assert aimd.proxy_stats.decode_failures == 0
    assert bbr.proxy_stats.decode_failures == 0
