"""Capability negotiation: the algebra, the transcript, and the sessions.

Unit tests pin the pure negotiation layer (version selection, parameter
clamping, transcript hashing); the session tests drive the chaos
harness's canonical assisted transfer end to end and check the
acceptance criteria of the versioning milestone: a v2 consumer against
a v1 emitter negotiates down and completes, a mid-connection
VERSION-SWITCH upgrades the wire with zero resets and zero *added*
retransmissions, and a stripped or rewritten HELLO lands the channel in
QUARANTINED with goodput no worse than the unassisted baseline.
"""

import dataclasses

import pytest

from repro.chaos.harness import run_plan
from repro.sidecar.health import HealthState
from repro.sidecar.negotiate import (
    ALL_FEATURES,
    FEATURE_DEFENSE,
    FEATURE_RESUME,
    FEATURE_VERSION_SWITCH,
    Capabilities,
    NegotiateConfig,
    feature_names,
    hello_transcript,
    respond,
    select_version,
)
from repro.sidecar.protocol import HelloMessage

SEED = 1


# -- the pure layer -----------------------------------------------------------

class TestSelectVersion:
    @pytest.mark.parametrize("offer,own,expected", [
        ((1, 2), (1, 2), 2),       # full overlap: highest mutual
        ((1, 2), (1, 1), 1),       # responder is legacy: negotiate down
        ((1, 3), (1, 2), 2),       # offer runs ahead: clamp to mutual
        ((2, 2), (1, 2), 2),       # initiator refuses v1
        ((1, 1), (2, 3), None),    # disjoint: no session
        ((3, 4), (1, 2), None),
    ])
    def test_highest_mutual(self, offer, own, expected):
        assert select_version(*offer, *own) == expected


class TestCapabilities:
    def test_empty_version_range_rejected(self):
        with pytest.raises(ValueError, match="version range"):
            Capabilities(min_version=2, max_version=1)

    def test_version_zero_rejected(self):
        with pytest.raises(ValueError, match="version range"):
            Capabilities(min_version=0, max_version=1)

    def test_hello_carries_session_parameters(self):
        hello = Capabilities().hello("flow0", threshold=24, bits=16)
        assert (hello.threshold, hello.bits) == (24, 16)
        assert (hello.min_version, hello.max_version) == (1, 2)
        assert hello.features == ALL_FEATURES

    def test_feature_names(self):
        assert feature_names(ALL_FEATURES) \
            == ["resume", "defense", "version-switch"]
        assert feature_names(FEATURE_DEFENSE) == ["defense"]
        assert feature_names(0) == []


class TestRespond:
    OFFER = HelloMessage(flow_id="flow0", min_version=1, max_version=2,
                         threshold=20, bits=32, interval_us=0,
                         features=ALL_FEATURES)

    def test_picks_highest_mutual_and_echoes_transcript(self):
        ack = respond(self.OFFER, Capabilities())
        assert ack.version == 2
        assert ack.transcript == hello_transcript(self.OFFER)

    def test_clamps_parameters_to_the_responder(self):
        ack = respond(self.OFFER, Capabilities(threshold=10, bits=16))
        assert (ack.threshold, ack.bits) == (10, 16)

    def test_intersects_features(self):
        ack = respond(self.OFFER, Capabilities(
            features=FEATURE_RESUME | FEATURE_DEFENSE))
        assert ack.features == FEATURE_RESUME | FEATURE_DEFENSE
        assert not ack.features & FEATURE_VERSION_SWITCH

    def test_no_overlap_stays_silent(self):
        assert respond(self.OFFER,
                       Capabilities(min_version=3, max_version=4)) is None

    def test_rewritten_offer_changes_the_transcript(self):
        # The downgrade defense in one assertion: any on-path edit of
        # the offer produces a different hash than the initiator holds.
        pinned = dataclasses.replace(self.OFFER, max_version=1, features=0)
        assert hello_transcript(pinned) != hello_transcript(self.OFFER)
        ack = respond(pinned, Capabilities())
        assert ack.version == 1
        assert ack.transcript != hello_transcript(self.OFFER)


class TestNegotiateConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="retry_s"):
            NegotiateConfig(retry_s=0)
        with pytest.raises(ValueError, match="strip_after"):
            NegotiateConfig(strip_after=0)
        with pytest.raises(ValueError, match="switch_grace_s"):
            NegotiateConfig(switch_grace_s=-0.1)


# -- end-to-end sessions ------------------------------------------------------

@pytest.fixture(scope="module")
def plans():
    return {name: run_plan(name, seed=SEED)
            for name in ("negotiate-down", "version-skew", "version-switch",
                         "downgrade-strip", "downgrade-rewrite")}


class TestNegotiatedSessions:
    def test_all_plans_hold_their_invariants(self, plans):
        for name, result in plans.items():
            assert result.violations() == [], (name, result.violations())

    def test_v2_consumer_negotiates_down_to_a_v1_emitter(self, plans):
        result = plans["negotiate-down"]
        assert result.completed
        assert result.negotiated_version == 1
        assert result.server_counters["wire_version"] == 1
        assert result.emitter_counters["wire_version"] == 1
        assert result.server_counters["hellos_sent"] == 1
        assert result.emitter_counters["hello_acks_sent"] >= 1

    def test_version_skew_settles_on_the_highest_mutual(self, plans):
        result = plans["version-skew"]
        assert result.negotiated_version == 2
        assert result.completed

    def test_negotiation_precedes_assistance(self, plans):
        for name in ("negotiate-down", "version-skew", "version-switch"):
            result = plans[name]
            assert result.assistance_started_s is not None
            assert result.assistance_started_s > 0.0
            assert result.server_counters["hello_acks_received"] >= 1

    def test_handshake_is_one_offer_and_a_few_hundred_bytes(self, plans):
        result = plans["negotiate-down"]
        assert result.server_counters["hellos_sent"] == 1
        assert 0 < result.handshake_bytes < 512


class TestVersionSwitch:
    def test_switch_lands_on_both_peers(self, plans):
        result = plans["version-switch"]
        assert result.negotiated_version == 2
        assert result.server_counters["wire_version"] == 2
        assert result.emitter_counters["wire_version"] == 2
        assert result.server_counters["version_switches"] == 1
        assert result.emitter_counters["version_switches"] == 1

    def test_zero_resets_and_zero_spurious_retransmissions(self, plans):
        # "Spurious" = a retransmission of a packet that was actually
        # delivered: every retransmission must be backed by a real drop
        # on the path, so the switch's state churn caused none.
        result = plans["version-switch"]
        assert result.completed
        assert result.server_counters["resets_initiated"] == 0
        assert result.emitter_counters["resets_applied"] == 0
        assert result.retransmitted_packets <= result.link_drops

    def test_in_flight_frames_survive_the_grace_window(self, plans):
        # Snapshots serialized under v1 that were in flight when the
        # switch landed are tolerated, not counted as stale.
        result = plans["version-switch"]
        assert result.server_counters["stale_version_frames"] == 0
        assert result.server_counters["decode_failures"] == 0


class TestDowngradeDefense:
    @pytest.mark.parametrize("name", ("downgrade-strip",
                                      "downgrade-rewrite"))
    def test_attack_is_quarantined(self, plans, name):
        result = plans[name]
        assert result.quarantined_at is not None
        assert result.health_final is HealthState.QUARANTINED
        assert result.signals_by_kind.get("downgrade", 0) >= 3

    @pytest.mark.parametrize("name", ("downgrade-strip",
                                      "downgrade-rewrite"))
    def test_goodput_never_drops_below_unassisted(self, plans, name):
        result = plans[name]
        assert result.completed
        assert result.duration_s <= (result.baseline_duration_s
                                     + result.baseline_slack_s + 1e-9)

    def test_strip_never_completes_negotiation(self, plans):
        result = plans["downgrade-strip"]
        assert result.negotiated_version is None
        assert result.assistance_started_s is None
        assert result.server_counters["hello_acks_received"] == 0

    def test_rewrite_is_caught_by_the_transcript(self, plans):
        result = plans["downgrade-rewrite"]
        assert result.server_counters["transcript_mismatches"] >= 1
        assert result.negotiated_version is None
