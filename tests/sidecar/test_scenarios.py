"""End-to-end tests of the three sidecar protocol scenarios (E7-E9).

These run the full stack -- simulator, paranoid transport, sidecar agents
-- on scaled-down transfers, asserting the *claims* the paper makes for
each protocol, with comfortable margins so seeds don't flake.
"""

import pytest

from repro.sidecar.ack_reduction import run_ack_reduction
from repro.sidecar.cc_division import run_cc_division
from repro.sidecar.retransmission import run_retransmission

TOTAL = 400_000  # keep the in-test transfers quick


class TestCcDivision:
    @pytest.fixture(scope="class")
    def results(self):
        baseline = run_cc_division(total_bytes=TOTAL, sidecar=False, seed=3)
        sidecar = run_cc_division(total_bytes=TOTAL, sidecar=True, seed=3)
        return baseline, sidecar

    def test_both_complete(self, results):
        baseline, sidecar = results
        assert baseline.completed and sidecar.completed

    def test_sidecar_improves_completion_time(self, results):
        baseline, sidecar = results
        assert sidecar.completion_time < baseline.completion_time

    def test_sidecar_improves_goodput(self, results):
        baseline, sidecar = results
        assert sidecar.goodput_bps > baseline.goodput_bps

    def test_no_decode_failures(self, results):
        _, sidecar = results
        assert sidecar.server_sidecar_failures == 0
        assert sidecar.proxy_stats.decode_failures == 0

    def test_client_actually_quacked(self, results):
        _, sidecar = results
        assert sidecar.client_quacks > 0
        assert sidecar.proxy_stats.quacks_from_client > 0

    def test_proxy_took_custody_of_all_data(self, results):
        _, sidecar = results
        stats = sidecar.proxy_stats
        assert stats.taken_custody == stats.forwarded + stats.buffer_drops \
            + 0  # everything captured was eventually forwarded or dropped

    def test_baseline_has_no_sidecar_artifacts(self, results):
        baseline, _ = results
        assert baseline.client_quacks == 0
        assert baseline.proxy_stats is None


class TestAckReduction:
    @pytest.fixture(scope="class")
    def results(self):
        dense = run_ack_reduction(total_bytes=TOTAL, ack_every=2,
                                  sidecar=False, seed=5)
        sparse = run_ack_reduction(total_bytes=TOTAL, ack_every=32,
                                   sidecar=False, seed=5)
        assisted = run_ack_reduction(total_bytes=TOTAL, ack_every=32,
                                     sidecar=True, seed=5)
        return dense, sparse, assisted

    def test_all_complete(self, results):
        assert all(r.completed for r in results)

    def test_sparse_acks_cut_client_ack_count(self, results):
        dense, sparse, assisted = results
        assert sparse.client_acks_sent < dense.client_acks_sent / 4
        assert assisted.client_acks_sent < dense.client_acks_sent / 2

    def test_naive_thinning_hurts_but_sidecar_recovers(self, results):
        dense, sparse, assisted = results
        assert sparse.completion_time > dense.completion_time
        assert assisted.completion_time < sparse.completion_time

    def test_sidecar_quacks_flowed(self, results):
        _, _, assisted = results
        assert assisted.proxy_quacks_sent > 0
        assert assisted.server_sidecar_failures == 0

    def test_quack_bandwidth_is_modest(self, results):
        dense, _, assisted = results
        # 82 B per 2 x 1500 B data packets ~ 2.7% of the transfer -- and it
        # rides the proxy->server segment, not the client's uplink.
        assert assisted.quack_bytes < TOTAL * 0.03
        # The bytes on the *client uplink* (the constrained direction the
        # protocol is relieving) shrink substantially.
        assert assisted.client_ack_bytes < dense.client_ack_bytes / 2


class TestInNetworkRetransmission:
    @pytest.fixture(scope="class")
    def results(self):
        e2e = run_retransmission(total_bytes=TOTAL, innet_retx=False,
                                 loss_rate=0.05, seed=7)
        local = run_retransmission(total_bytes=TOTAL, innet_retx=True,
                                   loss_rate=0.05, seed=7)
        tolerant = run_retransmission(total_bytes=TOTAL, innet_retx=True,
                                      loss_rate=0.05, seed=7,
                                      reorder_threshold=64)
        return e2e, local, tolerant

    def test_all_complete(self, results):
        assert all(r.completed for r in results)

    def test_proxy_repairs_losses(self, results):
        _, local, tolerant = results
        assert local.proxy_retransmissions > 0
        assert tolerant.proxy_retransmissions > 0

    def test_local_repair_with_tolerant_host_beats_e2e(self, results):
        e2e, _, tolerant = results
        assert tolerant.completion_time < e2e.completion_time
        assert tolerant.server_congestion_events < e2e.server_congestion_events

    def test_tolerant_host_avoids_most_e2e_retransmissions(self, results):
        e2e, _, tolerant = results
        assert tolerant.server_retransmissions < e2e.server_retransmissions

    def test_no_decode_failures(self, results):
        _, local, tolerant = results
        assert local.proxy_decode_failures == 0
        assert tolerant.proxy_decode_failures == 0

    def test_quacks_flowed_and_adapted(self, results):
        _, local, _ = results
        assert local.proxy_quacks > 0
