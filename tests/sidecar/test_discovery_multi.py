"""Discovery with multiple volunteering proxies (extension X2)."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.topology import HopSpec, build_path
from repro.sidecar.discovery import (
    DiscoveringProxy,
    DiscoveringServerSidecar,
)
from repro.transport.connection import ReceiverConnection, SenderConnection


def build_two_proxy_chain(total=1460 * 60):
    """server -- proxyA -- proxyB -- client, both proxies volunteering."""
    sim = Simulator()
    server = Host(sim, "server")
    proxy_a = Router(sim, "proxyA")
    proxy_b = Router(sim, "proxyB")
    client = Host(sim, "client")
    build_path(sim, [server, proxy_a, proxy_b, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.004)] * 3)
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total)
    agent_a = DiscoveringProxy(sim, proxy_a)
    agent_b = DiscoveringProxy(sim, proxy_b)
    host_agent = DiscoveringServerSidecar(sim, sender)
    return sim, sender, receiver, agent_a, agent_b, host_agent


def run(sim, sender, receiver, deadline=30.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if sender.complete and receiver.complete:
            break
        if sim.peek_next_time() is None:
            break


class TestTwoProxies:
    @pytest.fixture(scope="class")
    def world(self):
        sim, sender, receiver, a, b, host = build_two_proxy_chain()
        sender.start()
        run(sim, sender, receiver)
        return sender, receiver, a, b, host

    def test_transfer_completes(self, world):
        _, receiver, *_ = world
        assert receiver.complete

    def test_exactly_one_proxy_accepted(self, world):
        sender, _, a, b, host = world
        accepted = [agent for agent in (a, b)
                    if agent.flows[sender.flow_id].accepted]
        assert len(accepted) == 1
        assert host.accepted_from == accepted[0].router.name

    def test_accepted_proxy_quacks_and_session_works(self, world):
        sender, _, a, b, host = world
        winner = a if a.flows[sender.flow_id].accepted else b
        assert winner.flows[sender.flow_id].quacks_sent > 0
        assert host.sidecar is not None
        assert host.sidecar.stats.decode_failures == 0
        assert sender.stats.sidecar_releases > 0

    def test_loser_gave_up_offering(self, world):
        sender, _, a, b, host = world
        loser = b if a.flows[sender.flow_id].accepted else a
        flow = loser.flows[sender.flow_id]
        assert not flow.accepted
        assert flow.quacks_sent == 0
        assert flow.offers_sent <= loser.max_offers
