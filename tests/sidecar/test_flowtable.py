"""Tests for the multi-tenant flow table (DESIGN.md §16)."""

import pytest

from repro.netsim.core import Simulator
from repro.sidecar.accounting import FLOW_ACCOUNTS
from repro.sidecar.flowtable import (
    FlowTable,
    FlowTableConfig,
    run_scale,
)


@pytest.fixture(autouse=True)
def _ledger_clean():
    FLOW_ACCOUNTS.disarm()
    FLOW_ACCOUNTS.reset()
    yield
    FLOW_ACCOUNTS.disarm()
    FLOW_ACCOUNTS.reset()


def make_table(**overrides) -> tuple[Simulator, FlowTable]:
    sim = Simulator()
    config = FlowTableConfig(**overrides)
    return sim, FlowTable(sim, config)


#: Resident bank of one default-config emitter (threshold=4, bits=32).
BANK = 18


class TestConfigValidation:
    def test_defaults_are_valid(self):
        FlowTableConfig()

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"max_flows": 0},
        {"tenant_budget_bytes": 0},
        {"shed_low_water": 0.0},
        {"shed_low_water": 0.9, "shed_high_water": 0.8},
        {"shed_high_water": 1.5},
        {"batch_interval_s": 0.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlowTableConfig(**kwargs)


class TestAdmission:
    def test_admit_is_idempotent_per_key(self):
        _, table = make_table()
        first = table.admit("t0", "f0")
        again = table.admit("t0", "f0")
        assert first is again
        assert table.stats.flows_admitted == 1

    def test_global_high_water_rejects(self):
        _, table = make_table(max_flows=2, tenant_budget_bytes=10_000)
        assert table.admit("t0", "f0") is not None
        assert table.admit("t0", "f1") is not None
        assert table.admit("t0", "f2") is None
        assert table.stats.flows_rejected == 1
        assert table.flows == 2

    def test_bank_accounting_tracks_admissions(self):
        _, table = make_table()
        table.admit("t0", "f0")
        table.admit("t0", "f1")
        table.admit("t1", "f0")
        assert table.tenant_bank_bytes("t0") == 2 * BANK
        assert table.tenant_bank_bytes("t1") == BANK
        assert table.total_bank_bytes() == 3 * BANK

    def test_newcomer_bigger_than_budget_rejected(self):
        _, table = make_table(tenant_budget_bytes=BANK - 1)
        assert table.admit("t0", "f0") is None
        assert table.stats.flows_rejected == 1


class TestBudgetEviction:
    def test_over_budget_evicts_tenant_lru(self):
        # Budget fits two banks; the third admission evicts the least
        # recently *active* flow, not the oldest admission.
        sim, table = make_table(tenant_budget_bytes=2 * BANK + 2)
        a = table.admit("t0", "a")
        b = table.admit("t0", "b")
        sim.schedule(0.001, lambda: table.observe(a, 7))
        sim.schedule(0.002, lambda: table.admit("t0", "c"))
        sim.run(until=0.003)
        assert not b.live
        assert a.live
        assert table.get("t0", "c") is not None
        assert table.stats.flows_evicted == 1
        assert table.tenant_bank_bytes("t0") == 2 * BANK

    def test_one_tenants_burst_never_costs_another(self):
        _, table = make_table(tenant_budget_bytes=2 * BANK + 2,
                              max_flows=1000)
        other = table.admit("quiet", "f0")
        for index in range(20):
            table.admit("noisy", f"f{index}")
        assert other.live
        assert table.tenant_bank_bytes("quiet") == BANK
        assert table.tenant_bank_bytes("noisy") <= 2 * BANK + 2

    def test_eviction_fires_callback_with_reason(self):
        reasons = []
        _, table = make_table(tenant_budget_bytes=BANK + 1)
        table.admit("t0", "a", on_evict=reasons.append)
        table.admit("t0", "b")
        assert reasons == ["budget"]


class TestClamp:
    def test_clamp_evicts_immediately_and_restores(self):
        _, table = make_table(tenant_budget_bytes=10 * BANK)
        for index in range(3):
            table.admit("t0", f"f{index}")
        evicted = table.clamp_tenant("t0", BANK + 1)
        assert evicted == 2
        assert table.stats.flows_evicted == 2
        assert table.flows == 1
        # None restores the default budget: admissions work again.
        table.clamp_tenant("t0", None)
        assert table.admit("t0", "fresh") is not None

    def test_clamp_to_zero_removes_every_flow(self):
        _, table = make_table()
        for index in range(4):
            table.admit("t0", f"f{index}")
        assert table.clamp_tenant("t0", 0) == 4
        assert table.flows == 0


class TestShedding:
    def test_shed_order_idle_then_low_traffic_then_active(self):
        # 8 flows above the high water (6); shedding stops at the low
        # water (4) after taking the idle pair, then the low-traffic
        # pair -- the active flows survive.
        sim, table = make_table(
            max_flows=8, shed_high_water=0.75, shed_low_water=0.5,
            idle_after_s=0.004, low_traffic_observed=4,
            tenant_budget_bytes=10_000)
        records = [table.admit("t0", f"f{index}") for index in range(8)]

        def drive() -> None:
            for record in records[2:4]:
                table.observe(record, 7)
            for record in records[4:]:
                for identifier in range(1, 5):
                    table.observe(record, identifier)

        sim.schedule(0.003, drive)
        sim.run(until=0.006)
        assert table.flows == 4
        assert table.stats.flows_shed == 4
        assert [record.live for record in records] == \
            [False, False, False, False, True, True, True, True]

    def test_no_shedding_below_high_water(self):
        sim, table = make_table(max_flows=8, shed_high_water=0.75,
                                shed_low_water=0.5,
                                tenant_budget_bytes=10_000)
        for index in range(6):
            table.admit("t0", f"f{index}")
        sim.run(until=0.02)
        assert table.stats.flows_shed == 0
        assert table.flows == 6


class TestBatching:
    def test_emission_waits_for_the_shared_timer(self):
        sim, table = make_table()
        frames = []
        record = table.admit("t0", "f0",
                             on_emit=lambda snap, now: frames.append(now))

        def feed() -> None:
            table.observe(record, 1)
            table.observe(record, 2)  # due at 0.002 under the default

        sim.schedule(0.002, feed)
        sim.run(until=0.004)
        assert frames == []  # never inline: waits for the 0.005 sweep
        sim.run(until=0.006)
        assert frames == [0.005]
        assert table.stats.batches == 1
        assert table.stats.frames_batched == 1

    def test_latency_is_coalescing_delay(self):
        sim, table = make_table()
        record = table.admit("t0", "f0")
        sim.schedule(0.002, lambda: (table.observe(record, 1),
                                     table.observe(record, 2)))
        sim.run(until=0.006)
        stats = table.stats_dict()
        assert stats["emissions"] == 1
        assert stats["emission_latency_p99_s"] == pytest.approx(0.003)

    def test_observe_after_eviction_is_a_noop(self):
        _, table = make_table()
        record = table.admit("t0", "f0")
        assert table.observe(record, 1)
        assert table.close_flow(record)
        assert not table.observe(record, 2)
        assert not table.close_flow(record)

    def test_close_stops_the_batch_timer(self):
        sim, table = make_table()
        record = table.admit("t0", "f0")
        table.observe(record, 1)
        table.observe(record, 2)
        table.close()
        before = table.stats.batches
        sim.run(until=0.1)
        assert table.stats.batches == before


class TestLedgerIntegration:
    def test_eviction_forgets_the_ledger_entry(self):
        FLOW_ACCOUNTS.arm()
        _, table = make_table()
        record = table.admit("t0", "f0")
        table.observe(record, 1)
        assert FLOW_ACCOUNTS.flows == 1
        assert "t0/f0" in FLOW_ACCOUNTS.snapshot()["flows"]
        table.close_flow(record)
        assert FLOW_ACCOUNTS.flows == 0
        assert FLOW_ACCOUNTS.evicted_flows == 1


class TestRunScale:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            run_scale(flows=0)

    def test_deterministic_across_runs(self):
        first = run_scale(flows=200, tenants=4, churn_rate=0.5,
                          duration_s=0.3, seed=7, account=True)
        second = run_scale(flows=200, tenants=4, churn_rate=0.5,
                           duration_s=0.3, seed=7, account=True)
        assert first == second

    def test_churn_closes_and_forgets(self):
        result = run_scale(flows=100, tenants=4, churn_rate=1.0,
                           duration_s=0.5, seed=1, account=True)
        assert result["flows_closed"] > 0
        assert result["ledger_evicted_flows"] == result["flows_closed"]

    def test_overload_rejects_past_max_flows(self):
        result = run_scale(flows=100, max_flows=50, seed=1)
        assert result["flows_admitted"] == 50
        assert result["flows_rejected"] == 50

    def test_100k_flows_stay_within_the_memory_budget(self):
        # The headline capacity claim: a 100k-flow population runs to
        # completion with the resident bank memory -- measured by the
        # same FLOW_ACCOUNTS.total_bank_bytes() the ops ledger reports
        # -- inside the configured per-tenant budgets.
        tenants = 8
        result = run_scale(flows=100_000, tenants=tenants,
                           packets_per_flow=2, seed=1, account=True)
        global_budget = result["tenant_budget_bytes"] * tenants
        assert result["flows"] == 100_000
        assert result["ledger_bank_bytes"] <= global_budget
        assert result["peak_bank_bytes"] <= global_budget
        assert result["ledger_bank_bytes"] == result["total_bank_bytes"]
        assert result["emission_latency_p99_s"] <= 0.005
