"""Tests for quACK frequency policies (repro.sidecar.frequency)."""

import pytest

from repro.sidecar.frequency import (
    AdaptiveFrequency,
    IntervalFrequency,
    PacketCountFrequency,
)


class TestIntervalFrequency:
    def test_emits_once_per_interval(self):
        policy = IntervalFrequency(0.060)
        assert not policy.on_packet(5, now=0.030, last_emit=0.0)
        assert policy.on_packet(5, now=0.060, last_emit=0.0)
        assert policy.on_packet(1, now=0.500, last_emit=0.4)

    def test_interval_hint(self):
        assert IntervalFrequency(0.1).interval_hint() == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalFrequency(0)

    def test_repr(self):
        assert "60.0 ms" in repr(IntervalFrequency(0.060))


class TestPacketCountFrequency:
    def test_every_n(self):
        policy = PacketCountFrequency(32)
        assert not policy.on_packet(31, 0.0, 0.0)
        assert policy.on_packet(32, 0.0, 0.0)

    def test_every_packet(self):
        assert PacketCountFrequency(1).on_packet(1, 0.0, 0.0)

    def test_no_interval_hint(self):
        assert PacketCountFrequency(2).interval_hint() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketCountFrequency(0)


class TestAdaptiveFrequency:
    def test_behaves_like_packet_count(self):
        policy = AdaptiveFrequency(initial_every=16)
        assert not policy.on_packet(15, 0.0, 0.0)
        assert policy.on_packet(16, 0.0, 0.0)

    def test_retune_targets_constant_missing(self):
        # Section 4.3: target ~t missing per quACK at the observed loss.
        policy = AdaptiveFrequency(initial_every=16, target_missing=10)
        assert policy.retune(0.10) == 100
        assert policy.every_n == 100
        assert policy.retune(0.5) == 20

    def test_retune_clamps(self):
        policy = AdaptiveFrequency(initial_every=16, min_every=4,
                                   max_every=64, target_missing=10)
        assert policy.retune(0.9) == 11  # 10/0.9
        assert policy.retune(0.99) == 10
        assert policy.retune(1e-9) == 64   # nearly lossless: slowest cadence
        assert policy.retune(0.0) == 64
        policy2 = AdaptiveFrequency(initial_every=16, min_every=8,
                                    max_every=64, target_missing=1)
        assert policy2.retune(0.9) == 8  # clamped up to min_every

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFrequency(initial_every=1, min_every=2)
        with pytest.raises(ValueError):
            AdaptiveFrequency(initial_every=600, max_every=512)
