"""Tests for the receiver-side sidecar state (repro.sidecar.emitter)."""

from repro.sidecar.emitter import QuackEmitter
from repro.sidecar.frequency import IntervalFrequency, PacketCountFrequency


class TestObserve:
    def test_emits_per_packet_count(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(3))
        assert emitter.observe(1, 0.0) is None
        assert emitter.observe(2, 0.0) is None
        snapshot = emitter.observe(3, 0.0)
        assert snapshot is not None
        assert snapshot.count == 3

    def test_counter_resets_after_emission(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(2))
        emitter.observe(1, 0.0)
        assert emitter.observe(2, 0.0) is not None
        assert emitter.pending_packets == 0
        assert emitter.observe(3, 0.0) is None
        assert emitter.pending_packets == 1

    def test_interval_policy(self):
        emitter = QuackEmitter(threshold=4, policy=IntervalFrequency(0.050))
        assert emitter.observe(1, now=0.010) is None
        assert emitter.observe(2, now=0.051) is not None
        assert emitter.observe(3, now=0.060) is None

    def test_snapshot_is_independent_copy(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(1))
        snapshot = emitter.observe(5, 0.0)
        emitter.observe(6, 0.0)
        assert snapshot.count == 1  # unchanged by later observations

    def test_accumulator_is_cumulative_across_emissions(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(2))
        emitter.observe(1, 0.0)
        first = emitter.observe(2, 0.0)
        emitter.observe(3, 0.0)
        second = emitter.observe(4, 0.0)
        assert first.count == 2
        assert second.count == 4
        # The second snapshot contains everything the first did.
        delta = second - first
        assert delta.count == 2

    def test_unconditional_emit(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(100))
        emitter.observe(1, 0.0)
        snapshot = emitter.emit(1.0)
        assert snapshot.count == 1
        assert emitter.pending_packets == 0

    def test_stats(self):
        emitter = QuackEmitter(threshold=4, policy=PacketCountFrequency(2))
        for i in range(5):
            emitter.observe(i + 1, 0.0)
        assert emitter.stats.observed == 5
        assert emitter.stats.emitted == 2
        expected_bytes = 2 * ((emitter.quack.wire_size_bits() + 7) // 8)
        assert emitter.stats.emitted_bytes == expected_bytes

    def test_default_policy_every_other_packet(self):
        emitter = QuackEmitter(threshold=4)
        assert emitter.observe(1, 0.0) is None
        assert emitter.observe(2, 0.0) is not None
