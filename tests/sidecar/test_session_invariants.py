"""Property tests for emitter/consumer sessions under hostile schedules.

The paper's dropped-quACK resilience claim (Section 3.3), as a law: with
FIFO delivery and no *data* loss, a session must never declare a false
loss and never fail a decode -- no matter which quACK snapshots are
dropped, how traffic interleaves with decodes, or where the quACK
cadence falls.  Data loss weakens this to "only truly-dropped packets
are ever declared lost" (grace >= 1, no reordering).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sidecar.consumer import QuackConsumer
from repro.sidecar.emitter import QuackEmitter
from repro.sidecar.frequency import PacketCountFrequency

# A schedule is a list of steps: "send" (packet that arrives), "drop"
# (packet lost on the wire), "quack" (emitter snapshot that reaches the
# consumer), "skip" (snapshot generated but lost in transit).
steps = st.lists(st.sampled_from(["send", "send", "send", "drop",
                                  "quack", "skip"]),
                 min_size=1, max_size=120)


@given(schedule=steps, seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=60, deadline=None)
def test_no_false_losses_under_any_quack_schedule(schedule, seed):
    rng = random.Random(seed)
    consumer = QuackConsumer(threshold=30, grace=1)
    emitter = QuackEmitter(threshold=30,
                           policy=PacketCountFrequency(10 ** 9))
    truly_dropped: set[int] = set()
    declared: set[int] = set()
    clock = 0.0
    index = 0
    for step in schedule:
        clock += 1.0
        if step in ("send", "drop"):
            identifier = rng.getrandbits(32)
            consumer.record_send(identifier, index, clock)
            if step == "send":
                emitter.quack.insert(identifier)
            else:
                truly_dropped.add(index)
            index += 1
        else:
            snapshot = emitter.quack.copy()
            if step == "skip":
                continue  # the quACK datagram was lost: no state change
            feedback = consumer.on_quack(snapshot, clock)
            # Outstanding never exceeds log + threshold constraints such
            # that decoding breaks: with t=30 > any run of drops here the
            # decode must succeed or be a pure truncation case.
            if feedback.ok:
                declared.update(feedback.lost)
    # THE LAW: everything declared lost was genuinely dropped.
    assert declared <= truly_dropped


@given(schedule=steps, seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=60, deadline=None)
def test_no_failures_without_data_loss(schedule, seed):
    """With zero data loss, every decode must succeed and eventually
    confirm every packet that a later quACK covers."""
    rng = random.Random(seed)
    consumer = QuackConsumer(threshold=30, grace=1)
    emitter = QuackEmitter(threshold=30,
                           policy=PacketCountFrequency(10 ** 9))
    clock = 0.0
    confirmed = 0
    sent = 0
    for step in schedule:
        clock += 1.0
        if step in ("send", "drop"):  # treat drops as deliveries here
            identifier = rng.getrandbits(32)
            consumer.record_send(identifier, sent, clock)
            emitter.quack.insert(identifier)
            sent += 1
        elif step == "quack":
            feedback = consumer.on_quack(emitter.quack.copy(), clock)
            assert feedback.ok
            assert feedback.lost == [] and feedback.suspected == []
            confirmed += len(feedback.received)
    # A final flush confirms everything outstanding.
    feedback = consumer.on_quack(emitter.quack.copy(), clock + 1)
    assert feedback.ok
    confirmed += len(feedback.received)
    assert confirmed == sent
    assert consumer.outstanding == 0


@given(drops=st.sets(st.integers(min_value=0, max_value=59), max_size=10),
       cadence=st.integers(min_value=1, max_value=25))
@settings(max_examples=50, deadline=None)
def test_every_true_loss_eventually_declared(drops, cadence):
    """Interior losses are always found once later traffic flows; only a
    trailing run can stay 'in transit' (and a final extra packet plus
    flush converts those too)."""
    rng = random.Random(42)
    consumer = QuackConsumer(threshold=60, grace=1)
    emitter = QuackEmitter(threshold=60, policy=PacketCountFrequency(cadence))
    clock = 0.0
    for index in range(60):
        clock += 1.0
        identifier = rng.getrandbits(32)
        consumer.record_send(identifier, index, clock)
        if index in drops:
            continue
        snapshot = emitter.observe(identifier, clock)
        if snapshot is not None:
            consumer.on_quack(snapshot, clock)
    # One guaranteed-delivered trailer, then a flush.
    trailer = rng.getrandbits(32)
    consumer.record_send(trailer, 999, clock + 1)
    emitter.quack.insert(trailer)
    feedback = consumer.on_quack(emitter.quack.copy(), clock + 2)
    assert feedback.ok
    total_declared = consumer.stats.declared_lost
    assert total_declared == len(drops)
