"""Tests for the per-flow middlebox resource ledger."""

import pytest

from repro.errors import ObservabilityError
from repro.sidecar.accounting import FLOW_ACCOUNTS, FlowAccounts
from repro.sidecar.emitter import QuackEmitter


@pytest.fixture(autouse=True)
def _ledger_clean():
    FLOW_ACCOUNTS.disarm()
    FLOW_ACCOUNTS.reset()
    yield
    FLOW_ACCOUNTS.disarm()
    FLOW_ACCOUNTS.reset()


class TestFlowAccounts:
    def test_disarmed_by_default(self):
        assert not FlowAccounts().armed
        assert not FLOW_ACCOUNTS.armed

    def test_observe_and_emit_accumulate(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("f1", bank_bytes=80)
        ledger.on_observe("f1", bank_bytes=82)
        ledger.on_emit("f1", frame_bytes=41)
        snapshot = ledger.snapshot()
        account = snapshot["flows"]["f1"]
        assert account["observed"] == 2
        assert account["bank_bytes"] == 82  # latest resident size wins
        assert account["frames_emitted"] == 1
        assert account["bytes_emitted"] == 41
        assert snapshot["total_bank_bytes"] == 82

    def test_top_is_deterministic_and_validates_key(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("a", bank_bytes=10)
        ledger.on_observe("b", bank_bytes=10)
        ledger.on_observe("c", bank_bytes=99)
        top = ledger.top(2)
        assert [flow for flow, _ in top] == ["c", "a"]  # value desc, name
        with pytest.raises(ObservabilityError):
            ledger.top(key="not_a_field")

    def test_reset_clears_flows(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("f1", bank_bytes=10)
        ledger.reset()
        assert ledger.flows == 0

    def test_forget_drops_entry_and_counts_eviction(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("f1", bank_bytes=10)
        ledger.on_observe("f2", bank_bytes=20)
        ledger.forget("f1")
        assert ledger.flows == 1
        assert ledger.evicted_flows == 1
        assert ledger.total_bank_bytes() == 20

    def test_forget_unknown_flow_is_a_noop(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.forget("never-seen")
        assert ledger.evicted_flows == 0

    def test_reset_zeroes_eviction_counter(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("f1", bank_bytes=10)
        ledger.forget("f1")
        ledger.reset()
        assert ledger.evicted_flows == 0

    def test_snapshot_carries_evicted_flows(self):
        ledger = FlowAccounts()
        ledger.arm()
        ledger.on_observe("f1", bank_bytes=10)
        ledger.forget("f1")
        assert ledger.snapshot()["evicted_flows"] == 1


class TestEmitterIntegration:
    def test_disarmed_emitter_records_nothing(self):
        emitter = QuackEmitter(4, flow="flow0")
        for index in range(4):
            emitter.observe(index + 1, now=0.01 * index)
        assert FLOW_ACCOUNTS.flows == 0

    def test_armed_emitter_feeds_the_ledger(self):
        FLOW_ACCOUNTS.arm()
        emitter = QuackEmitter(4, flow="flow0")
        for index in range(4):  # emit policy: every 2 packets
            emitter.observe(index + 1, now=0.01 * index)
        snapshot = FLOW_ACCOUNTS.snapshot()
        account = snapshot["flows"]["flow0"]
        assert account["observed"] == 4
        assert account["frames_emitted"] == 2
        assert account["bytes_emitted"] == emitter.stats.emitted_bytes
        assert account["bank_bytes"] == \
            (emitter.quack.wire_size_bits() + 7) // 8

    def test_observe_flow_override_wins(self):
        FLOW_ACCOUNTS.arm()
        emitter = QuackEmitter(4, flow="default")
        emitter.observe(1, now=0.0, flow="override")
        snapshot = FLOW_ACCOUNTS.snapshot()
        assert snapshot["flows"]["override"]["observed"] == 1
