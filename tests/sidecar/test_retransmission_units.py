"""Unit tests for the in-network retransmission proxies (Section 2.3)."""

import random

import pytest

from repro.netsim.core import Simulator
from repro.netsim.loss import DeterministicLoss
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.sidecar.frequency import AdaptiveFrequency
from repro.sidecar.protocol import ConfigMessage, config_packet
from repro.sidecar.retransmission import (
    ReceiverSideRetxProxy,
    SenderSideRetxProxy,
)


def build_segment(loss_ordinals=frozenset(), quack_every=4):
    """server -- p1 -- p2 -- client with a deterministic lossy middle."""
    sim = Simulator()
    server = Host(sim, "server")
    p1, p2 = Router(sim, "p1"), Router(sim, "p2")
    client = Host(sim, "client")
    build_path(sim, [server, p1, p2, client], [
        HopSpec(bandwidth_bps=50e6, delay_s=0.002),
        HopSpec(bandwidth_bps=50e6, delay_s=0.002,
                loss_up=DeterministicLoss(loss_ordinals)),
        HopSpec(bandwidth_bps=50e6, delay_s=0.002),
    ])
    sender_proxy = SenderSideRetxProxy(sim, p1, peer_proxy="p2",
                                       client="client", flow_id="f",
                                       threshold=8, retune_period_s=0.05)
    receiver_proxy = ReceiverSideRetxProxy(
        sim, p2, peer_proxy="p1", client="client", flow_id="f",
        threshold=8, policy=AdaptiveFrequency(initial_every=quack_every,
                                              min_every=2))
    received = []
    client.add_handler(PacketKind.DATA, received.append)
    return sim, server, p1, p2, client, sender_proxy, receiver_proxy, received


def send_data(sim, server, count, start=0, size=1000):
    factory_key = b"retx-test"
    from repro.ids import IdentifierFactory
    factory = IdentifierFactory(factory_key)
    for i in range(start, start + count):
        packet = Packet(src="server", dst="client", size_bytes=size,
                        kind=PacketKind.DATA,
                        identifier=factory.identifier(i), flow_id="f")
        sim.schedule(i * 0.001, server.send, packet)


class TestLocalRepair:
    def test_lost_packet_retransmitted_locally(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment(
            loss_ordinals={2})
        send_data(sim, server, 12)
        sim.run(until=2)
        # All 12 packets arrive despite the loss: #2 was repaired by p1.
        assert len(received) == 12
        assert sp.stats.retransmitted == 1
        assert sp.stats.decode_failures == 0

    def test_repeatedly_lost_packet_retried(self):
        # Ordinals on the lossy link: the retransmission is the 12th
        # packet crossing, so drop it too.  Later traffic must follow for
        # the re-loss to decode as interior-missing (a trailing loss
        # stays "in transit" until more packets arrive -- the documented
        # Section 3.3 semantics).
        sim, server, p1, p2, client, sp, rp, received = build_segment(
            loss_ordinals={2, 12})
        send_data(sim, server, 12)
        sim.schedule(0.5, send_data, sim, server, 8, 12)
        sim.run(until=3)
        assert len(received) == 20
        assert sp.stats.retransmitted == 2

    def test_no_loss_no_retransmissions(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        send_data(sim, server, 20)
        sim.run(until=2)
        assert len(received) == 20
        assert sp.stats.retransmitted == 0
        assert sp.stats.confirmed > 0

    def test_log_drains_after_confirmation(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        send_data(sim, server, 16)
        sim.run(until=2)
        # Only the tail that never hit a quACK boundary stays logged.
        assert sp.consumer.outstanding <= 4

    def test_loss_ratio_observed(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment(
            loss_ordinals=set(range(0, 40, 10)))
        send_data(sim, server, 40)
        sim.run(until=2)
        assert 0.0 < sp.observed_loss_ratio() <= 0.3


class TestAdaptiveCadence:
    def test_retune_message_applied(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        message = ConfigMessage(flow_id="f", every_n=64)
        p1.send(config_packet("p1", "p2", message, 0.0))
        sim.run(until=1)
        assert rp.policy.every_n == 64
        assert rp.retunes_applied == 1

    def test_retune_clamped_to_policy_bounds(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        message = ConfigMessage(flow_id="f", every_n=10_000)
        p1.send(config_packet("p1", "p2", message, 0.0))
        sim.run(until=1)
        assert rp.policy.every_n == rp.policy.max_every

    def test_proxy_retunes_on_its_own(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        send_data(sim, server, 80)
        sim.run(until=3)
        # Enough traffic crossed (>=50 outcomes) for a retune round trip.
        assert sp.stats.retunes_sent >= 1
        assert rp.retunes_applied >= 1
        # Clean link -> cadence relaxes toward max_every.
        assert rp.policy.every_n > 4

    def test_other_flows_ignored(self):
        sim, server, p1, p2, client, sp, rp, received = build_segment()
        message = ConfigMessage(flow_id="other", every_n=64)
        p1.send(config_packet("p1", "p2", message, 0.0))
        sim.run(until=1)
        assert rp.retunes_applied == 0


class TestBufferBound:
    def test_eviction_under_pressure(self):
        sim = Simulator()
        server = Host(sim, "server")
        p1, p2 = Router(sim, "p1"), Router(sim, "p2")
        client = Host(sim, "client")
        build_path(sim, [server, p1, p2, client],
                   [HopSpec(), HopSpec(), HopSpec()])
        proxy = SenderSideRetxProxy(sim, p1, peer_proxy="p2",
                                    client="client", flow_id="f",
                                    threshold=8, max_buffer=10)
        client.add_handler(PacketKind.DATA, lambda p: None)
        send_data(sim, server, 30)
        sim.run(until=2)
        assert proxy.stats.evicted > 0
        assert proxy.consumer.outstanding <= 10
