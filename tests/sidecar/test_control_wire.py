"""The control-message wire format, its checksum, and both frame versions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.sidecar.protocol import (
    TRANSCRIPT_BYTES,
    ConfigMessage,
    HelloAckMessage,
    HelloMessage,
    ResetMessage,
    ResumeMessage,
    VersionSwitchMessage,
    decode_control,
    encode_control,
    parse_control,
)


class TestRoundTrip:
    def test_reset(self):
        message = ResetMessage(flow_id="flow0", epoch=7)
        assert decode_control(encode_control(message)) == message

    def test_config_full(self):
        message = ConfigMessage(flow_id="f", every_n=64,
                                interval_s=0.025, threshold=20)
        decoded = decode_control(encode_control(message))
        assert decoded.every_n == 64
        assert decoded.interval_s == pytest.approx(0.025)
        assert decoded.threshold == 20

    def test_config_absent_fields(self):
        message = ConfigMessage(flow_id="f")
        decoded = decode_control(encode_control(message))
        assert decoded.every_n is None
        assert decoded.interval_s is None
        assert decoded.threshold is None

    def test_unicode_flow_id(self):
        message = ResetMessage(flow_id="flöw-0", epoch=1)
        assert decode_control(encode_control(message)).flow_id == "flöw-0"

    def test_resume(self):
        message = ResumeMessage(flow_id="flow0", epoch=2, count=1234)
        assert decode_control(encode_control(message)) == message

    def test_hello(self):
        message = HelloMessage(flow_id="flow0", min_version=1, max_version=2,
                               threshold=20, bits=32, interval_us=25_000,
                               features=7)
        assert decode_control(encode_control(message)) == message

    def test_hello_ack(self):
        message = HelloAckMessage(flow_id="flow0", version=2, threshold=20,
                                  bits=32, interval_us=0, features=7,
                                  transcript=bytes(range(TRANSCRIPT_BYTES)))
        assert decode_control(encode_control(message)) == message

    def test_hello_ack_rejects_wrong_transcript_size(self):
        message = HelloAckMessage(flow_id="f", version=1, threshold=1,
                                  bits=8, interval_us=0, features=0,
                                  transcript=b"short")
        with pytest.raises(WireFormatError, match="transcript"):
            encode_control(message)

    def test_version_switch(self):
        message = VersionSwitchMessage(flow_id="flow0", version=2, epoch=3)
        assert decode_control(encode_control(message)) == message

    def test_config_interval_round_trips_exactly(self):
        # The encoder rounds to the nearest microsecond instead of
        # truncating, so any us-quantized interval survives unchanged.
        for us in (1, 42_500, 999_999, 1_000_001, 60_000_000):
            message = ConfigMessage(flow_id="f", interval_s=us / 1e6)
            decoded = decode_control(encode_control(message))
            assert decoded.interval_s == message.interval_s


_ALL_MESSAGES = (
    ResetMessage(flow_id="flow0", epoch=7),
    ConfigMessage(flow_id="flow0", every_n=64, interval_s=0.025,
                  threshold=20),
    ResumeMessage(flow_id="flow0", epoch=2, count=1234),
    HelloMessage(flow_id="flow0", min_version=1, max_version=2,
                 threshold=20, bits=32, interval_us=0, features=7),
    HelloAckMessage(flow_id="flow0", version=2, threshold=20, bits=32,
                    interval_us=0, features=7,
                    transcript=bytes(TRANSCRIPT_BYTES)),
    VersionSwitchMessage(flow_id="flow0", version=2, epoch=0),
)


class TestFrameVersions:
    @pytest.mark.parametrize(
        "message", _ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_every_type_round_trips_under_v2(self, message):
        frame = encode_control(message, version=2, features=0x07)
        decoded, version, features = parse_control(frame)
        assert decoded == message
        assert (version, features) == (2, 0x07)

    @pytest.mark.parametrize(
        "message", _ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_v1_carries_no_features(self, message):
        _, version, features = parse_control(encode_control(message))
        assert (version, features) == (1, 0)

    def test_v2_costs_exactly_one_byte(self):
        message = ResetMessage(flow_id="flow0", epoch=1)
        assert len(encode_control(message, version=2)) \
            == len(encode_control(message)) + 1

    def test_features_need_v2(self):
        with pytest.raises(WireFormatError, match="need"):
            encode_control(ResetMessage("f", 1), version=1, features=1)

    def test_features_wider_than_a_byte_rejected(self):
        with pytest.raises(WireFormatError, match="exceed"):
            encode_control(ResetMessage("f", 1), version=2, features=0x100)

    def test_unsupported_version_names_format_and_range(self):
        with pytest.raises(WireFormatError,
                           match=r"control frame: unsupported version 3 "
                                 r"\(supported 1\.\.2\)"):
            encode_control(ResetMessage("f", 1), version=3)


# Strategies over every control-message shape, for the property tests.
# Intervals are quantized to the wire's microsecond grid so round trips
# can be asserted *exact*, not approximate.
_flow_ids = st.text(max_size=24)
_u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
_u16 = st.integers(min_value=0, max_value=2 ** 16 - 1)
_u8 = st.integers(min_value=0, max_value=255)
_intervals = st.integers(min_value=0, max_value=60_000_000) \
    .map(lambda us: us / 1e6)
_control_messages = st.one_of(
    st.builds(ResetMessage, flow_id=_flow_ids, epoch=_u32),
    st.builds(ResumeMessage, flow_id=_flow_ids, epoch=_u32, count=_u32),
    st.builds(ConfigMessage, flow_id=_flow_ids,
              every_n=st.none() | st.integers(min_value=0,
                                              max_value=0xFFFFFFFE),
              interval_s=st.none() | _intervals,
              threshold=st.none() | st.integers(min_value=0,
                                                max_value=0xFFFFFFFE)),
    st.builds(HelloMessage, flow_id=_flow_ids, min_version=_u8,
              max_version=_u8, threshold=_u16, bits=_u8,
              interval_us=_u32, features=_u32),
    st.builds(HelloAckMessage, flow_id=_flow_ids, version=_u8,
              threshold=_u16, bits=_u8, interval_us=_u32, features=_u32,
              transcript=st.binary(min_size=TRANSCRIPT_BYTES,
                                   max_size=TRANSCRIPT_BYTES)),
    st.builds(VersionSwitchMessage, flow_id=_flow_ids, version=_u8,
              epoch=_u32))


class TestProperties:
    @given(message=_control_messages,
           version=st.sampled_from((1, 2)), features=_u8)
    @settings(max_examples=200)
    def test_every_message_round_trips_exactly(self, message, version,
                                               features):
        # Exact equality, interval_s included: the microsecond grid of
        # the strategies matches the wire's, and the encoder rounds.
        frame = encode_control(message, version=version,
                               features=features if version >= 2 else 0)
        decoded, got_version, got_features = parse_control(frame)
        assert decoded == message
        assert got_version == version
        assert got_features == (features if version >= 2 else 0)

    @given(message=_control_messages,
           cut=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150)
    def test_any_truncation_raises(self, message, cut):
        frame = encode_control(message)
        with pytest.raises(WireFormatError):
            decode_control(frame[:cut % len(frame)])

    @given(message=_control_messages,
           position=st.integers(min_value=0, max_value=10_000),
           mask=st.integers(min_value=1, max_value=255))
    @settings(max_examples=150)
    def test_any_bit_flip_raises(self, message, position, mask):
        frame = bytearray(encode_control(message))
        frame[position % len(frame)] ^= mask
        with pytest.raises(WireFormatError):
            decode_control(bytes(frame))

    @given(blob=st.binary(min_size=0, max_size=120))
    @settings(max_examples=150)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decoded = decode_control(blob)
        except WireFormatError:
            return
        assert isinstance(decoded,
                          (ResetMessage, ConfigMessage, ResumeMessage,
                           HelloMessage, HelloAckMessage,
                           VersionSwitchMessage))


class TestMalformed:
    def test_every_truncation_fails(self):
        frame = encode_control(ResetMessage(flow_id="flow0", epoch=3))
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_control(frame[:cut])

    def test_every_single_bit_flip_is_caught(self):
        frame = encode_control(ConfigMessage(flow_id="flow0", every_n=4))
        for position in range(len(frame) * 8):
            mangled = bytearray(frame)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_control(bytes(mangled))

    def test_bad_magic(self):
        frame = bytearray(encode_control(ResetMessage("f", 1)))
        frame[0] = ord("x")
        import zlib
        forged = bytes(frame[:-4]) \
            + zlib.crc32(bytes(frame[:-4])).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="magic"):
            decode_control(forged)

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireFormatError, match="cannot serialize"):
            encode_control("not a control message")
