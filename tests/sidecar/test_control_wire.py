"""The control-message wire format (reset/config) and its checksum."""

import pytest

from repro.errors import WireFormatError
from repro.sidecar.protocol import (
    ConfigMessage,
    ResetMessage,
    decode_control,
    encode_control,
)


class TestRoundTrip:
    def test_reset(self):
        message = ResetMessage(flow_id="flow0", epoch=7)
        assert decode_control(encode_control(message)) == message

    def test_config_full(self):
        message = ConfigMessage(flow_id="f", every_n=64,
                                interval_s=0.025, threshold=20)
        decoded = decode_control(encode_control(message))
        assert decoded.every_n == 64
        assert decoded.interval_s == pytest.approx(0.025)
        assert decoded.threshold == 20

    def test_config_absent_fields(self):
        message = ConfigMessage(flow_id="f")
        decoded = decode_control(encode_control(message))
        assert decoded.every_n is None
        assert decoded.interval_s is None
        assert decoded.threshold is None

    def test_unicode_flow_id(self):
        message = ResetMessage(flow_id="flöw-0", epoch=1)
        assert decode_control(encode_control(message)).flow_id == "flöw-0"


class TestMalformed:
    def test_every_truncation_fails(self):
        frame = encode_control(ResetMessage(flow_id="flow0", epoch=3))
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_control(frame[:cut])

    def test_every_single_bit_flip_is_caught(self):
        frame = encode_control(ConfigMessage(flow_id="flow0", every_n=4))
        for position in range(len(frame) * 8):
            mangled = bytearray(frame)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_control(bytes(mangled))

    def test_bad_magic(self):
        frame = bytearray(encode_control(ResetMessage("f", 1)))
        frame[0] = ord("x")
        import zlib
        forged = bytes(frame[:-4]) \
            + zlib.crc32(bytes(frame[:-4])).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="magic"):
            decode_control(forged)

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireFormatError, match="cannot serialize"):
            encode_control("not a control message")
