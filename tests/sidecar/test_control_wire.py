"""The control-message wire format (reset/config/resume), its checksum."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.sidecar.protocol import (
    ConfigMessage,
    ResetMessage,
    ResumeMessage,
    decode_control,
    encode_control,
)


class TestRoundTrip:
    def test_reset(self):
        message = ResetMessage(flow_id="flow0", epoch=7)
        assert decode_control(encode_control(message)) == message

    def test_config_full(self):
        message = ConfigMessage(flow_id="f", every_n=64,
                                interval_s=0.025, threshold=20)
        decoded = decode_control(encode_control(message))
        assert decoded.every_n == 64
        assert decoded.interval_s == pytest.approx(0.025)
        assert decoded.threshold == 20

    def test_config_absent_fields(self):
        message = ConfigMessage(flow_id="f")
        decoded = decode_control(encode_control(message))
        assert decoded.every_n is None
        assert decoded.interval_s is None
        assert decoded.threshold is None

    def test_unicode_flow_id(self):
        message = ResetMessage(flow_id="flöw-0", epoch=1)
        assert decode_control(encode_control(message)).flow_id == "flöw-0"

    def test_resume(self):
        message = ResumeMessage(flow_id="flow0", epoch=2, count=1234)
        assert decode_control(encode_control(message)) == message


# Strategies over every control-message shape, for the property tests.
_flow_ids = st.text(max_size=24)
_u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
_control_messages = st.one_of(
    st.builds(ResetMessage, flow_id=_flow_ids, epoch=_u32),
    st.builds(ResumeMessage, flow_id=_flow_ids, epoch=_u32, count=_u32),
    st.builds(ConfigMessage, flow_id=_flow_ids,
              every_n=st.none() | st.integers(min_value=0,
                                              max_value=0xFFFFFFFE),
              interval_s=st.none() | st.floats(min_value=0.0, max_value=60.0,
                                               allow_nan=False),
              threshold=st.none() | st.integers(min_value=0,
                                                max_value=0xFFFFFFFE)))


class TestProperties:
    @given(message=_control_messages)
    @settings(max_examples=150)
    def test_every_message_round_trips(self, message):
        decoded = decode_control(encode_control(message))
        assert type(decoded) is type(message)
        assert decoded.flow_id == message.flow_id
        if isinstance(message, ConfigMessage):
            assert decoded.every_n == message.every_n
            assert decoded.threshold == message.threshold
            if message.interval_s is None:
                assert decoded.interval_s is None
            else:
                assert decoded.interval_s == pytest.approx(
                    message.interval_s, abs=1e-4)
        else:
            assert decoded == message

    @given(message=_control_messages,
           cut=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150)
    def test_any_truncation_raises(self, message, cut):
        frame = encode_control(message)
        with pytest.raises(WireFormatError):
            decode_control(frame[:cut % len(frame)])

    @given(message=_control_messages,
           position=st.integers(min_value=0, max_value=10_000),
           mask=st.integers(min_value=1, max_value=255))
    @settings(max_examples=150)
    def test_any_bit_flip_raises(self, message, position, mask):
        frame = bytearray(encode_control(message))
        frame[position % len(frame)] ^= mask
        with pytest.raises(WireFormatError):
            decode_control(bytes(frame))

    @given(blob=st.binary(min_size=0, max_size=120))
    @settings(max_examples=150)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decoded = decode_control(blob)
        except WireFormatError:
            return
        assert isinstance(decoded,
                          (ResetMessage, ConfigMessage, ResumeMessage))


class TestMalformed:
    def test_every_truncation_fails(self):
        frame = encode_control(ResetMessage(flow_id="flow0", epoch=3))
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_control(frame[:cut])

    def test_every_single_bit_flip_is_caught(self):
        frame = encode_control(ConfigMessage(flow_id="flow0", every_n=4))
        for position in range(len(frame) * 8):
            mangled = bytearray(frame)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_control(bytes(mangled))

    def test_bad_magic(self):
        frame = bytearray(encode_control(ResetMessage("f", 1)))
        frame[0] = ord("x")
        import zlib
        forged = bytes(frame[:-4]) \
            + zlib.crc32(bytes(frame[:-4])).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="magic"):
            decode_control(forged)

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireFormatError, match="cannot serialize"):
            encode_control("not a control message")
