"""E7/E9 under bursty (Gilbert-Elliott) loss -- the wireless case.

The sidecar story is motivated by wireless access links whose loss is
bursty, not i.i.d.  These tests run the protocol scenarios under a
Gilbert-Elliott channel at the same average rate as the random-loss
defaults and check that the papers' qualitative claims still hold.
"""

import pytest

from repro.sidecar.cc_division import make_loss_model, run_cc_division
from repro.sidecar.retransmission import run_retransmission

TOTAL = 400_000
LOSS = 0.02


class TestMakeLossModel:
    def test_random(self):
        import random
        model = make_loss_model(0.1, "random", random.Random(1))
        from repro.netsim.loss import BernoulliLoss
        assert isinstance(model, BernoulliLoss)
        assert model.rate == 0.1

    def test_bursty_steady_state_matches_target(self):
        import random
        model = make_loss_model(0.05, "bursty", random.Random(1))
        assert model.steady_state_loss_rate() == pytest.approx(0.05,
                                                               rel=0.01)

    def test_bursty_zero_loss(self):
        import random
        model = make_loss_model(0.0, "bursty", random.Random(1))
        from repro.netsim.loss import BernoulliLoss
        assert isinstance(model, BernoulliLoss)

    def test_unknown_process(self):
        import random
        with pytest.raises(ValueError):
            make_loss_model(0.1, "chaotic", random.Random(1))


@pytest.mark.slow
class TestCcDivisionBursty:
    @pytest.fixture(scope="class")
    def results(self):
        baseline = run_cc_division(total_bytes=TOTAL, loss_rate=LOSS,
                                   sidecar=False, seed=11,
                                   loss_process="bursty")
        divided = run_cc_division(total_bytes=TOTAL, loss_rate=LOSS,
                                  sidecar=True, seed=11,
                                  loss_process="bursty")
        return baseline, divided

    def test_completes_under_bursts(self, results):
        baseline, divided = results
        assert baseline.completed and divided.completed

    def test_division_still_wins(self, results):
        baseline, divided = results
        assert divided.completion_time < baseline.completion_time

    def test_session_survives_bursts(self, results):
        """t=20 with once-per-RTT quACKs must ride out 50%-lossy bad
        states at this average rate (the E11 headroom result, in vivo)."""
        _, divided = results
        assert divided.server_sidecar_failures == 0
        assert divided.proxy_stats.decode_failures == 0


@pytest.mark.slow
class TestRetransmissionBursty:
    def test_local_repair_wins_under_bursts(self):
        e2e = run_retransmission(total_bytes=TOTAL, loss_rate=0.05,
                                 innet_retx=False, seed=13,
                                 loss_process="bursty")
        local = run_retransmission(total_bytes=TOTAL, loss_rate=0.05,
                                   innet_retx=True, reorder_threshold=64,
                                   seed=13, loss_process="bursty")
        assert e2e.completed and local.completed
        assert local.completion_time < e2e.completion_time
        assert local.proxy_retransmissions > 0
