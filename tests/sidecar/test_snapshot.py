"""Checkpoint framing, the store, and post-resume gap reconciliation.

A checkpoint is the emitter's accumulator on stable storage: whatever
bytes come back at restore time must either reproduce the accumulator
exactly or raise WireFormatError -- a torn write or bit-rotted file
cold-starts the emitter, never restores garbage into the session.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.consumer import QuackConsumer
from repro.sidecar.snapshot import (
    CheckpointStore,
    EmitterCheckpoint,
    decode_checkpoint,
    encode_checkpoint,
)


def make_checkpoint(flow_id: str = "flow0", epoch: int = 3,
                    taken_at: float = 1.25,
                    values: tuple = (11, 22, 33)) -> EmitterCheckpoint:
    from repro.quack import wire

    quack = PowerSumQuack(threshold=4)
    quack.insert_many(values)
    frame = wire.encode(quack, include_count=True, include_checksum=True)
    return EmitterCheckpoint(flow_id=flow_id, epoch=epoch,
                             taken_at=taken_at, frame=frame)


class TestRoundTrip:
    def test_checkpoint_round_trips(self):
        checkpoint = make_checkpoint()
        decoded = decode_checkpoint(encode_checkpoint(checkpoint))
        assert decoded == checkpoint

    def test_restored_accumulator_matches(self):
        checkpoint = make_checkpoint(values=(7, 8, 9, 10))
        restored = decode_checkpoint(encode_checkpoint(checkpoint)).quack()
        assert restored.count == 4
        original = PowerSumQuack(threshold=4)
        original.insert_many((7, 8, 9, 10))
        assert restored.power_sums == original.power_sums

    def test_unicode_flow_id(self):
        checkpoint = make_checkpoint(flow_id="flöw-0")
        assert decode_checkpoint(
            encode_checkpoint(checkpoint)).flow_id == "flöw-0"

    @given(flow_id=st.text(max_size=20),
           epoch=st.integers(min_value=0, max_value=2 ** 32 - 1),
           taken_at=st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
           values=st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                           max_size=10))
    @settings(max_examples=100)
    def test_any_checkpoint_round_trips(self, flow_id, epoch, taken_at,
                                        values):
        from repro.quack import wire

        quack = PowerSumQuack(threshold=4)
        quack.insert_many(values)
        frame = wire.encode(quack, include_count=True, include_checksum=True)
        checkpoint = EmitterCheckpoint(flow_id=flow_id, epoch=epoch,
                                       taken_at=taken_at, frame=frame)
        decoded = decode_checkpoint(encode_checkpoint(checkpoint))
        assert decoded == checkpoint
        assert decoded.quack().count == len(values) % (1 << 16)


class TestVersionedCheckpoints:
    """Checkpoint v2: negotiated session state survives the restart."""

    def test_v2_round_trips_negotiated_state(self):
        checkpoint = make_checkpoint()
        negotiated = EmitterCheckpoint(
            flow_id=checkpoint.flow_id, epoch=checkpoint.epoch,
            taken_at=checkpoint.taken_at, frame=checkpoint.frame,
            wire_version=2, features=0x07)
        decoded = decode_checkpoint(encode_checkpoint(negotiated))
        assert decoded == negotiated
        assert decoded.wire_version == 2
        assert decoded.features == 0x07

    def test_v1_checkpoint_restores_an_unnegotiated_session(self):
        blob = encode_checkpoint(make_checkpoint(), version=1)
        decoded = decode_checkpoint(blob)
        assert decoded.wire_version == 1
        assert decoded.features == 0

    def test_encode_picks_the_version_automatically(self):
        plain = make_checkpoint()
        negotiated = EmitterCheckpoint(
            flow_id=plain.flow_id, epoch=plain.epoch,
            taken_at=plain.taken_at, frame=plain.frame,
            wire_version=2, features=0x07)
        assert encode_checkpoint(plain)[2] == 1
        assert encode_checkpoint(negotiated)[2] == 2

    def test_v2_costs_exactly_two_bytes(self):
        checkpoint = make_checkpoint()
        v1 = encode_checkpoint(checkpoint, version=1)
        v2 = encode_checkpoint(checkpoint, version=2)
        assert len(v2) == len(v1) + 2

    def test_v1_refuses_to_drop_negotiated_state(self):
        checkpoint = make_checkpoint()
        negotiated = EmitterCheckpoint(
            flow_id=checkpoint.flow_id, epoch=checkpoint.epoch,
            taken_at=checkpoint.taken_at, frame=checkpoint.frame,
            wire_version=2, features=0x07)
        with pytest.raises(WireFormatError, match="needs version >= 2"):
            encode_checkpoint(negotiated, version=1)

    def test_unsupported_version_names_format_and_range(self):
        with pytest.raises(WireFormatError,
                           match=r"checkpoint: unsupported version 7 "
                                 r"\(supported 1\.\.2\)"):
            encode_checkpoint(make_checkpoint(), version=7)

    def test_v2_restored_accumulator_matches(self):
        checkpoint = make_checkpoint(values=(5, 6, 7))
        negotiated = EmitterCheckpoint(
            flow_id=checkpoint.flow_id, epoch=checkpoint.epoch,
            taken_at=checkpoint.taken_at, frame=checkpoint.frame,
            wire_version=2, features=0x03)
        restored = decode_checkpoint(encode_checkpoint(negotiated)).quack()
        assert restored.count == 3

    def test_every_v2_truncation_and_bit_flip_fails(self):
        checkpoint = make_checkpoint()
        blob = encode_checkpoint(EmitterCheckpoint(
            flow_id=checkpoint.flow_id, epoch=checkpoint.epoch,
            taken_at=checkpoint.taken_at, frame=checkpoint.frame,
            wire_version=2, features=0x07))
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                decode_checkpoint(blob[:cut])
        for position in range(len(blob) * 8):
            mangled = bytearray(blob)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_checkpoint(bytes(mangled))


class TestMalformed:
    def test_every_truncation_fails(self):
        blob = encode_checkpoint(make_checkpoint())
        for cut in range(len(blob)):
            with pytest.raises(WireFormatError):
                decode_checkpoint(blob[:cut])

    def test_every_single_bit_flip_is_caught(self):
        blob = encode_checkpoint(make_checkpoint())
        for position in range(len(blob) * 8):
            mangled = bytearray(blob)
            mangled[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_checkpoint(bytes(mangled))

    def test_corrupt_inner_frame_fails_at_quack(self):
        checkpoint = make_checkpoint()
        bad = EmitterCheckpoint(
            flow_id=checkpoint.flow_id, epoch=checkpoint.epoch,
            taken_at=checkpoint.taken_at,
            frame=checkpoint.frame[:-1] + b"\x00")
        # The outer framing is re-CRC'd over the bad frame, so the outer
        # parse succeeds and the inner wire decode catches it.
        decoded = decode_checkpoint(encode_checkpoint(bad))
        with pytest.raises(WireFormatError):
            decoded.quack()

    @given(blob=st.binary(min_size=0, max_size=200))
    @settings(max_examples=150)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decoded = decode_checkpoint(blob)
        except WireFormatError:
            return
        assert isinstance(decoded, EmitterCheckpoint)


class TestCheckpointStore:
    def test_latest_wins(self):
        store = CheckpointStore()
        assert store.load() is None
        store.save(b"one")
        store.save(b"two")
        assert store.load() == b"two"
        assert store.writes == 2
        assert store.loads == 1

    def test_clear_models_a_lost_disk(self):
        store = CheckpointStore()
        store.save(b"data")
        store.clear()
        assert store.load() is None


class TestGapReconciliation:
    """The consumer's post-resume reconciliation of the checkpoint gap."""

    def run_confirmed(self, consumer: QuackConsumer,
                      emitter: PowerSumQuack, identifiers, now: float):
        for identifier in identifiers:
            consumer.record_send(identifier, meta=identifier, now=now)
            emitter.insert(identifier)
        return consumer.on_quack(emitter.copy(), now)

    def test_gap_identifiers_retire_without_loss_signals(self):
        consumer = QuackConsumer(threshold=8)
        emitter = PowerSumQuack(threshold=8)
        # Checkpoint taken here: the restored accumulator will hold 1..4.
        feedback = self.run_confirmed(consumer, emitter, (1, 2, 3, 4), 0.0)
        assert feedback.received == [1, 2, 3, 4]
        restored = emitter.copy()
        # Gap: 5 and 6 observed and *confirmed* after the checkpoint.
        feedback = self.run_confirmed(consumer, emitter, (5, 6), 0.1)
        assert feedback.received == [5, 6]
        # Crash + restore: the emitter continues from the stale state.
        emitter = restored
        consumer.arm_reconciliation()
        feedback = self.run_confirmed(consumer, emitter, (7, 8), 0.2)
        assert feedback.ok
        assert feedback.reconciled == 2  # 5 and 6 retired from the sums
        assert feedback.lost == []
        assert feedback.received == [7, 8]
        assert consumer.stats.gap_reconciled == 2
        assert consumer.stats.declared_lost == 0
        # States agree exactly again: the next decode is clean and empty.
        feedback = self.run_confirmed(consumer, emitter, (9,), 0.3)
        assert feedback.ok and feedback.reconciled == 0
        assert feedback.received == [9]

    def test_reconciliation_is_one_shot(self):
        consumer = QuackConsumer(threshold=8)
        emitter = PowerSumQuack(threshold=8)
        consumer.arm_reconciliation()
        feedback = self.run_confirmed(consumer, emitter, (1, 2), 0.0)
        assert feedback.ok and feedback.reconciled == 0
        assert not consumer._reconcile_pending

    def test_reset_clears_reconciliation_state(self):
        consumer = QuackConsumer(threshold=8)
        emitter = PowerSumQuack(threshold=8)
        self.run_confirmed(consumer, emitter, (1, 2), 0.0)
        consumer.arm_reconciliation()
        consumer.reset()
        assert not consumer._reconcile_pending
        assert not consumer._recent_confirmed

    def test_without_arming_a_gap_is_still_inconsistent(self):
        consumer = QuackConsumer(threshold=8)
        emitter = PowerSumQuack(threshold=8)
        self.run_confirmed(consumer, emitter, (1, 2, 3, 4), 0.0)
        restored = emitter.copy()
        self.run_confirmed(consumer, emitter, (5, 6), 0.1)
        emitter = restored  # crash without a resume handshake
        feedback = self.run_confirmed(consumer, emitter, (7,), 0.2)
        assert not feedback.ok  # the defense sees forged-looking evidence
