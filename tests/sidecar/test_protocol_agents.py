"""Tests for sidecar wire messages and the host/proxy agents."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.agents import HostEmitterAgent, ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import IntervalFrequency, PacketCountFrequency
from repro.sidecar.protocol import (
    ConfigMessage,
    QuackMessage,
    config_packet,
    quack_packet,
)
from repro.transport.connection import ReceiverConnection, SenderConnection


class TestProtocolMessages:
    def test_quack_packet_roundtrip(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([7, 8, 9])
        packet = quack_packet("client", "proxy", quack, "flow0", now=1.5)
        assert packet.kind is PacketKind.QUACK
        assert packet.src == "client" and packet.dst == "proxy"
        assert packet.identifier is None
        message = packet.payload
        assert isinstance(message, QuackMessage)
        assert message.quack() == quack

    def test_quack_packet_size_tracks_payload(self):
        small = PowerSumQuack(threshold=4)
        large = PowerSumQuack(threshold=40)
        p_small = quack_packet("a", "b", small, "f", 0.0)
        p_large = quack_packet("a", "b", large, "f", 0.0)
        assert p_large.size_bytes - p_small.size_bytes == 36 * 4

    def test_quack_packet_without_count(self):
        quack = PowerSumQuack(threshold=4)
        quack.insert_many([1, 2, 3])
        packet = quack_packet("a", "b", quack, "f", 0.0, include_count=False)
        message = packet.payload
        assert message.quack(implicit_count=3) == quack

    def test_quack_message_rejects_non_power_sum(self):
        from repro.quack import wire
        from repro.quack.strawman import EchoQuack
        message = QuackMessage(frame=wire.encode(EchoQuack()), flow_id="f")
        with pytest.raises(TypeError):
            message.quack()

    def test_config_packet(self):
        message = ConfigMessage(flow_id="f", every_n=64)
        packet = config_packet("p1", "p2", message, now=2.0)
        assert packet.kind is PacketKind.CONTROL
        assert packet.payload.every_n == 64


def build_scenario(total_bytes=1460 * 40):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.005),
                HopSpec(bandwidth_bps=20e6, delay_s=0.005)])
    receiver = ReceiverConnection(sim, client, "server", total_bytes)
    sender = SenderConnection(sim, server, "client", total_bytes)
    return sim, server, proxy, client, sender, receiver


class TestHostEmitterAgent:
    def test_emits_quacks_toward_peer(self):
        sim, server, proxy, client, sender, receiver = build_scenario()
        agent = HostEmitterAgent(sim, client, peer="proxy", flow_id="flow0",
                                 policy=PacketCountFrequency(8), threshold=8)
        seen = []
        proxy.add_tap(lambda p: seen.append(p)
                      if p.kind is PacketKind.QUACK else None)
        sender.start()
        sim.run(until=10)
        assert receiver.complete
        assert agent.quacks_sent >= 4
        assert len(seen) == agent.quacks_sent

    def test_interval_timer_flushes_partial_batches(self):
        sim, server, proxy, client, sender, receiver = build_scenario(
            total_bytes=1460 * 3)
        agent = HostEmitterAgent(sim, client, peer="proxy", flow_id="flow0",
                                 policy=IntervalFrequency(0.020), threshold=8)
        sender.start()
        sim.run(until=1.0)
        assert receiver.complete
        # 3 packets never hit a packet-count trigger; the timer must fire.
        assert agent.quacks_sent >= 1

    def test_ignores_other_flows(self):
        sim, server, proxy, client, sender, receiver = build_scenario()
        agent = HostEmitterAgent(sim, client, peer="proxy",
                                 flow_id="other-flow",
                                 policy=PacketCountFrequency(1))
        sender.start()
        sim.run(until=5)
        assert agent.quacks_sent == 0


class TestServerSidecar:
    def test_receipts_credit_the_window(self):
        sim, server, proxy, client, sender, receiver = build_scenario()
        tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                              flow_id="flow0",
                              policy=PacketCountFrequency(2), threshold=8)
        sidecar = ServerSidecar(sim, sender, threshold=8, grace=2)
        sender.start()
        sim.run(until=10)
        assert receiver.complete
        assert sidecar.stats.quacks_received > 0
        assert sidecar.stats.decode_failures == 0
        assert sender.stats.sidecar_releases > 0

    def test_consumer_log_drains(self):
        sim, server, proxy, client, sender, receiver = build_scenario()
        ProxyEmitterTap(sim, proxy, server="server", client="client",
                        flow_id="flow0", policy=PacketCountFrequency(2),
                        threshold=8)
        sidecar = ServerSidecar(sim, sender, threshold=8, grace=2)
        sender.start()
        sim.run(until=10)
        # Everything was delivered and quACKed; nearly nothing outstanding
        # (at most the final sub-batch that never triggered a quACK).
        assert sidecar.consumer.outstanding <= 2


class TestProxyEmitterTap:
    def test_only_data_toward_client_counts(self):
        sim, server, proxy, client, sender, receiver = build_scenario()
        tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                              flow_id="flow0",
                              policy=PacketCountFrequency(2), threshold=8)
        # No sidecar library on the server in this test: sink its quACKs.
        server.add_handler(PacketKind.QUACK, lambda p: None)
        sender.start()
        sim.run(until=10)
        assert receiver.complete
        # ACKs flowed through the proxy too, but only DATA was observed.
        assert tap.emitter.stats.observed == receiver.stats.packets_received
