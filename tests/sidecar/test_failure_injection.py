"""Failure injection: the sidecar must degrade, never crash or lie.

Sidecar datagrams cross real networks: they get corrupted, truncated,
duplicated, replayed, and misdelivered.  Because the quACK state is
cumulative, every one of these is recoverable by simply waiting for the
next snapshot -- provided the agents treat bad input as data, not as an
exception.  These tests inject each failure into a live scenario.
"""

import random

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.quack.base import DecodeStatus
from repro.quack.power_sum import PowerSumQuack
from repro.sidecar.agents import ProxyEmitterTap, ServerSidecar
from repro.sidecar.consumer import QuackConsumer
from repro.sidecar.frequency import PacketCountFrequency
from repro.sidecar.protocol import QuackMessage, quack_packet
from repro.transport.connection import ReceiverConnection, SenderConnection


def build_assisted(total=1460 * 80):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.005),
                HopSpec(bandwidth_bps=20e6, delay_s=0.005)])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total)
    tap = ProxyEmitterTap(sim, proxy, server="server", client="client",
                          flow_id="flow0", policy=PacketCountFrequency(4),
                          threshold=16)
    sidecar = ServerSidecar(sim, sender, threshold=16, grace=2,
                            apply_losses=False)
    return sim, server, proxy, sender, receiver, tap, sidecar


def run(sim, sender, receiver, deadline=30.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if sender.complete and receiver.complete:
            break
        if sim.peek_next_time() is None:
            break


class TestCorruptFrames:
    def inject(self, corrupt):
        """Run an assisted transfer with a proxy that mangles quACKs."""
        sim, server, proxy, sender, receiver, tap, sidecar = build_assisted()
        original_send = tap._send
        counter = [0]

        def mangling_send(snapshot):
            counter[0] += 1
            if counter[0] % 3 == 0:  # corrupt every third quACK
                from repro.quack import wire
                frame = bytearray(wire.encode(snapshot))
                corrupt(frame)
                packet = Packet(src=proxy.name, dst="server",
                                size_bytes=28 + len(frame),
                                kind=PacketKind.QUACK, flow_id="flow0",
                                payload=QuackMessage(frame=bytes(frame),
                                                     flow_id="flow0"))
                tap.quacks_sent += 1
                proxy.send(packet)
            else:
                original_send(snapshot)

        tap._send = mangling_send
        sender.start()
        run(sim, sender, receiver)
        return sender, receiver, sidecar

    def test_bitflips_in_power_sums(self):
        def flip(frame):
            frame[-1] ^= 0xFF
            frame[-5] ^= 0x10

        sender, receiver, sidecar = self.inject(flip)
        assert receiver.complete and sender.complete
        assert sidecar.stats.decode_failures > 0      # corruption noticed
        assert sender.stats.sidecar_releases > 0      # clean quacks worked

    def test_truncated_frames(self):
        def truncate(frame):
            del frame[len(frame) // 2:]

        sender, receiver, sidecar = self.inject(truncate)
        assert receiver.complete
        assert sidecar.stats.decode_failures > 0

    def test_garbage_frames(self):
        def garbage(frame):
            frame[:] = b"\xde\xad\xbe\xef" * 4

        sender, receiver, sidecar = self.inject(garbage)
        assert receiver.complete
        assert sidecar.stats.decode_failures > 0

    def test_corrupted_count_field(self):
        def poke_count(frame):
            # Count lives right after the 9-byte header+params prefix.
            frame[9] ^= 0x80

        sender, receiver, sidecar = self.inject(poke_count)
        assert receiver.complete


class TestReplayAndDuplication:
    def test_duplicated_quacks_are_harmless(self):
        """Processing the same cumulative snapshot twice must be a no-op
        the second time (everything already resolved)."""
        consumer = QuackConsumer(threshold=8, grace=1)
        theirs = PowerSumQuack(8)
        for i in range(6):
            consumer.record_send(1000 + i, i, float(i))
            theirs.insert(1000 + i)
        first = consumer.on_quack(theirs.copy(), 6.0)
        assert len(first.received) == 6
        second = consumer.on_quack(theirs.copy(), 6.5)
        assert second.ok
        assert second.received == [] and second.lost == []

    def test_stale_quack_after_progress(self):
        """A delayed (replayed) older snapshot arrives after a newer one
        was already processed: counts go 'backwards'.  The consumer must
        report rather than mis-decode."""
        consumer = QuackConsumer(threshold=8, grace=1)
        theirs = PowerSumQuack(8)
        for i in range(4):
            consumer.record_send(2000 + i, i, float(i))
            theirs.insert(2000 + i)
        stale = theirs.copy()
        for i in range(4, 8):
            consumer.record_send(2000 + i, i, float(i))
            theirs.insert(2000 + i)
        fresh = consumer.on_quack(theirs.copy(), 9.0)
        assert len(fresh.received) == 8
        replayed = consumer.on_quack(stale, 9.5)
        # All entries already resolved; the stale quACK claims 4 are
        # outstanding, which exceeds the (now empty) log.
        assert replayed.status is DecodeStatus.INCONSISTENT


class TestParameterMismatch:
    def test_mismatched_threshold_reported(self):
        consumer = QuackConsumer(threshold=8)
        alien = PowerSumQuack(16)
        feedback = consumer.on_quack(alien, 0.0)
        assert feedback.status is DecodeStatus.INCONSISTENT
        assert consumer.stats.quacks_failed == 1

    def test_mismatched_bits_reported(self):
        consumer = QuackConsumer(threshold=8, bits=32)
        alien = PowerSumQuack(8, bits=16)
        assert consumer.on_quack(alien, 0.0).status \
            is DecodeStatus.INCONSISTENT

    def test_non_quack_object_reported(self):
        consumer = QuackConsumer(threshold=8)
        assert consumer.on_quack("not a quack", 0.0).status \
            is DecodeStatus.INCONSISTENT


class TestMisdelivery:
    def test_quack_for_another_flow_ignored(self):
        sim, server, proxy, sender, receiver, tap, sidecar = build_assisted()
        # Deliver a quACK tagged with a foreign flow id straight to the
        # server host.
        foreign = PowerSumQuack(16)
        foreign.insert(12345)
        packet = quack_packet("elsewhere", "server", foreign,
                              "other-flow", 0.0)
        server.receive(packet)
        assert sidecar.stats.quacks_received == 0
        sender.start()
        run(sim, sender, receiver)
        assert receiver.complete
        assert sidecar.stats.decode_failures == 0
