"""The overload plans: capacity pressure on the shared flow table.

The invariant these scenarios all share (DESIGN.md §16): overload may
take assistance *away* from a flow -- rejection at admission, budget or
clamp eviction, load shedding -- but never corrupt it.  The primary
sender either keeps its quACKs or falls cleanly down the health ladder
to ``E2E_ONLY`` at goodput no worse than the unassisted baseline, with
zero spurious retransmits; a re-admitted flow re-enters through
``RECOVERING`` probation, never straight to ``HEALTHY``.
"""

import pytest

from repro.chaos import (
    DEFAULT_TOTAL,
    BackgroundLoad,
    ChaosSetup,
    MemoryClamp,
    OverloadSpec,
    format_result,
    run_chaos_transfer,
    run_plan,
)
from repro.sidecar.health import HealthState

SEED = 1
#: Full-size transfers: the overload drivers fire between 0.1 s and
#: 1.1 s of simulated time, so the transfer must still be in flight
#: then for eviction/shedding to have anything to take away.
TOTAL = DEFAULT_TOTAL

OVERLOAD_PLANS = ("tenant-burst", "flow-churn-storm", "memory-clamp",
                  "shed-under-adversary")


@pytest.fixture(scope="module")
def results():
    return {name: run_plan(name, seed=SEED, total_bytes=TOTAL)
            for name in OVERLOAD_PLANS}


class TestOverloadPlansHold:
    @pytest.mark.parametrize("name", OVERLOAD_PLANS)
    def test_invariants_hold(self, results, name):
        result = results[name]
        assert result.violations() == [], format_result(result)

    @pytest.mark.parametrize("name", OVERLOAD_PLANS)
    def test_goodput_at_least_unassisted(self, results, name):
        result = results[name]
        assert result.completed
        assert result.baseline_duration_s is not None
        assert result.duration_s <= (result.baseline_duration_s
                                     + result.baseline_slack_s + 1e-9)

    @pytest.mark.parametrize("name", OVERLOAD_PLANS)
    def test_no_spurious_retransmits(self, results, name):
        result = results[name]
        assert result.retransmitted_packets <= result.link_drops

    def test_tenant_burst_is_rejected_not_admitted(self, results):
        result = results["tenant-burst"]
        assert result.flowtable["flows_rejected"] >= 1
        burst = result.overload_drivers["TenantBurst"]
        assert burst["rejected"] > burst["admitted"]
        # Admission control never grew the table past its high water.
        assert result.flowtable["peak_flows"] <= 48

    def test_churn_storm_tears_down_cleanly(self, results):
        result = results["flow-churn-storm"]
        storm = result.overload_drivers["ChurnStorm"]
        assert storm["closed"] > 100
        assert result.flowtable["flows_closed"] == storm["closed"]

    def test_memory_clamp_evicts_the_primary(self, results):
        result = results["memory-clamp"]
        assert result.flowtable["flows_evicted"] >= 1
        # Assistance was removed, never corrupted: the sender walked
        # down to e2e-only and stayed there.
        assert result.health_final == HealthState.E2E_ONLY

    def test_shedding_spares_the_active_primary(self, results):
        result = results["shed-under-adversary"]
        assert result.flowtable["flows_shed"] >= 1
        # The liar got quarantined; shedding itself cost nothing.
        assert result.health_final == HealthState.QUARANTINED


class TestEvictionReadmission:
    """The eviction <-> health-ladder contract, end to end."""

    @pytest.fixture(scope="class")
    def result(self):
        overload = OverloadSpec(
            drivers=[BackgroundLoad(seed=SEED),
                     MemoryClamp(at=0.3, restore_at=0.7, rejoin=True)],
            expect_evictions=True)
        setup = ChaosSetup(name="clamp-rejoin", overload=overload,
                           measure_baseline=True, expect_no_spurious=True)
        return run_chaos_transfer(setup, seed=SEED, total_bytes=TOTAL)

    def test_transfer_completes_and_epochs_converge(self, result):
        assert result.completed
        assert result.emitter_epoch == result.server_epoch

    def test_eviction_degrades_to_e2e_only(self, result):
        states = [transition.new for transition in
                  result.health_transitions]
        assert HealthState.E2E_ONLY in states

    def test_readmission_reenters_via_recovering(self, result):
        # The fresh accumulator forces a count-regression reset; the
        # server must route re-entry through RECOVERING probation,
        # never straight back to HEALTHY.
        states = [transition.new for transition in
                  result.health_transitions]
        fell = states.index(HealthState.E2E_ONLY)
        assert HealthState.RECOVERING in states[fell:]

    def test_no_spurious_retransmits(self, result):
        # The reset pause drops queued datagrams for real; every
        # retransmission is backed by one of those drops.
        assert result.retransmitted_packets <= result.link_drops

    def test_tap_was_evicted_then_readmitted(self, result):
        assert result.emitter_counters["evictions"] >= 1
        assert result.emitter_counters["readmissions"] >= 1
        assert result.emitter_counters["assisted"]
