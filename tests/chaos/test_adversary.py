"""Adversarial plans: the defense invariants, end to end.

Acceptance criteria of the adversarial-defense milestone: under every
adversarial plan the transfer completes at no less than the unassisted
baseline's goodput, the lying sidecar lands in QUARANTINED, no
adversary-induced loss signal is applied after quarantine, and the
adversary never extracts a reset round-trip.  The checkpoint/restore
plan shows the flip side: an honest middlebox that crashes resumes
assistance within one handshake delivery instead of a reset.
"""

import pytest

from repro.chaos import PLANS, format_result, run_plan
from repro.sidecar.health import HealthState

SEED = 1

ADVERSARIAL = tuple(sorted(name for name, plan in PLANS.items()
                           if plan.adversarial))


@pytest.fixture(scope="module")
def results():
    return {name: run_plan(name, seed=SEED)
            for name in ADVERSARIAL + ("crash-restart", "crash-resume")}


class TestAdversarialPlans:
    def test_the_plan_set_is_complete(self):
        assert ADVERSARIAL == ("downgrade-rewrite", "downgrade-strip",
                               "equivocation", "forged-power-sum",
                               "lying-count", "replay",
                               "shed-under-adversary")

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_invariants_hold(self, results, name):
        result = results[name]
        assert result.violations() == [], format_result(result)

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_adversary_actually_tampered(self, results, name):
        # A plan that never forged anything tests nothing.
        assert results[name].faults_tampered > 0

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_lying_sidecar_is_quarantined(self, results, name):
        result = results[name]
        assert result.quarantined_at is not None
        assert result.server_counters["quarantines"] == 1
        assert any(hop.new is HealthState.QUARANTINED
                   for hop in result.health_transitions)

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_goodput_at_least_unassisted_baseline(self, results, name):
        # Negotiating plans get the handshake's link-serialization time
        # as slack -- that traffic shares the forward link with DATA and
        # the unassisted baseline never spends it.
        result = results[name]
        assert result.completed
        assert result.baseline_duration_s is not None
        allowed = result.baseline_duration_s + result.baseline_slack_s
        assert result.duration_s <= allowed + 1e-9
        assert result.goodput_bps \
            >= result.total_bytes * 8 / allowed - 1e-6

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_no_loss_applied_after_quarantine(self, results, name):
        result = results[name]
        applied = result.last_loss_applied_at
        assert applied is None or applied <= result.quarantined_at

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_adversary_extracts_no_resets(self, results, name):
        # Reset farming is a DoS amplifier: the defense must heal
        # without ever granting the adversary a reset round-trip.
        result = results[name]
        assert result.server_counters["resets_initiated"] == 0
        assert result.emitter_counters["resets_applied"] == 0

    @pytest.mark.parametrize("name", ADVERSARIAL)
    def test_signals_were_ledgered(self, results, name):
        result = results[name]
        assert sum(result.signals_by_kind.values()) >= 3
        assert result.server_counters["adversarial_signals"] >= 3


class TestCheckpointResume:
    def test_every_crash_resumes_without_reset(self, results):
        result = results["crash-resume"]
        assert result.violations() == [], format_result(result)
        assert result.crashes == 2
        assert result.emitter_counters["checkpoint_restores"] == 2
        assert result.server_counters["resumes_accepted"] == 2
        assert result.server_counters["resets_initiated"] == 0
        assert result.server_counters["decode_failures"] == 0

    def test_honest_middlebox_is_never_quarantined(self, results):
        result = results["crash-resume"]
        assert result.quarantined_at is None
        assert result.server_counters["quarantines"] == 0
        assert result.server_counters["adversarial_signals"] == 0

    def test_resume_matches_restart_goodput(self, results):
        # The resume path must never be slower than the reset path it
        # replaces, and both complete the transfer.
        restart = results["crash-restart"]
        resume = results["crash-resume"]
        assert resume.completed and restart.completed
        assert resume.duration_s <= restart.duration_s + 1e-9

    def test_restart_heals_by_reset_but_resume_does_not(self, results):
        # The contrast that makes the dwell-time comparison meaningful.
        assert results["crash-restart"].server_counters[
            "resets_initiated"] >= 1
        assert results["crash-resume"].server_counters[
            "resets_initiated"] == 0


class TestResumeTraceAnalytics:
    # The chaos-default transfer size, so both crash windows (0.4 s and
    # 0.9 s) land mid-transfer; run_traced's smaller default completes
    # before the first crash and the comparison would be vacuous.
    TOTAL_BYTES = 1460 * 600

    @pytest.fixture(scope="class")
    def analyses(self):
        from repro import obs
        from repro.obs.analyze import analyze
        from repro.obs.runner import run_traced

        out, drops = {}, {}
        for plan in ("crash-restart", "crash-resume"):
            result = run_traced(plan, seed=SEED,
                                total_bytes=self.TOTAL_BYTES)
            out[plan] = analyze(result.events)
            drops[plan] = sum(1 for event in result.events
                              if event.type == "link.drop")
        obs.TRACER.disable()
        out["link_drops"] = drops
        return out

    @staticmethod
    def _completion(analysis) -> float:
        return max(transfer.completed_at
                   for transfer in analysis.connections.values()
                   if transfer.completed_at is not None)

    @classmethod
    def _off_healthy_dwell(cls, analysis) -> float:
        """Seconds spent off the HEALTHY rung before transfer completion.

        Clipped at completion time: once the transfer is done quACKs
        legitimately stop, so the later staleness walk down the ladder
        is an artifact of the drain, not assistance downtime.
        """
        done = cls._completion(analysis)
        dwell, state, since = 0.0, HealthState.HEALTHY.value, 0.0
        for time, _old, new, _reason in analysis.health.transitions:
            if time > done:
                break
            if state != HealthState.HEALTHY.value:
                dwell += time - since
            state, since = new, time
        if state != HealthState.HEALTHY.value:
            dwell += done - since
        return dwell

    @classmethod
    def _worst_assistance_outage(cls, analysis) -> float:
        """Longest gap between successful decodes during the transfer."""
        done = cls._completion(analysis)
        ok_times = [time for time, status
                    in zip(analysis.decode.times, analysis.decode.statuses)
                    if status == "ok" and time <= done]
        return max(later - earlier
                   for earlier, later in zip(ok_times, ok_times[1:]))

    def test_resume_verdict_lands_within_one_rtt(self, analyses):
        # Sidecar-hop RTT in the chaos topology: 2 * 5 ms one-way delay.
        latencies = analyses["crash-resume"].defense.resume_latencies()
        assert len(latencies) >= 1
        assert all(latency <= 0.010 + 1e-9 for latency in latencies)

    def test_resume_avoids_the_reset_downtime(self, analyses):
        restart = analyses["crash-restart"]
        resume = analyses["crash-resume"]
        assert restart.decode.resets >= 1
        assert resume.decode.resets == 0
        assert resume.defense.resumes.get("accepted", 0) >= 2

    def test_resume_spends_less_time_off_healthy(self, analyses):
        # The dwell-time comparison: the reset path knocks the health
        # ladder off HEALTHY for a measurable span; the resume path does
        # not get caught lying even once.
        restart_dwell = self._off_healthy_dwell(analyses["crash-restart"])
        resume_dwell = self._off_healthy_dwell(analyses["crash-resume"])
        assert restart_dwell > 0.0
        assert resume_dwell <= restart_dwell + 1e-9

    def test_resume_shrinks_the_assistance_outage(self, analyses):
        # Worst decode-to-decode gap: the reset path pauses for the
        # handshake plus settle windows; the resume path restores
        # assistance within roughly one quACK cadence of the crash.
        restart_gap = self._worst_assistance_outage(analyses["crash-restart"])
        resume_gap = self._worst_assistance_outage(analyses["crash-resume"])
        assert resume_gap < restart_gap
        assert resume_gap <= 0.05

    def test_gap_packets_reconcile_without_spurious_retransmits(
            self, analyses):
        resume = analyses["crash-resume"]
        assert resume.defense.checkpoints > 0
        assert resume.defense.gap_reconciled > 0
        # Every retransmission (either cause) is backed by a real
        # bottleneck-queue drop: the checkpoint gap produced none.
        for plan in ("crash-restart", "crash-resume"):
            assert analyses[plan].attribution.total \
                == analyses["link_drops"][plan]
        # And no quACK-attributed retransmission touches a packet sent
        # in the checkpoint window just before a crash -- those are the
        # gap packets, confirmed pre-crash and reconciled, not lost.
        crash_times = (0.4, 0.9)
        for record in resume.attribution.records:
            if record.cause != "quack":
                continue
            sent_at = record.time - record.latency
            assert not any(crash - 0.05 <= sent_at <= crash
                           for crash in crash_times), record
