"""The chaos invariant suite: every injector, every invariant, one seed.

Acceptance criteria of the robustness milestone: under each built-in
fault injector the base transport still delivers all application data
end-to-end, no unhandled exception escapes, epochs converge, corruption
is always classified as a wire error, and the health/fault counters
match the injected faults.  ``SEED`` is fixed so CI replays the exact
same packet-level histories.
"""

import pytest

from repro.chaos import (
    PLANS,
    ChaosSetup,
    MiddleboxCrash,
    format_result,
    run_chaos_transfer,
    run_plan,
)
from repro.netsim.faults import SIDECAR_KINDS, Blackout
from repro.sidecar.health import HealthConfig, HealthState

SEED = 1


@pytest.fixture(scope="module")
def results():
    """Run every built-in plan once; the tests then interrogate them."""
    return {name: run_plan(name, seed=SEED) for name in PLANS}


class TestEveryPlanHolds:
    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_invariants_hold(self, results, name):
        result = results[name]
        assert result.violations() == [], format_result(result)

    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_all_bytes_delivered(self, results, name):
        result = results[name]
        assert result.completed
        assert result.bytes_received == result.total_bytes

    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_epochs_converge(self, results, name):
        result = results[name]
        assert result.emitter_epoch == result.server_epoch


class TestCountersMatchInjectedFaults:
    def test_crash_restart_is_detected_and_healed(self, results):
        result = results["crash-restart"]
        assert result.crashes == 2
        assert result.emitter_counters["restarts"] == 2
        counters = result.server_counters
        # Each crash is noticed one way or the other: count regression
        # (same epoch) or stale-epoch snapshots (after a reset).
        assert counters["restarts_detected"] >= 1
        assert counters["resets_initiated"] >= 1
        assert result.emitter_counters["resets_applied"] >= 1

    def test_corruption_always_classified_as_wire_error(self, results):
        result = results["corruption"]
        assert result.faults_corrupted > 0
        # Every corrupted datagram that arrived was caught by a checksum
        # (quACK frames at the server, control frames at the emitter);
        # none was mis-decoded into session state.
        assert (result.wire_errors_seen
                + result.control_corruptions_seen) > 0
        assert result.server_counters["restarts_detected"] == 0

    def test_duplication_is_harmless(self, results):
        result = results["duplication"]
        assert result.faults_duplicated > 0
        counters = result.server_counters
        # A duplicated cumulative snapshot decodes to "nothing new".
        assert counters["decode_failures"] == 0
        assert counters["resets_initiated"] == 0

    def test_blackout_drops_only_sidecar_traffic(self, results):
        result = results["blackout"]
        assert result.faults_dropped > 0
        assert result.completed  # DATA/ACK were never touched

    def test_injector_stats_exposed_per_injector(self, results):
        stats = results["burst-loss"].injector_stats
        assert len(stats) == 1
        (only,) = stats.values()
        assert only.dropped == results["burst-loss"].faults_dropped


class TestBlackoutDegradationLadder:
    """The acceptance scenario: full sidecar blackout, then recovery."""

    HEALTH = HealthConfig(degrade_after=2, e2e_only_after=6,
                          stale_after=0.25, probation=0.25)

    @pytest.fixture(scope="class")
    def blackout_result(self):
        outage = Blackout([(0.3, 0.9)], kinds=SIDECAR_KINDS)
        setup = ChaosSetup(name="blackout",
                           faults_toward_client=outage,
                           faults_toward_server=outage)
        return run_chaos_transfer(setup, seed=SEED, health=self.HEALTH)

    def test_completes_despite_total_blackout(self, blackout_result):
        assert blackout_result.completed
        assert blackout_result.violations() == []

    def test_enters_e2e_only_during_blackout(self, blackout_result):
        drops = [t for t in blackout_result.health_transitions
                 if t.new is HealthState.E2E_ONLY]
        assert drops, "never fell back to end-to-end"
        assert 0.3 <= drops[0].time <= 0.9

    def test_reenters_healthy_within_one_probation_window(
            self, blackout_result):
        healthy = [t for t in blackout_result.health_transitions
                   if t.new is HealthState.HEALTHY]
        assert healthy, "never recovered"
        blackout_end = 0.9
        # Recovery = blackout end + quACK cadence + one probation window
        # (plus scheduler slack).
        deadline = blackout_end + self.HEALTH.probation + 0.15
        assert healthy[0].time <= deadline
        assert blackout_result.health_final is HealthState.HEALTHY


class TestHarnessPlumbing:
    def test_unknown_plan_is_an_error(self):
        with pytest.raises(ValueError, match="unknown chaos plan"):
            run_plan("nope", seed=SEED)

    def test_format_result_mentions_the_essentials(self, results):
        text = format_result(results["crash-restart"])
        assert "crash-restart" in text
        assert "invariants: all held" in text
        assert "health" in text

    def test_custom_setup_with_crash_schedule(self):
        setup = ChaosSetup(name="one-crash",
                           crashes=MiddleboxCrash(times=(0.5,)))
        result = run_chaos_transfer(setup, seed=SEED,
                                    total_bytes=1460 * 300)
        assert result.crashes == 1
        assert result.violations() == []

    def test_seeded_runs_replay_identically(self):
        first = run_plan("corruption", seed=7, total_bytes=1460 * 200)
        second = run_plan("corruption", seed=7, total_bytes=1460 * 200)
        assert first.duration_s == second.duration_s
        assert first.server_counters == second.server_counters
        assert first.faults_corrupted == second.faults_corrupted
