"""Smoke tests: every example script must run (or at least compile)."""

import pathlib
import py_compile
import runpy
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "cc_division_demo.py", "ack_reduction_demo.py",
            "innetwork_retx_demo.py", "parameter_tuning.py",
            "reproduce_paper.py"} <= names


@pytest.mark.parametrize("script", sorted(p.name for p in EXAMPLES.glob("*.py")))
def test_examples_compile(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


def _run(script, argv=()):
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "decode matches ground truth" in out
    assert "threshold-exceeded" in out


def test_parameter_tuning_runs(capsys):
    _run("parameter_tuning.py")
    out = capsys.readouterr().out
    assert "collision probability" in out
    assert "82 B" in out
