"""Extension X6: multipath transfers and per-path sidecars (paper §5).

"How would a proxy interact with multipath transport protocols?" --
each subflow is an ordinary paranoid connection with its own flow id and
identifier key, so each on-path proxy runs an ordinary per-subflow quACK
session.  These tests cover the multipath machinery itself and that
composition.
"""

import random

import pytest

pytestmark = pytest.mark.slow

from repro.errors import TransportError
from repro.netsim.core import Simulator
from repro.netsim.loss import BernoulliLoss
from repro.netsim.node import Host, Router
from repro.netsim.topology import HopSpec, build_parallel_paths
from repro.sidecar.agents import ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import PacketCountFrequency
from repro.transport.multipath import (
    MultipathTransfer,
    PathSpec,
    SharedStream,
)

TOTAL = 1_000_000


def two_path_setup(path0=(10e6, 0.02), path1=(10e6, 0.02),
                   loss1=0.0, seed=5):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    p0, p1 = Router(sim, "p0"), Router(sim, "p1")
    loss_model = BernoulliLoss(loss1, random.Random(seed)) if loss1 else None
    build_parallel_paths(sim, server, client, [p0, p1], [
        (HopSpec(bandwidth_bps=path0[0], delay_s=path0[1]),
         HopSpec(bandwidth_bps=path0[0], delay_s=path0[1])),
        (HopSpec(bandwidth_bps=path1[0], delay_s=path1[1],
                 loss_up=loss_model),
         HopSpec(bandwidth_bps=path1[0], delay_s=path1[1])),
    ])
    return sim, server, client, p0, p1


def run(sim, transfer, deadline=60.0):
    transfer.start()
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if transfer.complete and all(s.sender.complete
                                     for s in transfer.subflows):
            break
        if sim.peek_next_time() is None:
            break


class TestSharedStream:
    def test_sequential_chunks(self):
        stream = SharedStream(3500, mss=1000)
        chunks = [stream.next_chunk() for _ in range(4)]
        assert chunks == [(0, 1000), (1000, 1000), (2000, 1000), (3000, 500)]
        assert stream.next_chunk() is None
        assert stream.exhausted()

    def test_push_back_reoffers(self):
        stream = SharedStream(2000, mss=1000)
        first = stream.next_chunk()
        stream.push_back(*first)
        assert not stream.exhausted()
        assert stream.next_chunk() == first

    def test_validation(self):
        with pytest.raises(TransportError):
            SharedStream(0)


class TestMultipathTransfer:
    def test_aggregates_bandwidth(self):
        """Two 10 Mbps paths must beat one of them used alone."""
        sim, server, client, p0, p1 = two_path_setup()
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        run(sim, transfer)
        assert transfer.complete
        assert transfer.goodput_bps > 10e6  # above a single path's cap

    def test_exact_reassembly(self):
        sim, server, client, p0, p1 = two_path_setup()
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        run(sim, transfer)
        assert len(transfer.received) == TOTAL
        assert transfer.received.covers_contiguously(0, TOTAL - 1)

    def test_stream_split_is_disjoint_and_complete(self):
        sim, server, client, p0, p1 = two_path_setup()
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        run(sim, transfer)
        a, b = (sub.sender.assigned_offsets for sub in transfer.subflows)
        assert len(a) + len(b) == TOTAL
        # Disjoint: no offset assigned to both subflows.
        for lo, hi in a.ranges:
            assert not b.covers_contiguously(lo, lo)

    def test_pull_scheduling_favors_faster_path(self):
        sim, server, client, p0, p1 = two_path_setup(path0=(20e6, 0.02),
                                                     path1=(5e6, 0.02))
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        run(sim, transfer)
        split = transfer.bytes_by_subflow()
        # 20 vs 5 Mbps would be 4:1 in steady state; slow start softens
        # the skew on a 1 MB transfer, so assert a conservative margin.
        assert split["mp-0"] > 1.5 * split["mp-1"]

    def test_survives_one_lossy_path(self):
        sim, server, client, p0, p1 = two_path_setup(loss1=0.05)
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        run(sim, transfer)
        assert transfer.complete
        assert len(transfer.received) == TOTAL

    def test_single_path_degenerate(self):
        sim, server, client, p0, p1 = two_path_setup()
        transfer = MultipathTransfer(sim, server, client, 200_000,
                                     [PathSpec("p0", "p0")])
        run(sim, transfer)
        assert transfer.complete

    def test_needs_at_least_one_path(self):
        sim, server, client, p0, p1 = two_path_setup()
        with pytest.raises(TransportError):
            MultipathTransfer(sim, server, client, 1000, [])


class TestPerPathSidecars:
    def test_each_proxy_quacks_its_own_subflow(self):
        """The §5 answer in running code: one quACK session per path."""
        sim, server, client, p0, p1 = two_path_setup(loss1=0.02)
        transfer = MultipathTransfer(sim, server, client, TOTAL,
                                     [PathSpec("p0", "p0"),
                                      PathSpec("p1", "p1")])
        taps = []
        sidecars = []
        for proxy, subflow in zip((p0, p1), transfer.subflows):
            taps.append(ProxyEmitterTap(
                sim, proxy, server="server", client="client",
                flow_id=subflow.flow_id,
                policy=PacketCountFrequency(4), threshold=16))
            sidecars.append(ServerSidecar(
                sim, subflow.sender, threshold=16, grace=2,
                apply_losses=False))
        run(sim, transfer)
        assert transfer.complete
        for tap, sidecar, subflow in zip(taps, sidecars, transfer.subflows):
            assert tap.quacks_sent > 0
            assert sidecar.stats.decode_failures == 0
            assert subflow.sender.stats.sidecar_releases > 0
            # Each tap saw only its own subflow's packets.
            assert tap.emitter.stats.observed <= \
                subflow.sender.stats.packets_sent
