"""Extension X5: multiple flows sharing a bottleneck.

Two transfers between the same pair of hosts (distinct flow ids) share
every link.  Checks that the transport multiplexes correctly (no
cross-flow interference bugs) and that congestion control shares the
bottleneck roughly fairly; then verifies the sidecar keeps per-flow
state separate when only one flow is assisted.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.netsim.core import Simulator
from repro.netsim.node import Host, Router
from repro.netsim.topology import HopSpec, build_path
from repro.sidecar.agents import ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import PacketCountFrequency
from repro.transport.connection import ReceiverConnection, SenderConnection


def build_two_flows(total=600_000, assisted_flows=()):
    sim = Simulator()
    server = Host(sim, "server")
    proxy = Router(sim, "proxy")
    client = Host(sim, "client")
    build_path(sim, [server, proxy, client],
               [HopSpec(bandwidth_bps=40e6, delay_s=0.01),
                HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                        queue_packets=128)])
    flows = {}
    for flow_id in ("flow-a", "flow-b"):
        key = flow_id.encode()
        receiver = ReceiverConnection(sim, client, "server", total,
                                      key=key, flow_id=flow_id)
        sender = SenderConnection(sim, server, "client", total,
                                  key=key, flow_id=flow_id)
        sidecar = None
        if flow_id in assisted_flows:
            ProxyEmitterTap(sim, proxy, server="server", client="client",
                            flow_id=flow_id,
                            policy=PacketCountFrequency(2), threshold=16)
            sidecar = ServerSidecar(sim, sender, threshold=16, grace=2,
                                    apply_losses=False)
        flows[flow_id] = (sender, receiver, sidecar)
    return sim, flows


def run_all(sim, flows, deadline=60.0):
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.5, deadline))
        if all(s.complete and r.complete for s, r, _ in flows.values()):
            break
        if sim.peek_next_time() is None:
            break


class TestTwoPlainFlows:
    @pytest.fixture(scope="class")
    def flows(self):
        sim, flows = build_two_flows()
        for sender, _, _ in flows.values():
            sender.start()
        run_all(sim, flows)
        return flows

    def test_both_complete_exactly(self, flows):
        for sender, receiver, _ in flows.values():
            assert sender.complete and receiver.complete
            assert receiver.stats.bytes_received == 600_000

    def test_no_cross_flow_leakage(self, flows):
        # Each receiver only counted its own packets.
        (sa, ra, _), (sb, rb, _) = flows.values()
        assert ra.stats.packets_received <= sa.stats.packets_sent
        assert rb.stats.packets_received <= sb.stats.packets_sent

    def test_rough_fairness(self, flows):
        goodputs = [r.monitor.goodput_bps(r.completed_at)
                    for _, r, _ in flows.values()]
        assert max(goodputs) < 3 * min(goodputs)

    def test_bottleneck_respected(self, flows):
        finish = max(r.completed_at for _, r, _ in flows.values())
        aggregate = 2 * 600_000 * 8 / finish
        assert aggregate <= 10e6 * 1.05  # never above the bottleneck


class TestSelectiveAssistance:
    def test_sidecar_state_is_per_flow(self):
        sim, flows = build_two_flows(assisted_flows=("flow-a",))
        for sender, _, _ in flows.values():
            sender.start()
        run_all(sim, flows)
        (sa, ra, sca), (sb, rb, scb) = flows.values()
        assert ra.complete and rb.complete
        assert sca is not None and scb is None
        assert sca.stats.quacks_received > 0
        assert sca.stats.decode_failures == 0
        # The unassisted flow saw no sidecar activity at all.
        assert sb.stats.sidecar_releases == 0
        assert sa.stats.sidecar_releases > 0
