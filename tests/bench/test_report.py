"""Tests for report generation (repro.bench.report)."""

import pytest

from repro.bench.report import (
    ReportOptions,
    environment_section,
    full_report,
    observability_section,
    sizing_section,
    table2_section,
    table3_section,
)


class TestSections:
    def test_environment_mentions_python(self):
        assert "Python" in environment_section()

    def test_table3_contains_paper_row(self):
        section = table3_section()
        assert "| 8 | 0.98 |" in section
        assert "2.3e-07" in section

    def test_table2_structure(self):
        section = table2_section(trials=2)
        assert "Power Sums" in section
        assert "656 / 656" in section
        assert "272 / 272" in section
        assert "days" in section  # the extrapolated hash decode

    def test_sizing_section(self):
        section = sizing_section()
        assert "1000 packets per RTT" in section
        assert "82 B" in section

    def test_observability_section(self):
        section = observability_section(60_000)
        assert "## Observability" in section
        for component in ("link", "transport", "quack", "sidecar"):
            assert f"| {component} |" in section
        assert "quack.newton" in section  # the profiling spans table


class TestFullReport:
    def test_quick_report_assembles(self):
        progress_log = []
        options = ReportOptions(trials=2, protocol_bytes=120_000,
                                headroom_trials=2, include_chaos=False,
                                scale_flows=500)
        text = full_report(options, progress=progress_log.append)
        assert text.startswith("# Sidecar / quACK reproduction report")
        assert "## Table 2" in text
        assert "## Table 3" in text
        assert "CC division (E7)" in text
        assert "Threshold headroom" in text
        assert "## Multi-tenant flow table at scale" in text
        assert "## Observability" in text
        assert len(progress_log) == 5

    def test_sections_can_be_disabled(self):
        options = ReportOptions(trials=2, include_protocols=False,
                                include_headroom=False, include_chaos=False,
                                include_scale=False,
                                include_observability=False)
        text = full_report(options)
        assert "CC division (E7)" not in text
        assert "Threshold headroom" not in text
        assert "Robustness under fault injection" not in text
        assert "flow table at scale" not in text
        assert "## Observability" not in text
        assert "## Table 2" in text

    def test_chaos_section_reports_invariants(self):
        options = ReportOptions(trials=2, include_protocols=False,
                                include_headroom=False, include_scale=False,
                                include_observability=False)
        text = full_report(options)
        assert "Robustness under fault injection" in text
        assert "| blackout |" in text
        assert "VIOLATED" not in text
