"""Tests for trace-driven quACK sessions (repro.bench.traces)."""

import random

import pytest

from repro.bench.traces import (
    PacketTrace,
    cbr_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    run_session,
    survival_probability,
    synthesize_trace,
)
from repro.netsim.loss import BernoulliLoss, DeterministicLoss


class TestArrivalProcesses:
    def test_cbr_spacing(self):
        times = cbr_arrivals(5, 100.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)

    def test_poisson_mean_rate(self):
        rng = random.Random(1)
        times = poisson_arrivals(5000, 1000.0, rng)
        duration = times[-1] - times[0]
        assert 5000 / duration == pytest.approx(1000.0, rel=0.1)

    def test_poisson_monotone(self):
        times = poisson_arrivals(100, 50.0, random.Random(2))
        assert times == sorted(times)

    def test_onoff_has_gaps(self):
        times = onoff_arrivals(2000, 1000.0, on_s=0.02, off_s=0.05,
                               rng=random.Random(3))
        gaps = [b - a for a, b in zip(times, times[1:])]
        base_gap = 1 / 1000.0
        assert max(gaps) > 10 * base_gap  # off-period silences
        assert min(gaps) == pytest.approx(base_gap)

    def test_validation(self):
        with pytest.raises(ValueError):
            cbr_arrivals(5, 0)
        with pytest.raises(ValueError):
            poisson_arrivals(5, -1, random.Random(0))
        with pytest.raises(ValueError):
            onoff_arrivals(5, 100, 0, 1, random.Random(0))
        with pytest.raises(ValueError):
            synthesize_trace(10, arrival="fractal")


class TestSynthesizeTrace:
    def test_deterministic_per_seed(self):
        a = synthesize_trace(100, seed=7)
        b = synthesize_trace(100, seed=7)
        assert a == b
        assert a != synthesize_trace(100, seed=8)

    def test_loss_accounting(self):
        trace = synthesize_trace(
            10, loss=DeterministicLoss({0, 1, 2}), seed=1)
        assert trace.loss_count == 3
        assert trace.loss_rate == pytest.approx(0.3)
        assert trace.longest_loss_burst() == 3

    def test_burst_detection(self):
        trace = PacketTrace(times=(0, 1, 2, 3, 4),
                            dropped=(False, True, True, False, True),
                            identifiers=(1, 2, 3, 4, 5))
        assert trace.longest_loss_burst() == 2


class TestRunSession:
    def test_clean_trace_confirms_everything_quacked(self):
        trace = synthesize_trace(500, seed=1)
        outcome = run_session(trace, threshold=10, quack_every=16)
        assert outcome.survived
        assert outcome.decode_failures == 0
        assert outcome.declared_lost == 0
        # All but the tail that never triggered a quACK is confirmed.
        assert outcome.confirmed >= 500 - 16

    def test_losses_declared_and_true(self):
        trace = synthesize_trace(
            1000, loss=BernoulliLoss(0.02, random.Random(5)), seed=5)
        outcome = run_session(trace, threshold=15, quack_every=32)
        assert outcome.survived
        assert outcome.declared_lost >= trace.loss_count - 32  # tail slack
        assert outcome.false_losses == 0

    def test_threshold_overflow_detected(self):
        # 30% loss, t=3, one quACK per 64 packets: hopeless.
        trace = synthesize_trace(
            500, loss=BernoulliLoss(0.3, random.Random(6)), seed=6)
        outcome = run_session(trace, threshold=3, quack_every=64)
        assert not outcome.survived
        assert outcome.threshold_exceeded

    def test_outstanding_bounded_by_cadence(self):
        trace = synthesize_trace(500, seed=2)
        outcome = run_session(trace, threshold=10, quack_every=8)
        assert outcome.max_outstanding <= 8 + 10


class TestSurvival:
    def test_bursty_loss_needs_more_headroom(self):
        """The Section 3.2 design point, quantified: at the same average
        loss rate, bursty channels overflow small thresholds."""
        tight_random = survival_probability(5, 0.02, "random", trials=8,
                                            n=1500)
        tight_bursty = survival_probability(5, 0.02, "bursty", trials=8,
                                            n=1500)
        roomy_bursty = survival_probability(25, 0.02, "bursty", trials=8,
                                            n=1500)
        assert tight_random == 1.0
        assert tight_bursty < 0.7
        assert roomy_bursty >= 0.9

    def test_unknown_burstiness(self):
        with pytest.raises(ValueError):
            survival_probability(5, 0.02, "sideways", trials=1)
