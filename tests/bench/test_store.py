"""Tests for the benchmark snapshot store (repro.bench.store)."""

import json

import pytest

from repro.bench.store import (
    SCHEMA_VERSION,
    BenchSnapshot,
    Metric,
    compare_dirs,
    compare_snapshots,
    format_comparison,
    load_dir,
    load_snapshot,
    record,
    snapshot_path,
)
from repro.errors import BenchStoreError


def _snapshot(area="quack", **metrics):
    return BenchSnapshot(area=area,
                         metrics={name: metric
                                  for name, metric in metrics.items()})


def _metric(name, mean, direction="lower", **kwargs):
    return Metric(name=name, mean=mean, direction=direction, **kwargs)


class TestMetric:
    def test_bad_direction_rejected(self):
        with pytest.raises(BenchStoreError, match="direction"):
            Metric(name="x", mean=1.0, direction="sideways")

    def test_from_dict_ignores_unknown_keys(self):
        metric = Metric.from_dict("x", {"mean": 2.0, "unit": "us",
                                        "future_field": [1, 2, 3]})
        assert metric.mean == 2.0
        assert metric.direction == "lower"  # defaulted

    def test_from_dict_requires_mean(self):
        with pytest.raises(BenchStoreError, match="malformed"):
            Metric.from_dict("x", {"stdev": 1.0})


class TestRoundTrip:
    def test_record_writes_schema_valid_files(self, tmp_path):
        snapshots = record(str(tmp_path), areas=["protocols"], quick=True)
        assert set(snapshots) == {"protocols"}
        path = snapshot_path(str(tmp_path), "protocols")
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        assert raw["schema"] == SCHEMA_VERSION
        assert raw["area"] == "protocols"
        assert raw["quick"] is True
        assert raw["fingerprint"]["python"]
        assert raw["recorded_at"]
        for metric in raw["metrics"].values():
            assert set(metric) >= {"mean", "stdev", "n", "unit",
                                   "direction"}

        loaded = load_snapshot(path)
        assert loaded.area == "protocols"
        assert loaded.metrics.keys() == snapshots["protocols"].metrics.keys()

    def test_unknown_area_rejected(self, tmp_path):
        with pytest.raises(BenchStoreError, match="unknown bench area"):
            record(str(tmp_path), areas=["nope"])

    def test_load_dir_collects_bench_files(self, tmp_path):
        record(str(tmp_path), areas=["protocols"], quick=True)
        (tmp_path / "unrelated.json").write_text("{}")
        snapshots = load_dir(str(tmp_path))
        assert set(snapshots) == {"protocols"}

    def test_deterministic_protocol_metrics_rerun_identically(self,
                                                              tmp_path):
        """Virtual-time sims are machine-independent: exact re-run."""
        first = record(str(tmp_path / "a"), areas=["protocols"],
                       quick=True)["protocols"]
        second = record(str(tmp_path / "b"), areas=["protocols"],
                        quick=True)["protocols"]
        for name, metric in first.metrics.items():
            assert second.metrics[name].mean == metric.mean


class TestForwardCompatibility:
    def _write(self, tmp_path, payload):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_unknown_toplevel_keys_ignored(self, tmp_path):
        path = self._write(tmp_path, {
            "schema": SCHEMA_VERSION, "area": "x",
            "metrics": {"m": {"mean": 1.0}},
            "some_future_section": {"anything": True},
        })
        snapshot = load_snapshot(path)
        assert snapshot.metrics["m"].mean == 1.0

    def test_newer_schema_refused(self, tmp_path):
        path = self._write(tmp_path, {
            "schema": SCHEMA_VERSION + 1, "area": "x", "metrics": {}})
        with pytest.raises(BenchStoreError, match="newer than"):
            load_snapshot(path)

    def test_not_json_refused(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("][")
        with pytest.raises(BenchStoreError, match="not valid JSON"):
            load_snapshot(str(path))

    def test_missing_metrics_refused(self, tmp_path):
        path = self._write(tmp_path, {"schema": 1, "area": "x"})
        with pytest.raises(BenchStoreError, match="metrics"):
            load_snapshot(path)


class TestCompare:
    def test_identical_snapshots_pass(self):
        base = _snapshot(m=_metric("m", 10.0))
        comparison = compare_snapshots(base, base)
        assert comparison.ok
        assert comparison.deltas[0].ratio == pytest.approx(1.0)

    def test_injected_3x_slowdown_regresses(self):
        baseline = _snapshot(m=_metric("m", 10.0))
        current = _snapshot(m=_metric("m", 30.0))
        comparison = compare_snapshots(current, baseline, threshold=2.0)
        assert not comparison.ok
        assert comparison.regressions[0].name == "m"
        assert comparison.regressions[0].ratio == pytest.approx(3.0)

    def test_slowdown_within_threshold_passes(self):
        baseline = _snapshot(m=_metric("m", 10.0))
        current = _snapshot(m=_metric("m", 19.0))
        assert compare_snapshots(current, baseline, threshold=2.0).ok

    def test_higher_is_better_direction(self):
        baseline = _snapshot(g=_metric("g", 100.0, direction="higher"))
        faster = _snapshot(g=_metric("g", 300.0, direction="higher"))
        slower = _snapshot(g=_metric("g", 30.0, direction="higher"))
        assert compare_snapshots(faster, baseline, threshold=2.0).ok
        assert not compare_snapshots(slower, baseline, threshold=2.0).ok

    def test_info_metrics_never_regress(self):
        baseline = _snapshot(i=_metric("i", 1.0, direction="info"))
        current = _snapshot(i=_metric("i", 1000.0, direction="info"))
        assert compare_snapshots(current, baseline).ok

    def test_new_metric_noted_not_regressed(self):
        baseline = _snapshot(m=_metric("m", 1.0))
        current = _snapshot(m=_metric("m", 1.0), extra=_metric("extra", 5.0))
        comparison = compare_snapshots(current, baseline)
        assert comparison.ok
        notes = {delta.name: delta.note for delta in comparison.deltas}
        assert "no baseline" in notes["extra"]

    def test_disappeared_metric_regresses(self):
        baseline = _snapshot(m=_metric("m", 1.0), gone=_metric("gone", 2.0))
        current = _snapshot(m=_metric("m", 1.0))
        comparison = compare_snapshots(current, baseline)
        assert not comparison.ok
        assert comparison.regressions[0].name == "gone"

    def test_area_mismatch_rejected(self):
        with pytest.raises(BenchStoreError, match="cannot compare"):
            compare_snapshots(_snapshot(area="a"), _snapshot(area="b"))

    def test_silly_threshold_rejected(self):
        base = _snapshot(m=_metric("m", 1.0))
        with pytest.raises(BenchStoreError, match="threshold"):
            compare_snapshots(base, base, threshold=0.5)

    def test_zero_baseline_movement_regresses(self):
        baseline = _snapshot(m=_metric("m", 0.0))
        current = _snapshot(m=_metric("m", 5.0))
        comparison = compare_snapshots(current, baseline)
        assert not comparison.ok
        assert "zero baseline" in comparison.regressions[0].note


class TestCompareDirs:
    def test_directory_comparison_and_format(self, tmp_path):
        record(str(tmp_path / "base"), areas=["protocols"], quick=True)
        record(str(tmp_path / "cur"), areas=["protocols"], quick=True)
        comparisons = compare_dirs(str(tmp_path / "cur"),
                                   str(tmp_path / "base"))
        assert all(comparison.ok for comparison in comparisons)
        text = format_comparison(comparisons)
        assert "OK: no metric moved" in text
        assert "area protocols" in text

    def test_injected_slowdown_fails_dir_comparison(self, tmp_path):
        record(str(tmp_path / "base"), areas=["protocols"], quick=True)
        record(str(tmp_path / "cur"), areas=["protocols"], quick=True)
        # inject a 3x completion-time slowdown into the current snapshot
        path = snapshot_path(str(tmp_path / "cur"), "protocols")
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        raw["metrics"]["cc_division_completion_s"]["mean"] *= 3
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        comparisons = compare_dirs(str(tmp_path / "cur"),
                                   str(tmp_path / "base"))
        assert not all(comparison.ok for comparison in comparisons)
        assert "FAIL" in format_comparison(comparisons)

    def test_no_common_areas_is_an_error(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        with pytest.raises(BenchStoreError, match="no common"):
            compare_dirs(str(tmp_path / "a"), str(tmp_path / "b"))


class TestProfilesAlongsideRecord:
    def test_record_writes_profile_per_area(self, tmp_path):
        from repro.bench.store import profile_path
        from repro.obs.perf import load_profile

        record(str(tmp_path), areas=["quack"], quick=True)
        path = profile_path(str(tmp_path), "quack")
        doc = load_profile(path)
        assert doc["scenario"] == "bench:quack"
        paths = {span["path"] for span in doc["spans"]}
        assert any(p.startswith("quack.decode") for p in paths)

    def test_record_profile_opt_out(self, tmp_path):
        from repro.bench.store import profile_path
        import os

        record(str(tmp_path), areas=["protocols"], quick=True,
               profile=False)
        assert not os.path.exists(profile_path(str(tmp_path), "protocols"))

    def test_profiled_pass_leaves_global_profiler_off(self, tmp_path):
        from repro import obs

        record(str(tmp_path), areas=["quack"], quick=True)
        assert not obs.PROFILER.enabled


class TestSimcoreArea:
    def test_simcore_metrics_and_directions(self, tmp_path):
        snapshot = record(str(tmp_path), areas=["simcore"], quick=True,
                          profile=False)["simcore"]
        metrics = snapshot.metrics
        assert metrics["events_per_sec"].direction == "higher"
        assert metrics["events_per_sec"].mean > 0
        assert metrics["timer_loop_events_per_sec"].direction == "higher"
        assert metrics["timer_loop_events_per_sec"].mean > 0
        assert metrics["packets_per_sec"].direction == "higher"
        assert metrics["packets_per_sec"].mean > 0
        # The cost signature is machine-independent.  Under the default
        # calendar scheduler the burst workload never touches a binary
        # heap (near-horizon inserts are bucket appends); the legacy
        # heap backend does one push + one pop per event (2.0 -- the
        # value pinned in benchmarks/baselines/pre_scheduler/).
        assert metrics["heap_ops_per_event"].direction == "lower"
        from repro.netsim.core import default_scheduler
        if default_scheduler() == "calendar":
            assert metrics["heap_ops_per_event"].mean < 0.1
        else:
            assert 1.5 <= metrics["heap_ops_per_event"].mean <= 4.0

    def test_heap_ops_signature_is_deterministic(self, tmp_path):
        from repro.bench.store import collect_simcore

        first = collect_simcore(quick=True)
        second = collect_simcore(quick=True)
        assert first["heap_ops_per_event"].mean == \
            second["heap_ops_per_event"].mean
        assert first["sim_events_dispatched"].mean == \
            second["sim_events_dispatched"].mean


class TestGitRevision:
    def test_none_outside_a_repository(self, tmp_path):
        from repro.bench.store import git_revision

        assert git_revision(cwd=str(tmp_path)) is None

    def test_short_hash_inside_this_repository(self):
        from repro.bench.store import git_revision

        rev = git_revision()
        # Best-effort: the test tree is normally a git checkout, but a
        # tarball export legitimately yields None.
        assert rev is None or (rev and all(c in "0123456789abcdef"
                                           for c in rev))

    def test_legacy_unknown_rev_loads_as_none(self, tmp_path):
        path = tmp_path / "BENCH_quack.json"
        path.write_text(json.dumps({
            "schema": 1, "area": "quack", "git_rev": "unknown",
            "metrics": {"m": {"mean": 1.0}}}))
        assert load_snapshot(str(path)).git_rev is None
