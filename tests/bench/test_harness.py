"""Tests for the benchmark harness itself (timing, workloads, tables)."""

import time

import pytest

from repro.bench.frequency import (
    ack_reduction_sizing,
    cc_division_sizing,
    retransmission_cadence,
)
from repro.bench.tables import (
    fig5_series,
    fig6_series,
    format_series,
    format_table2,
    table2_report,
    table3_report,
)
from repro.bench.timing import TimingResult, measure, measure_throughput
from repro.bench.workloads import QuackWorkload, make_workload


class TestMeasure:
    def test_statistics_fields(self):
        result = measure(lambda: sum(range(100)), trials=10, warmup=1)
        assert result.trials == 10
        assert result.minimum <= result.median <= result.maximum
        assert result.mean > 0
        assert result.mean_us == pytest.approx(result.mean * 1e6)
        assert result.mean_ns == pytest.approx(result.mean * 1e9)

    def test_single_trial_has_zero_stdev(self):
        result = measure(lambda: None, trials=1, warmup=0)
        assert result.stdev == 0.0

    def test_warmup_not_recorded(self):
        calls = []
        measure(lambda: calls.append(1), trials=3, warmup=2)
        assert len(calls) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            measure(lambda: None, trials=0)

    def test_str_format(self):
        result = measure(lambda: None, trials=3, warmup=0)
        assert "us" in str(result)

    def test_throughput(self):
        rate = measure_throughput(lambda: time.sleep(0.001),
                                  items_per_call=100, trials=3, warmup=1)
        assert 1_000 < rate < 100_000  # ~100 items / ~1ms

    def test_throughput_validation(self):
        with pytest.raises(ValueError):
            measure(lambda: None, trials=-1)


class TestWorkloads:
    def test_shape(self):
        workload = make_workload(n=50, num_missing=7, bits=32, seed=1)
        assert workload.n == 50
        assert workload.num_missing == 7
        assert workload.received.size == 43
        assert len(workload.missing) == 7

    def test_missing_is_sent_minus_received(self):
        from collections import Counter
        workload = make_workload(n=80, num_missing=10, seed=2)
        diff = Counter(int(x) for x in workload.sent)
        diff.subtract(Counter(int(x) for x in workload.received))
        assert sorted(diff.elements()) == sorted(workload.missing)

    def test_deterministic(self):
        a = make_workload(n=30, num_missing=3, seed=9)
        b = make_workload(n=30, num_missing=3, seed=9)
        assert a.missing == b.missing
        assert a.sent.tolist() == b.sent.tolist()

    def test_bits_respected(self):
        workload = make_workload(n=100, num_missing=0, bits=8, seed=0)
        assert all(v < 256 for v in workload.sent.tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            make_workload(n=5, num_missing=6)
        with pytest.raises(ValueError):
            make_workload(n=5, num_missing=-1)

    def test_zero_missing(self):
        workload = make_workload(n=10, num_missing=0)
        assert workload.missing == ()
        assert workload.received.size == 10


class TestTables:
    def test_table2_report_rows(self):
        rows = table2_report(trials=2, n=100, threshold=5)
        assert set(rows) == {"strawman1", "strawman2", "power_sum"}
        assert rows["power_sum"].size_bits == 5 * 32 + 16
        assert rows["strawman2"].decode_extrapolated_days is not None
        assert rows["strawman1"].decode is not None

    def test_format_table2_includes_paper(self):
        text = format_table2(table2_report(trials=2, n=60, threshold=4))
        assert "(paper)" in text
        assert "Power Sums" in text

    def test_fig5_series_shape(self):
        series = fig5_series(thresholds=(2, 6), bits_options=(16, 32),
                             n=50, trials=2)
        assert set(series) == {16, 32}
        assert set(series[16]) == {2, 6}
        assert all(v > 0 for curve in series.values()
                   for v in curve.values())

    def test_fig6_series_shape(self):
        series = fig6_series(missing_counts=(0, 2), bits_options=(32,),
                             n=60, threshold=4, trials=2)
        assert set(series[32]) == {0, 2}
        assert series[32][0] < series[32][2]

    def test_format_series(self):
        text = format_series({32: {1: 10.0, 2: 20.0}}, x_label="t")
        assert "32-bit" in text
        assert "10.0" in text and "20.0" in text

    def test_table3_report_matches_module(self):
        from repro.quack.collision import collision_probability
        report = table3_report()
        assert report[16]["ours"] == collision_probability(1000, 16)


class TestFrequency:
    def test_cc_division_paper_point(self):
        sizing = cc_division_sizing()
        assert (sizing.packets_per_rtt, sizing.threshold) == (1000, 20)

    def test_ack_reduction_factor(self):
        assert ack_reduction_sizing(every_n=64, threshold=16) \
            .bandwidth_saving_factor == pytest.approx(4.0)

    def test_cadence_validation(self):
        with pytest.raises(ValueError):
            retransmission_cadence(1.0)
        with pytest.raises(ValueError):
            retransmission_cadence(-0.1)

    def test_cadence_monotone_in_loss(self):
        cadences = [retransmission_cadence(loss)
                    for loss in (0.4, 0.2, 0.1, 0.05)]
        assert cadences == sorted(cadences)
