"""Tests for congestion controllers (repro.transport.cc)."""

import pytest

from repro.transport.cc.base import (
    INITIAL_WINDOW_PACKETS,
    MIN_WINDOW_PACKETS,
)
from repro.transport.cc.cubic import Cubic
from repro.transport.cc.fixed import AimdRate, FixedWindow
from repro.transport.cc.newreno import NewReno

MSS = 1500


class TestNewReno:
    def test_initial_window(self):
        cc = NewReno(MSS)
        assert cc.cwnd == INITIAL_WINDOW_PACKETS * MSS
        assert cc.in_slow_start

    def test_slow_start_doubles_per_window(self):
        cc = NewReno(MSS)
        start = cc.cwnd
        cc.on_ack(start, 0.05, 1.0)  # a full window acked
        assert cc.cwnd == 2 * start

    def test_congestion_halves_and_exits_slow_start(self):
        cc = NewReno(MSS)
        before = cc.cwnd
        cc.on_congestion_event(sent_time=0.5, now=1.0)
        assert cc.cwnd == before // 2
        assert cc.ssthresh == cc.cwnd
        assert not cc.in_slow_start
        assert cc.congestion_events == 1

    def test_congestion_avoidance_linear(self):
        cc = NewReno(MSS)
        cc.on_congestion_event(0.5, 1.0)
        w = cc.cwnd
        # One window's worth of acks grows cwnd by ~1 MSS.
        acked = 0
        while acked < w:
            cc.on_ack(MSS, 0.05, 2.0)
            acked += MSS
        assert w + MSS <= cc.cwnd <= w + 2 * MSS

    def test_once_per_round_trip_reduction(self):
        cc = NewReno(MSS)
        cc.on_congestion_event(sent_time=1.0, now=2.0)
        after_first = cc.cwnd
        # A loss for a packet sent *before* recovery began: ignored.
        cc.on_congestion_event(sent_time=1.5, now=2.1)
        assert cc.cwnd == after_first
        assert cc.congestion_events == 1
        # A loss for a packet sent after recovery began: new event.
        cc.on_congestion_event(sent_time=2.05, now=2.2)
        assert cc.cwnd < after_first
        assert cc.congestion_events == 2

    def test_window_floor(self):
        cc = NewReno(MSS)
        for i in range(20):
            cc.on_congestion_event(sent_time=float(i) + 0.5, now=float(i) + 1)
        assert cc.cwnd >= MIN_WINDOW_PACKETS * MSS

    def test_can_send(self):
        cc = FixedWindow(2, MSS)
        assert cc.can_send(0, MSS)
        assert cc.can_send(MSS, MSS)
        assert not cc.can_send(2 * MSS, MSS)

    def test_slow_start_clamps_to_ssthresh(self):
        cc = NewReno(MSS)
        cc.ssthresh = cc.cwnd + MSS // 2
        cc.on_ack(5 * MSS, 0.05, 1.0)
        assert cc.cwnd == int(cc.ssthresh)


class TestCubic:
    def test_slow_start_grows(self):
        cc = Cubic(MSS)
        start = cc.cwnd
        cc.on_ack(start, 0.05, 1.0)
        assert cc.cwnd == 2 * start

    def test_reduction_uses_beta(self):
        cc = Cubic(MSS)
        before = cc.cwnd
        cc.on_congestion_event(0.5, 1.0)
        assert cc.cwnd == pytest.approx(before * 0.7, abs=MSS)
        assert not cc.in_slow_start

    def test_recovers_toward_w_max(self):
        cc = Cubic(MSS)
        # Grow a bit, then lose.
        cc.on_ack(cc.cwnd, 0.05, 0.5)
        w_before_loss = cc.cwnd_packets
        cc.on_congestion_event(0.4, 1.0)
        # Ack steadily for several virtual seconds: the cubic curve should
        # approach/exceed the pre-loss window.
        t = 1.0
        for _ in range(2000):
            t += 0.01
            cc.on_ack(MSS, 0.05, t)
        assert cc.cwnd_packets >= 0.9 * w_before_loss

    def test_fast_convergence_lowers_w_max(self):
        cc = Cubic(MSS)
        cc.on_congestion_event(0.5, 1.0)
        first_w_max = cc._w_max
        cc.on_congestion_event(1.5, 2.0)
        assert cc._w_max < first_w_max

    def test_window_floor(self):
        cc = Cubic(MSS)
        for i in range(30):
            cc.on_congestion_event(float(i) + 0.5, float(i) + 1)
        assert cc.cwnd >= MIN_WINDOW_PACKETS * MSS


class TestFixedWindow:
    def test_ignores_everything(self):
        cc = FixedWindow(8, MSS)
        w = cc.cwnd
        cc.on_ack(10 * MSS, 0.05, 1.0)
        cc.on_congestion_event(0.5, 1.0)
        assert cc.cwnd == w
        assert cc.congestion_events == 1  # counted, but window unchanged

    def test_never_in_slow_start(self):
        assert not FixedWindow(8, MSS).in_slow_start

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedWindow(0, MSS)


class TestAimdRate:
    def test_pacing_rate(self):
        cc = AimdRate(MSS)
        rate = cc.pacing_rate_bps(0.1)
        assert rate == pytest.approx(cc.cwnd * 8 / 0.1)

    def test_reduction(self):
        cc = AimdRate(MSS)
        before = cc.cwnd
        cc.on_congestion_event(0.5, 1.0)
        assert cc.cwnd == before // 2

    def test_growth_mirrors_newreno(self):
        aimd = AimdRate(MSS)
        reno = NewReno(MSS)
        for controller in (aimd, reno):
            controller.on_congestion_event(0.5, 1.0)
            for _ in range(30):
                controller.on_ack(MSS, 0.05, 2.0)
        assert aimd.cwnd == reno.cwnd
