"""In-simulator tests for the transport endpoints (connection.py)."""

import random

import pytest

from repro.errors import TransportError
from repro.netsim.core import Simulator
from repro.netsim.loss import BernoulliLoss, DeterministicLoss
from repro.netsim.node import Host, Router
from repro.netsim.packet import PacketKind
from repro.netsim.topology import HopSpec, build_path
from repro.transport.ack import AckFrequencyPolicy
from repro.transport.cc.fixed import FixedWindow
from repro.transport.connection import ReceiverConnection, SenderConnection
from repro.transport.frames import HEADER_BYTES


def make_pair(total_bytes=100_000, hops=None, sender_kwargs=None,
              receiver_kwargs=None):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    nodes = [server, client]
    if hops is None:
        hops = [HopSpec(bandwidth_bps=10e6, delay_s=0.01)]
    if len(hops) == 2:
        nodes = [server, Router(sim, "mid"), client]
    topo = build_path(sim, nodes, hops)
    receiver = ReceiverConnection(sim, client, "server", total_bytes,
                                  **(receiver_kwargs or {}))
    sender = SenderConnection(sim, server, "client", total_bytes,
                              **(sender_kwargs or {}))
    return sim, sender, receiver, topo


class TestCleanTransfer:
    def test_completes(self):
        sim, sender, receiver, _ = make_pair()
        sender.start()
        sim.run(until=30)
        assert sender.complete and receiver.complete
        assert receiver.stats.bytes_received == 100_000
        assert sender.stats.retransmitted_packets == 0
        assert receiver.completed_at <= sender.completed_at

    def test_start_is_idempotent(self):
        sim, sender, receiver, _ = make_pair()
        sender.start()
        sender.start()
        sim.run(until=30)
        assert receiver.stats.bytes_received == 100_000

    def test_exact_byte_accounting(self):
        sim, sender, receiver, _ = make_pair(total_bytes=3001)
        sender.start()
        sim.run(until=30)
        assert receiver.stats.bytes_received == 3001
        assert receiver.stats.duplicate_packets == 0

    def test_total_bytes_must_be_positive(self):
        sim = Simulator()
        host = Host(sim, "h")
        with pytest.raises(TransportError):
            SenderConnection(sim, host, "peer", total_bytes=0)

    def test_completion_callbacks(self):
        done = []
        sim, sender, receiver, _ = make_pair()
        sender.on_complete = done.append
        receiver.on_complete = done.append
        sender.start()
        sim.run(until=30)
        assert len(done) == 2

    def test_window_limits_inflight(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=500_000,
            sender_kwargs={"cc": FixedWindow(4, 1500)})
        sender.start()
        sim.run(until=0.011)  # before first ACK returns
        assert sender.stats.packets_sent == 4


class TestLossRecovery:
    def test_single_loss_repaired(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=60_000,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=DeterministicLoss({3}))])
        sender.start()
        sim.run(until=30)
        assert receiver.complete
        assert sender.stats.retransmitted_packets >= 1
        assert sender.stats.losses_detected >= 1

    def test_random_loss_repaired(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=300_000,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=BernoulliLoss(0.05, random.Random(7)))])
        sender.start()
        sim.run(until=60)
        assert receiver.complete and sender.complete
        assert receiver.stats.bytes_received == 300_000

    def test_loss_on_ack_path_tolerated(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=200_000,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_down=BernoulliLoss(0.2, random.Random(3)))])
        sender.start()
        sim.run(until=60)
        assert receiver.complete and sender.complete

    def test_pto_fires_when_tail_is_lost(self):
        # Drop the last data packet; only the PTO can recover it.
        total = 1460 * 5
        sim, sender, receiver, _ = make_pair(
            total_bytes=total,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=DeterministicLoss({4}))])
        sender.start()
        sim.run(until=30)
        assert receiver.complete
        assert sender.stats.pto_fired >= 1

    def test_brutal_loss_still_completes(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=50_000,
            hops=[HopSpec(bandwidth_bps=5e6, delay_s=0.005,
                          loss_up=BernoulliLoss(0.3, random.Random(11)))])
        sender.start()
        sim.run(until=110)
        assert receiver.complete

    def test_congestion_event_on_loss(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=300_000,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=BernoulliLoss(0.05, random.Random(5)))])
        sender.start()
        sim.run(until=60)
        assert sender.cc.congestion_events >= 1


class TestAckFrequency:
    def test_sparse_acks_reduce_ack_count(self):
        results = {}
        for every in (2, 16):
            sim, sender, receiver, _ = make_pair(
                total_bytes=300_000,
                receiver_kwargs={"ack_policy": AckFrequencyPolicy(
                    ack_every=every, max_delay_s=0.05)})
            sender.start()
            sim.run(until=60)
            assert receiver.complete
            results[every] = receiver.stats.acks_sent
        assert results[16] < results[2] / 3

    def test_ack_frequency_frame_applied(self):
        sim, sender, receiver, _ = make_pair(total_bytes=300_000)
        sender.request_ack_frequency(ack_every=16, max_delay_s=0.04)
        sim.run(until=1)
        assert receiver.ack_policy.ack_every == 16
        assert receiver.ack_policy.max_delay_s == 0.04

    def test_out_of_order_acks_immediately_despite_policy(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=1460 * 30,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=DeterministicLoss({2}))],
            receiver_kwargs={"ack_policy": AckFrequencyPolicy(
                ack_every=64, max_delay_s=0.2)})
        sender.start()
        sim.run(until=0.1)
        # The gap after the dropped packet must have forced an early ACK.
        assert receiver.stats.acks_sent >= 1


class TestSidecarHooks:
    def test_send_listener_sees_every_packet(self):
        records = []
        sim, sender, receiver, _ = make_pair(total_bytes=1460 * 8)
        sender.add_send_listener(records.append)
        sender.start()
        sim.run(until=10)
        assert len(records) == sender.stats.packets_sent
        assert all(r.identifier is not None for r in records)

    def test_sidecar_receipt_moves_window_without_acks(self):
        # Black-hole the ACK path so only sidecar feedback can open cwnd.
        sim, sender, receiver, _ = make_pair(
            total_bytes=1460 * 100,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_down=BernoulliLoss(1.0 - 1e-12,
                                                  random.Random(0)))],
            sender_kwargs={"cc": FixedWindow(4, 1500)})
        sender.start()
        sim.run(until=0.05)
        first_burst = sender.stats.packets_sent
        assert first_burst == 4
        sender.sidecar_receipt([0, 1, 2, 3])
        sim.run(until=0.1)
        assert sender.stats.packets_sent > first_burst
        assert sender.stats.sidecar_releases == 4

    def test_sidecar_receipt_idempotent_with_acks(self):
        sim, sender, receiver, _ = make_pair(total_bytes=1460 * 4)
        sender.start()
        sim.run(until=10)
        assert sender.complete
        flight_before = sender.bytes_in_flight
        sender.sidecar_receipt([0, 1])  # already acked: no effect
        assert sender.bytes_in_flight == flight_before
        assert sender.stats.sidecar_releases == 0

    def test_sidecar_loss_triggers_retransmission(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=1460 * 6,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=DeterministicLoss({1}))])
        sender.start()
        sim.run(until=0.015)
        assert not sender.complete
        sender.sidecar_loss([1], congestive=False)
        sim.run(until=10)
        assert receiver.complete
        assert sender.stats.sidecar_losses == 1
        assert sender.stats.retransmitted_packets >= 1

    def test_cc_from_acks_false_freezes_window_growth(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=500_000, sender_kwargs={"cc_from_acks": False})
        initial_cwnd = sender.cc.cwnd
        sender.start()
        sim.run(until=2)
        # ACKs flow but must not grow the window.
        assert sender.stats.acks_received > 0
        assert sender.cc.cwnd == initial_cwnd

    def test_identifier_collision_lookup(self):
        sim, sender, receiver, _ = make_pair(total_bytes=1460 * 3)
        sender.start()
        sim.run(until=10)
        record = sender.sent[0]
        assert sender.packet_number_of_identifier(record.identifier) == [0]
        assert sender.packet_number_of_identifier(0xFFFFFFFF + 1) == []


class TestThroughHopPath:
    def test_two_hop_transfer(self):
        sim, sender, receiver, _ = make_pair(
            total_bytes=200_000,
            hops=[HopSpec(bandwidth_bps=50e6, delay_s=0.02),
                  HopSpec(bandwidth_bps=10e6, delay_s=0.01)])
        sender.start()
        sim.run(until=30)
        assert receiver.complete
        # Goodput bounded by the narrow hop.
        assert receiver.monitor.goodput_bps() < 10e6


class TestRetransmitAttribution:
    """Retransmit trace events must carry their loss-detection cause."""

    def _traced_lossy_run(self, **sender_kwargs):
        from repro import obs

        sim, sender, receiver, _ = make_pair(
            total_bytes=200_000,
            hops=[HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                          loss_up=BernoulliLoss(0.05, random.Random(7)))],
            sender_kwargs=sender_kwargs)
        sink = obs.enable()
        try:
            sender.start()
            sim.run(until=60)
            events = sink.events
        finally:
            obs.disable()
            obs.reset()
        assert receiver.complete
        return sender, events

    def test_every_retransmit_event_tagged(self):
        sender, events = self._traced_lossy_run()
        retransmits = [event for event in events
                       if event.type == "transport.retransmit"]
        assert len(retransmits) >= 1
        assert len(retransmits) == sender.stats.retransmitted_packets
        for event in retransmits:
            assert event.fields["cause"] in ("quack", "ack", "pto")
            assert event.fields["latency"] > 0
            # detection can never beat the one-way delay of the path
            assert event.fields["latency"] >= 0.01
