"""Tests for connection probes and text charts."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.node import Host
from repro.netsim.topology import HopSpec, build_path
from repro.transport.connection import ReceiverConnection, SenderConnection
from repro.transport.instrument import (
    ConnectionProbe,
    ConnectionSample,
    ascii_chart,
)


def run_probed(total=400_000, interval=0.05):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    build_path(sim, [server, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.01)])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total)
    probe = ConnectionProbe(sim, sender, interval_s=interval)
    sender.start()
    sim.run(until=30)
    return sender, receiver, probe


class TestConnectionProbe:
    def test_samples_at_cadence(self):
        sender, receiver, probe = run_probed()
        assert receiver.complete
        assert len(probe.samples) >= 2
        gaps = [b.time - a.time
                for a, b in zip(probe.samples, probe.samples[1:])]
        assert all(abs(g - 0.05) < 1e-9 for g in gaps)

    def test_stops_at_completion(self):
        sender, receiver, probe = run_probed()
        # The sender finishes one RTT after the receiver (final ACK);
        # sampling must stop within one interval of that.
        final = probe.samples[-1].time
        assert final <= sender.completed_at + 0.05 + 1e-9
        # No samples long after completion.
        assert final < 5.0

    def test_series_extraction(self):
        _, _, probe = run_probed()
        times, cwnd = probe.series("cwnd_bytes")
        assert len(times) == len(cwnd) == len(probe.samples)
        assert cwnd[0] > 0
        times2, packets = probe.cwnd_packets_series()
        assert packets[0] == pytest.approx(10, abs=1)  # initial window

    def test_monotone_counters(self):
        _, _, probe = run_probed()
        sent = [s.packets_sent for s in probe.samples]
        assert sent == sorted(sent)

    def test_self_stop_no_further_samples(self):
        sender, receiver, probe = run_probed()
        sim = probe.sim
        count = len(probe.samples)
        sim.run(until=sim.now + 10)
        assert len(probe.samples) == count

    def test_stop_idempotent(self):
        sim = Simulator()
        server, client = Host(sim, "server"), Host(sim, "client")
        build_path(sim, [server, client], [HopSpec()])
        ReceiverConnection(sim, client, "server", 1_000_000)
        sender = SenderConnection(sim, server, "client", 1_000_000)
        probe = ConnectionProbe(sim, sender, interval_s=0.01)
        sender.start()
        sim.run(until=0.05)
        probe.stop()
        probe.stop()  # second stop is a no-op, not an error
        count = len(probe.samples)
        sim.run(until=1.0)
        assert len(probe.samples) == count
        probe.stop()  # stopping an already-finished probe is fine too

    def test_manual_stop(self):
        sim = Simulator()
        server, client = Host(sim, "server"), Host(sim, "client")
        build_path(sim, [server, client], [HopSpec()])
        receiver = ReceiverConnection(sim, client, "server", 1_000_000)
        sender = SenderConnection(sim, server, "client", 1_000_000)
        probe = ConnectionProbe(sim, sender, interval_s=0.01)
        sender.start()
        sim.run(until=0.05)
        probe.stop()
        count = len(probe.samples)
        sim.run(until=1.0)
        assert len(probe.samples) == count

    def test_interval_validation(self):
        sim = Simulator()
        server = Host(sim, "s")
        with pytest.raises(ValueError):
            ConnectionProbe(sim, object(), interval_s=0)  # type: ignore


class TestAsciiChart:
    def test_renders_expected_shape(self):
        chart = ascii_chart([0, 1, 2, 3, 4, 5], width=6, height=3,
                            label="ramp")
        lines = chart.splitlines()
        assert lines[0].startswith("ramp")
        assert len(lines) == 4
        assert len(lines[1]) == 6
        # Top row only shows the highest values; bottom row shows all.
        assert lines[1].count("#") < lines[3].count("#")

    def test_single_value(self):
        chart = ascii_chart([7.0], width=5, height=3, label="one")
        lines = chart.splitlines()
        assert "min 7" in lines[0] and "max 7" in lines[0]
        # One column, painted at least on the bottom row.
        assert lines[-1].count("#") == 1

    def test_flat_series(self):
        chart = ascii_chart([5, 5, 5], width=3, height=2)
        lines = chart.splitlines()
        assert "#" in lines[-1]

    def test_empty_series(self):
        assert "(no data)" in ascii_chart([], label="x")

    def test_buckets_longer_series(self):
        chart = ascii_chart(list(range(1000)), width=10, height=2)
        assert len(chart.splitlines()[1]) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], width=0)
        with pytest.raises(ValueError):
            ascii_chart([1], height=0)
