"""Tests for ECN marking, echo, and response (extension X4).

Section 2.2: "end-to-end ACKs may convey Explicit Congestion
Notification (ECN) information" -- one of the roles quACKs cannot
fulfill, since the CE mark rides the IP header of the *data* packet and
is echoed inside the encrypted ACK.
"""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.topology import HopSpec, build_path
from repro.transport.connection import ReceiverConnection, SenderConnection


class TestLinkMarking:
    def test_marks_above_threshold(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, 8e6, 0.001, delivered.append, ecn_threshold=2)
        for _ in range(5):
            link.send(Packet(src="a", dst="b", size_bytes=1000))
        sim.run()
        # Packets 0-1 arrive to queue depths 0,1 (unmarked); 2-4 to depths
        # 2,3,4 (marked).
        marks = [p.ecn_ce for p in delivered]
        assert marks == [False, False, True, True, True]
        assert link.stats.ce_marked == 3

    def test_no_threshold_no_marks(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, 8e6, 0.001, delivered.append)
        for _ in range(10):
            link.send(Packet(src="a", dst="b", size_bytes=1000))
        sim.run()
        assert not any(p.ecn_ce for p in delivered)

    def test_threshold_validation(self):
        from repro.errors import SimulationError
        sim = Simulator()
        with pytest.raises(SimulationError):
            Link(sim, 8e6, 0.001, lambda p: None, ecn_threshold=0)

    def test_already_marked_not_recounted(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, 8e6, 0.001, delivered.append, ecn_threshold=1)
        first = Packet(src="a", dst="b", size_bytes=100, ecn_ce=True)
        link.send(first)
        link.send(Packet(src="a", dst="b", size_bytes=100))
        sim.run()
        assert link.stats.ce_marked == 1  # only the second was newly marked


class TestEndToEndEcn:
    def make(self, ecn_threshold, total=400_000):
        sim = Simulator()
        server, client = Host(sim, "server"), Host(sim, "client")
        # A narrow hop behind a fast sender: the queue builds in slow
        # start, the AQM marks instead of dropping.
        build_path(sim, [server, client],
                   [HopSpec(bandwidth_bps=10e6, delay_s=0.01,
                            queue_packets=512,
                            ecn_threshold=ecn_threshold)])
        receiver = ReceiverConnection(sim, client, "server", total)
        sender = SenderConnection(sim, server, "client", total)
        sender.start()
        sim.run(until=60)
        return sender, receiver

    def test_receiver_echoes_ce_count(self):
        sender, receiver = self.make(ecn_threshold=8)
        assert receiver.complete
        assert receiver.ce_count > 0
        assert sender._ce_echoed == receiver.ce_count

    def test_sender_responds_to_ce_without_loss(self):
        marked_sender, _ = self.make(ecn_threshold=8)
        plain_sender, _ = self.make(ecn_threshold=None)
        # With marking, congestion events occur despite zero loss (the
        # 512-packet queue never fills once ECN backs the sender off)...
        assert marked_sender.cc.congestion_events > 0
        assert marked_sender.stats.losses_detected == 0
        # ...and the window backs off relative to the unmarked run.
        assert marked_sender.cc.congestion_events >= \
            plain_sender.cc.congestion_events

    def test_ecn_keeps_queues_shorter_than_droptail(self):
        """The point of marking early: back off before the queue fills."""
        marked_sender, marked_receiver = self.make(ecn_threshold=8)
        plain_sender, plain_receiver = self.make(ecn_threshold=None)
        assert marked_receiver.complete and plain_receiver.complete
        # ECN avoids the slow-start overshoot retransmissions.
        assert marked_sender.stats.retransmitted_packets <= \
            plain_sender.stats.retransmitted_packets

    def test_ce_response_once_per_batch(self):
        """Cumulative echo: a stream of ACKs repeating the same CE count
        causes one response, not one per ACK."""
        sender, receiver = self.make(ecn_threshold=8)
        # Many more ACKs arrived than congestion events occurred.
        assert sender.stats.acks_received > 5 * sender.cc.congestion_events
