"""Tests for BbrLite and paced sending (transport extensions)."""

import random

import pytest

from repro.netsim.core import Simulator
from repro.netsim.loss import BernoulliLoss
from repro.netsim.node import Host
from repro.netsim.topology import HopSpec, build_path
from repro.transport.cc.bbr import BbrLite
from repro.transport.cc.newreno import NewReno
from repro.transport.connection import ReceiverConnection, SenderConnection

BOTTLENECK_BPS = 20e6
BASE_RTT = 0.04


def run_transfer(cc, loss=0.0, total=1_500_000, pacing=True, seed=4,
                 queue_packets=64):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    build_path(sim, [server, client],
               [HopSpec(bandwidth_bps=BOTTLENECK_BPS, delay_s=BASE_RTT / 2,
                        queue_packets=queue_packets,
                        loss_up=BernoulliLoss(loss, random.Random(seed)))])
    receiver = ReceiverConnection(sim, client, "server", total)
    sender = SenderConnection(sim, server, "client", total, cc=cc,
                              pacing=pacing)
    sender.start()
    sim.run(until=120)
    return sender, receiver


class TestBbrModel:
    def test_converges_to_bottleneck_bandwidth(self):
        sender, receiver = run_transfer(BbrLite())
        assert receiver.complete
        bbr = sender.cc
        assert bbr.mode == "probe_bw"
        assert bbr.bottleneck_bandwidth_bps == \
            pytest.approx(BOTTLENECK_BPS, rel=0.15)

    def test_rtprop_tracks_base_rtt(self):
        sender, _ = run_transfer(BbrLite())
        # min RTT estimate close to propagation + 1 serialization.
        assert sender.cc.min_rtt_estimate == pytest.approx(BASE_RTT, rel=0.1)

    def test_good_utilization_on_clean_path(self):
        _, receiver = run_transfer(BbrLite())
        goodput = receiver.monitor.goodput_bps(receiver.completed_at)
        assert goodput > 0.6 * BOTTLENECK_BPS

    def test_loss_agnostic_where_newreno_collapses(self):
        """The Section 2.1 motivation: a model-based controller on the
        lossy segment keeps the pipe full where AIMD cannot."""
        _, reno_receiver = run_transfer(NewReno(), loss=0.05)
        _, bbr_receiver = run_transfer(BbrLite(), loss=0.05)
        reno_goodput = reno_receiver.monitor.goodput_bps(
            reno_receiver.completed_at)
        bbr_goodput = bbr_receiver.monitor.goodput_bps(
            bbr_receiver.completed_at)
        assert bbr_goodput > 4 * reno_goodput

    def test_startup_exits(self):
        sender, _ = run_transfer(BbrLite(), total=2_000_000)
        assert sender.cc.mode in ("probe_bw", "drain")

    def test_no_window_collapse_on_loss_events(self):
        cc = BbrLite(1500)
        cc.cwnd = 100 * 1500
        cc.on_congestion_event(sent_time=0.5, now=1.0)
        assert cc.cwnd == 100 * 1500  # BBR ignores individual losses

    def test_pacing_gain_cycle(self):
        cc = BbrLite(1500)
        cc._mode = "probe_bw"
        gains = set()
        for index in range(8):
            cc._cycle_index = index
            gains.add(cc.pacing_gain)
        assert gains == {1.25, 0.75, 1.0}

    def test_unprimed_pacing_rate_positive(self):
        cc = BbrLite(1500)
        assert cc.pacing_rate_bps(0.05) > 0

    def test_repr(self):
        assert "mode=startup" in repr(BbrLite())


class TestPacing:
    def test_pacing_spreads_the_initial_window(self):
        """Without pacing the initial window leaves back-to-back; with
        pacing the packets are spaced out."""
        def first_burst(pacing):
            sim = Simulator()
            server, client = Host(sim, "server"), Host(sim, "client")
            build_path(sim, [server, client],
                       [HopSpec(bandwidth_bps=100e6, delay_s=0.05)])
            receiver = ReceiverConnection(sim, client, "server", 1_000_000)
            sender = SenderConnection(sim, server, "client", 1_000_000,
                                      pacing=pacing)
            times = []
            sender.add_send_listener(lambda rec: times.append(rec.time_sent))
            sender.start()
            sim.run(until=0.04)  # before the first ACK can arrive
            return times

        burst = first_burst(pacing=False)
        paced = first_burst(pacing=True)
        assert max(burst) - min(burst) == 0.0  # one instantaneous burst
        assert max(paced) - min(paced) > 0.005

    def test_bbr_avoids_bufferbloat(self):
        """On a deep queue, loss-based control fills the buffer (RTT
        inflates toward queue capacity); BBR paces at the bottleneck rate
        and keeps the smoothed RTT near the propagation floor."""
        reno, recv_reno = run_transfer(NewReno(), pacing=False,
                                       queue_packets=256, total=3_000_000)
        bbr, recv_bbr = run_transfer(BbrLite(), pacing=True,
                                     queue_packets=256, total=3_000_000)
        assert recv_reno.complete and recv_bbr.complete
        assert bbr.rtt.srtt < BASE_RTT * 1.5      # queue mostly empty
        assert reno.rtt.srtt > bbr.rtt.srtt       # AIMD stood in line

    def test_paced_transfer_completes_exactly(self):
        sender, receiver = run_transfer(NewReno(), total=777_777, pacing=True)
        assert receiver.complete
        assert receiver.stats.bytes_received == 777_777
