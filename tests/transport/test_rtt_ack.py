"""Tests for RTT estimation and ACK tracking/frequency."""

import pytest

from repro.transport.ack import AckFrequencyPolicy, AckTracker
from repro.transport.rtt import GRANULARITY, RttEstimator


class TestRttEstimator:
    def test_first_sample_initializes(self):
        rtt = RttEstimator()
        rtt.update(0.050)
        assert rtt.srtt == pytest.approx(0.050)
        assert rtt.rttvar == pytest.approx(0.025)
        assert rtt.min_rtt == pytest.approx(0.050)
        assert rtt.has_sample

    def test_ewma_smoothing(self):
        rtt = RttEstimator()
        rtt.update(0.100)
        rtt.update(0.200)
        assert rtt.srtt == pytest.approx(0.875 * 0.100 + 0.125 * 0.200)
        assert rtt.latest == 0.200

    def test_min_rtt_tracks_minimum(self):
        rtt = RttEstimator()
        for sample in (0.08, 0.03, 0.12):
            rtt.update(sample)
        assert rtt.min_rtt == pytest.approx(0.03)

    def test_nonpositive_samples_ignored(self):
        rtt = RttEstimator()
        rtt.update(0.0)
        rtt.update(-1.0)
        assert not rtt.has_sample

    def test_ack_delay_subtracted_only_above_min(self):
        rtt = RttEstimator()
        rtt.update(0.050)
        rtt.update(0.080, ack_delay=0.020)  # 0.060 >= min: adjusted
        expected = 0.875 * 0.050 + 0.125 * 0.060
        assert rtt.srtt == pytest.approx(expected)

    def test_ack_delay_not_subtracted_below_min(self):
        rtt = RttEstimator()
        rtt.update(0.050)
        before = rtt.srtt
        rtt.update(0.051, ack_delay=0.030)  # 0.021 < min: keep raw
        expected = 0.875 * before + 0.125 * 0.051
        assert rtt.srtt == pytest.approx(expected)

    def test_pto_interval_and_backoff(self):
        rtt = RttEstimator()
        rtt.update(0.040)
        base = rtt.pto_interval(max_ack_delay=0.025)
        assert base == pytest.approx(rtt.srtt + max(4 * rtt.rttvar,
                                                    GRANULARITY) + 0.025)
        assert rtt.pto_interval(0.025, backoff_exponent=2) == \
            pytest.approx(base * 4)

    def test_loss_time_threshold(self):
        rtt = RttEstimator()
        rtt.update(0.040)
        rtt.update(0.080)
        assert rtt.loss_time_threshold() == pytest.approx(
            9 / 8 * max(rtt.srtt, 0.080))

    def test_repr(self):
        assert "srtt" in repr(RttEstimator())


class TestAckTracker:
    def test_records_and_detects_duplicates(self):
        tracker = AckTracker()
        assert tracker.on_packet(0)
        assert tracker.on_packet(1)
        assert not tracker.on_packet(0)
        assert tracker.largest == 1
        assert tracker.pending_ack_count == 2

    def test_ranges_most_recent_first(self):
        tracker = AckTracker()
        for pn in (0, 1, 5, 6, 10):
            tracker.on_packet(pn)
        assert tracker.ack_ranges() == ((10, 10), (5, 6), (0, 1))

    def test_range_truncation(self):
        tracker = AckTracker(max_ranges=2)
        for pn in (0, 2, 4, 6):
            tracker.on_packet(pn)
        assert tracker.ack_ranges() == ((6, 6), (4, 4))

    def test_mark_acked_resets_pending(self):
        tracker = AckTracker()
        tracker.on_packet(0)
        tracker.mark_acked()
        assert tracker.pending_ack_count == 0
        tracker.on_packet(1)
        assert tracker.pending_ack_count == 1

    def test_empty(self):
        tracker = AckTracker()
        assert tracker.largest is None
        assert tracker.ack_ranges() == ()


class TestAckFrequencyPolicy:
    def test_default_acks_every_other(self):
        policy = AckFrequencyPolicy()
        assert not policy.should_ack_immediately(1)
        assert policy.should_ack_immediately(2)

    def test_out_of_order_acks_immediately(self):
        policy = AckFrequencyPolicy(ack_every=32)
        assert policy.should_ack_immediately(1, out_of_order=True)

    def test_update(self):
        policy = AckFrequencyPolicy()
        policy.update(32, 0.05)
        assert policy.ack_every == 32
        assert policy.max_delay_s == 0.05
        assert not policy.should_ack_immediately(31)
        assert policy.should_ack_immediately(32)

    def test_validation(self):
        with pytest.raises(ValueError):
            AckFrequencyPolicy(ack_every=0)
        with pytest.raises(ValueError):
            AckFrequencyPolicy(max_delay_s=-1)

    def test_repr(self):
        assert "every=2" in repr(AckFrequencyPolicy())
