"""Tests for RangeSet (repro.transport.ranges), with a model-based check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.ranges import RangeSet

range_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200),
              st.integers(min_value=0, max_value=10)),
    min_size=0, max_size=30,
)


class TestAddAndMerge:
    def test_single_values(self):
        rs = RangeSet()
        rs.add(5)
        rs.add(7)
        assert rs.ranges == ((5, 5), (7, 7))

    def test_adjacent_values_merge(self):
        rs = RangeSet()
        rs.add(5)
        rs.add(6)
        assert rs.ranges == ((5, 6),)

    def test_bridge_merge(self):
        rs = RangeSet()
        rs.add(5)
        rs.add(7)
        rs.add(6)
        assert rs.ranges == ((5, 7),)

    def test_overlapping_ranges(self):
        rs = RangeSet()
        rs.add_range(0, 10)
        rs.add_range(5, 15)
        assert rs.ranges == ((0, 15),)

    def test_containing_range_absorbs(self):
        rs = RangeSet()
        rs.add_range(3, 4)
        rs.add_range(0, 10)
        assert rs.ranges == ((0, 10),)

    def test_duplicate_add_is_noop(self):
        rs = RangeSet()
        rs.add(5)
        rs.add(5)
        assert rs.ranges == ((5, 5),)
        assert len(rs) == 1

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            RangeSet().add_range(5, 3)

    def test_constructor_ranges(self):
        rs = RangeSet([(0, 2), (4, 6)])
        assert rs.ranges == ((0, 2), (4, 6))

    @given(ops=range_ops)
    @settings(max_examples=80)
    def test_model_based(self, ops):
        """RangeSet must behave exactly like a plain set of ints."""
        rs = RangeSet()
        model = set()
        for lo, width in ops:
            rs.add_range(lo, lo + width)
            model.update(range(lo, lo + width + 1))
        assert len(rs) == len(model)
        # Ranges are sorted, disjoint, non-adjacent.
        flat = list(rs.ranges)
        for (lo1, hi1), (lo2, hi2) in zip(flat, flat[1:]):
            assert hi1 + 2 <= lo2
        # Membership agrees on a sample.
        for v in list(model)[:50]:
            assert v in rs
        for v in range(0, 250, 7):
            assert (v in rs) == (v in model)


class TestQueries:
    def test_min_max(self):
        rs = RangeSet([(5, 9), (20, 22)])
        assert rs.min_value == 5
        assert rs.max_value == 22
        assert RangeSet().max_value is None
        assert RangeSet().min_value is None

    def test_bool(self):
        assert not RangeSet()
        assert RangeSet([(1, 1)])

    def test_covers_contiguously(self):
        rs = RangeSet([(0, 10), (12, 20)])
        assert rs.covers_contiguously(0, 10)
        assert rs.covers_contiguously(3, 7)
        assert not rs.covers_contiguously(0, 12)
        assert not rs.covers_contiguously(9, 13)
        assert rs.covers_contiguously(12, 20)

    def test_missing_below(self):
        rs = RangeSet([(0, 3), (6, 8), (12, 12)])
        assert rs.missing_below(12) == [(4, 5), (9, 11)]
        assert rs.missing_below(14) == [(4, 5), (9, 11), (13, 14)]
        assert rs.missing_below(3) == []
        assert rs.missing_below(4) == [(4, 4)]

    def test_missing_below_empty_set(self):
        assert RangeSet().missing_below(10) == []

    def test_equality(self):
        assert RangeSet([(1, 3)]) == RangeSet([(1, 2), (3, 3)])
        assert RangeSet() != RangeSet([(0, 0)])

    def test_iter_and_repr(self):
        rs = RangeSet([(1, 2)])
        assert list(rs) == [(1, 2)]
        assert "[1,2]" in repr(rs)
