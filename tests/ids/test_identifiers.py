"""Tests for identifier generation (repro.ids)."""

import random

import numpy as np
import pytest

from repro.ids import (
    IdentifierFactory,
    random_identifiers,
    sample_unique_identifiers,
)


class TestIdentifierFactory:
    def test_deterministic_per_key(self):
        f = IdentifierFactory(b"key", bits=32)
        assert f.identifier(7) == f.identifier(7)
        assert IdentifierFactory(b"key").identifier(7) == f.identifier(7)

    def test_key_changes_identifiers(self):
        a = IdentifierFactory(b"key-a")
        b = IdentifierFactory(b"key-b")
        same = sum(a.identifier(i) == b.identifier(i) for i in range(200))
        assert same <= 1  # collisions possible but vanishingly rare

    def test_bits_mask(self):
        for bits in (8, 16, 24, 32, 48, 64):
            f = IdentifierFactory(b"key", bits=bits)
            values = [f.identifier(i) for i in range(100)]
            assert all(0 <= v < (1 << bits) for v in values)
            # With enough samples the high bit should be exercised.
            assert any(v >= (1 << (bits - 1)) for v in values)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdentifierFactory(b"key", bits=0)
        with pytest.raises(ValueError):
            IdentifierFactory(b"key", bits=65)
        with pytest.raises(ValueError):
            IdentifierFactory(b"", bits=32)

    def test_identifiers_batch_matches_scalar(self):
        f = IdentifierFactory(b"key")
        batch = f.identifiers(50, start=10)
        assert batch.dtype == np.uint64
        assert batch.tolist() == [f.identifier(10 + i) for i in range(50)]

    def test_stream(self):
        f = IdentifierFactory(b"key")
        stream = f.stream(start=3)
        assert [next(stream) for _ in range(4)] == \
            [f.identifier(3 + i) for i in range(4)]

    def test_fresh_uses_distinct_keys(self):
        rng = random.Random(0)
        a = IdentifierFactory.fresh(rng)
        b = IdentifierFactory.fresh(rng)
        assert a.key != b.key

    def test_uniformity_coarse(self):
        # Mean of uniform 32-bit values should be near 2**31.
        f = IdentifierFactory(b"uniformity")
        values = f.identifiers(4000)
        mean = float(values.mean())
        assert abs(mean - 2 ** 31) < 2 ** 31 * 0.05


class TestRandomIdentifiers:
    def test_reproducible(self):
        a = random_identifiers(20, rng=random.Random(5))
        b = random_identifiers(20, rng=random.Random(5))
        assert a.tolist() == b.tolist()

    def test_range(self):
        values = random_identifiers(100, bits=16, rng=random.Random(1))
        assert all(0 <= v < 65536 for v in values.tolist())

    def test_count(self):
        assert random_identifiers(0).size == 0
        assert random_identifiers(7).size == 7


class TestSampleUnique:
    def test_uniqueness(self):
        values = sample_unique_identifiers(1000, bits=16,
                                           rng=random.Random(2))
        assert len(set(values.tolist())) == 1000

    def test_space_exhaustion_guard(self):
        with pytest.raises(ValueError):
            sample_unique_identifiers(300, bits=8)

    def test_full_space(self):
        values = sample_unique_identifiers(256, bits=8, rng=random.Random(3))
        assert sorted(values.tolist()) == list(range(256))
