"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.quack import wire
from repro.quack.power_sum import PowerSumQuack


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestQuackCommands:
    def test_encode_decode_roundtrip(self, capsys):
        code, out = run_cli(capsys, "quack", "encode", "--ids", "11,22,33",
                            "--threshold", "4")
        assert code == 0
        frame = out.strip()
        code, out = run_cli(capsys, "quack", "decode", "--frame", frame,
                            "--log", "11,22,33,44,55")
        assert code == 0
        assert "missing (2): 44,55" in out

    def test_decode_nothing_missing(self, capsys):
        _, out = run_cli(capsys, "quack", "encode", "--ids", "7,8",
                         "--threshold", "2")
        frame = out.strip()
        code, out = run_cli(capsys, "quack", "decode", "--frame", frame,
                            "--log", "7,8")
        assert code == 0
        assert "missing (0): -" in out

    def test_decode_threshold_exceeded_exits_nonzero(self, capsys):
        _, out = run_cli(capsys, "quack", "encode", "--ids", "",
                         "--threshold", "2")
        frame = out.strip()
        code, out = run_cli(capsys, "quack", "decode", "--frame", frame,
                            "--log", "1,2,3,4,5")
        assert code == 1
        assert "threshold-exceeded" in out

    def test_decode_methods(self, capsys):
        _, out = run_cli(capsys, "quack", "encode", "--ids", "5",
                         "--threshold", "2")
        frame = out.strip()
        for method in ("candidates", "factor"):
            code, out = run_cli(capsys, "quack", "decode", "--frame", frame,
                                "--log", "5,6", "--method", method)
            assert code == 0 and "missing (1): 6" in out

    def test_hex_ids_accepted(self, capsys):
        code, out = run_cli(capsys, "quack", "encode", "--ids",
                            "0xff,0x10", "--threshold", "2")
        assert code == 0

    def test_bad_ids_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["quack", "encode", "--ids", "1,banana"])

    def test_bad_hex_frame_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["quack", "decode", "--frame", "zz", "--log", "1"])

    def test_non_power_sum_frame_rejected(self, capsys):
        from repro.quack.strawman import EchoQuack
        frame = wire.encode(EchoQuack()).hex()
        with pytest.raises(SystemExit):
            main(["quack", "decode", "--frame", frame, "--log", "1"])


class TestTables:
    def test_table3(self, capsys):
        code, out = run_cli(capsys, "tables", "table3")
        assert code == 0
        assert "paper 0.98" in out

    def test_table2_quick(self, capsys):
        code, out = run_cli(capsys, "tables", "table2", "--trials", "3")
        assert code == 0
        assert "Power Sums" in out and "Strawman 1" in out


class TestSizing:
    def test_cc_division_defaults_match_paper(self, capsys):
        code, out = run_cli(capsys, "sizing", "cc-division")
        assert code == 0
        assert "packets/RTT: 1000" in out
        assert "quACK bytes: 82" in out

    def test_ack_reduction(self, capsys):
        code, out = run_cli(capsys, "sizing", "ack-reduction")
        assert code == 0
        assert "1.60x" in out

    def test_retransmission(self, capsys):
        code, out = run_cli(capsys, "sizing", "retransmission",
                            "--loss", "0.1")
        assert code == 0
        assert "every 200 packets" in out


class TestExperiments:
    def test_cc_division_small(self, capsys):
        code, out = run_cli(capsys, "experiment", "cc-division",
                            "--total", "150000", "--loss", "0.01")
        assert code == 0
        assert "completed: True" in out
        assert "goodput" in out

    def test_retransmission_baseline(self, capsys):
        code, out = run_cli(capsys, "experiment", "retransmission",
                            "--total", "150000", "--no-sidecar")
        assert code == 0
        assert "in-network retransmission: False" in out


class TestTrace:
    def test_summary_only(self, capsys):
        code, out = run_cli(capsys, "trace", "cc-division",
                            "--total", "60000")
        assert code == 0
        assert "scenario: cc-division" in out
        assert "events by component" in out

    def test_jsonl_export_is_schema_valid(self, capsys, tmp_path):
        from repro.obs.schema import validate_file

        path = tmp_path / "trace.jsonl"
        code, out = run_cli(capsys, "trace", "blackout",
                            "--total", "60000", "--jsonl", str(path))
        assert code == 0
        components = validate_file(str(path))
        for name in ("link", "transport", "quack", "sidecar"):
            assert components.get(name, 0) > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "frobnicate"])


class TestTraceFilter:
    def test_filter_keeps_only_matching_prefixes(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(capsys, "trace", "retransmission",
                          "--total", "120000", "--jsonl", str(path),
                          "--filter", "sidecar.")
        assert code == 0
        import json as _json

        types = {_json.loads(line)["type"]
                 for line in path.read_text().splitlines()}
        assert types and all(t.startswith("sidecar.") for t in types)

    def test_filter_is_repeatable(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(capsys, "trace", "retransmission",
                          "--total", "120000", "--jsonl", str(path),
                          "--filter", "sidecar.", "--filter", "quack.")
        assert code == 0
        import json as _json

        components = {_json.loads(line)["type"].split(".")[0]
                      for line in path.read_text().splitlines()}
        assert components == {"sidecar", "quack"}

    def test_summary_reports_drop_ratio(self, capsys):
        code, out = run_cli(capsys, "trace", "cc-division",
                            "--total", "60000")
        assert code == 0
        assert "drop ratio" in out

    def test_truncated_ring_warns(self, capsys):
        code, out = run_cli(capsys, "trace", "cc-division",
                            "--total", "60000", "--capacity", "64")
        assert code == 0
        assert "WARNING: ring buffer truncated the trace" in out
        assert "raise --capacity" in out

    def test_analyze_filter_and_spans(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(capsys, "trace", "retransmission",
                          "--total", "120000", "--jsonl", str(path))
        assert code == 0
        code, out = run_cli(capsys, "analyze", str(path), "--spans")
        assert code == 0
        assert "span trees:" in out and "attribution:" in out
        # Filtering away the transport layer leaves no spans to build.
        code, out = run_cli(capsys, "analyze", str(path), "--spans",
                            "--filter", "quack.")
        assert code == 0
        assert "span trees: 0 packets" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestHeadroom:
    def test_headroom_table(self, capsys):
        code, out = run_cli(capsys, "headroom", "--trials", "2",
                            "--packets", "600")
        assert code == 0
        assert "random" in out and "bursty" in out
        # Four threshold rows.
        assert sum(1 for line in out.splitlines()
                   if line.strip().startswith(("5 ", "10", "20", "40"))) == 4


class TestChaos:
    def test_single_plan_reports_and_passes(self, capsys):
        code, out = run_cli(capsys, "chaos", "blackout", "--seed", "1",
                            "--total", str(1460 * 300))
        assert code == 0
        assert "chaos plan: blackout" in out
        assert "invariants: all held" in out
        assert "final health:" in out

    def test_unknown_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "frobnicate"])


class TestAnalyze:
    def _trace_file(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(capsys, "trace", "retransmission",
                          "--total", "120000", "--jsonl", str(path))
        assert code == 0
        return path

    def test_analyze_reports_attribution(self, capsys, tmp_path):
        path = self._trace_file(capsys, tmp_path)
        code, out = run_cli(capsys, "analyze", str(path))
        assert code == 0
        assert "loss-recovery attribution" in out
        assert "quACK decode health" in out
        assert "connection flow0" in out

    def test_analyze_markdown(self, capsys, tmp_path):
        path = self._trace_file(capsys, tmp_path)
        code, out = run_cli(capsys, "analyze", str(path), "--markdown")
        assert code == 0
        assert "## Loss-recovery attribution" in out

    def test_analyze_tolerates_garbage_lines(self, capsys, tmp_path):
        path = self._trace_file(capsys, tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n{broken\n")
        code, out = run_cli(capsys, "analyze", str(path))
        assert code == 0
        assert "2 malformed lines skipped" in out

    def test_analyze_missing_file(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "analyze", str(tmp_path / "nope.jsonl"))
        assert code == 2

    def test_analyze_unknown_flow(self, capsys, tmp_path):
        path = self._trace_file(capsys, tmp_path)
        code, _ = run_cli(capsys, "analyze", str(path), "--flow", "flow9")
        assert code == 2


class TestBench:
    def test_record_then_compare_clean(self, capsys, tmp_path):
        base = tmp_path / "base"
        code, out = run_cli(capsys, "bench", "record", "--quick",
                            "--areas", "protocols", "--dir", str(base))
        assert code == 0
        assert "BENCH_protocols.json" in out
        code, out = run_cli(capsys, "bench", "compare",
                            "--current", str(base),
                            "--baseline", str(base))
        assert code == 0
        assert "OK: no metric moved" in out

    def test_compare_flags_injected_regression(self, capsys, tmp_path):
        import json as _json

        base, cur = tmp_path / "base", tmp_path / "cur"
        code, _ = run_cli(capsys, "bench", "record", "--quick",
                          "--areas", "protocols", "--dir", str(base))
        assert code == 0
        cur.mkdir()
        path = base / "BENCH_protocols.json"
        raw = _json.loads(path.read_text())
        raw["metrics"]["retransmission_completion_s"]["mean"] *= 3
        (cur / "BENCH_protocols.json").write_text(_json.dumps(raw))
        code, out = run_cli(capsys, "bench", "compare",
                            "--current", str(cur), "--baseline", str(base))
        assert code == 1
        assert "REGRESSED" in out and "FAIL" in out

    def test_record_unknown_area(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "bench", "record", "--areas", "nope",
                          "--dir", str(tmp_path))
        assert code == 2

    def test_compare_empty_dirs(self, capsys, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        code, _ = run_cli(capsys, "bench", "compare",
                          "--current", str(tmp_path / "a"),
                          "--baseline", str(tmp_path / "b"))
        assert code == 2


class TestProfileCommand:
    def test_profile_prints_call_paths_and_flows(self, capsys):
        code, out = run_cli(capsys, "profile", "retransmission",
                            "--total", "60000", "--top", "8")
        assert code == 0
        assert "profile: retransmission" in out
        assert "quack.decode;quack.newton" in out
        assert "flow0" in out  # per-flow middlebox accounting table

    def test_profile_writes_flame_and_json(self, capsys, tmp_path):
        flame = tmp_path / "out.folded"
        snapshot = tmp_path / "out.json"
        code, _ = run_cli(capsys, "profile", "retransmission",
                          "--total", "60000", "--flame", str(flame),
                          "--json", str(snapshot))
        assert code == 0
        folded = flame.read_text().splitlines()
        assert folded == sorted(folded)
        assert any(line.startswith("quack.decode;") for line in folded)
        import json as _json

        doc = _json.loads(snapshot.read_text())
        assert doc["kind"] == "profile"
        assert doc["scenario"] == "retransmission"

    def test_profile_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "frobnicate"])


class TestDiffCommand:
    def _write_bench(self, tmp_path, name, mean):
        import json as _json

        path = tmp_path / name
        path.write_text(_json.dumps({
            "schema": 1, "area": "quack",
            "metrics": {"decode_us": {"mean": mean}}}))
        return str(path)

    def test_diff_ok_exits_zero(self, capsys, tmp_path):
        a = self._write_bench(tmp_path, "a.json", 100.0)
        b = self._write_bench(tmp_path, "b.json", 110.0)
        code, out = run_cli(capsys, "diff", a, b)
        assert code == 0
        assert "OK: no series moved" in out

    def test_diff_moved_exits_one(self, capsys, tmp_path):
        a = self._write_bench(tmp_path, "a.json", 100.0)
        b = self._write_bench(tmp_path, "b.json", 500.0)
        code, out = run_cli(capsys, "diff", a, b)
        assert code == 1
        assert "MOVED" in out and "FAIL" in out

    def test_diff_bad_input_exits_two(self, capsys, tmp_path):
        a = self._write_bench(tmp_path, "a.json", 100.0)
        code, _ = run_cli(capsys, "diff", a, str(tmp_path / "nope.json"))
        assert code == 2

    def test_bench_compare_prints_span_hints_on_failure(self, capsys,
                                                        tmp_path):
        import json as _json

        base, cur = tmp_path / "base", tmp_path / "cur"
        code, _ = run_cli(capsys, "bench", "record", "--quick",
                          "--areas", "quack", "--dir", str(base))
        assert code == 0
        assert (base / "PROFILE_quack.json").exists()
        cur.mkdir()
        bench = _json.loads((base / "BENCH_quack.json").read_text())
        bench["metrics"]["quack_bytes"]["mean"] *= 3
        (cur / "BENCH_quack.json").write_text(_json.dumps(bench))
        profile = _json.loads((base / "PROFILE_quack.json").read_text())
        for span in profile["spans"]:
            span["self_s"] *= 100.0
        (cur / "PROFILE_quack.json").write_text(_json.dumps(profile))
        code, out = run_cli(capsys, "bench", "compare",
                            "--current", str(cur), "--baseline", str(base))
        assert code == 1
        assert "top span movements for area quack" in out


class TestFlightEvents:
    def test_chaos_flight_events_sets_ring_capacity(self, capsys, tmp_path):
        from repro import obs

        code, _ = run_cli(capsys, "chaos", "blackout", "--seed", "1",
                          "--total", str(1460 * 200),
                          "--flight-dir", str(tmp_path),
                          "--flight-events", "64")
        assert code == 0
        # configure() stored the requested ring capacity; the command
        # disarmed the recorder again on exit.
        assert obs.FLIGHT.last_n == 64
        assert not obs.FLIGHT.armed

    def test_vectors_check_accepts_flight_events(self, capsys, tmp_path):
        from repro import obs

        code, _ = run_cli(capsys, "vectors", "check",
                          "--flight-dir", str(tmp_path),
                          "--flight-events", "128")
        assert code == 0
        assert obs.FLIGHT.last_n == 128
        assert not obs.FLIGHT.armed
