"""Setuptools shim so `pip install -e .` works without the `wheel` package.

The environment has no network access and no `wheel` distribution, which
breaks PEP 660 editable installs on setuptools 65; the legacy
`setup.py develop` path used by `pip install -e . --no-build-isolation
--config-settings editable_mode=compat` (or plain `python setup.py develop`)
needs only this file.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
