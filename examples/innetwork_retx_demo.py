#!/usr/bin/env python3
"""In-network retransmission demo (paper, Section 2.3 / Fig. 4).

Two proxies bracket a short lossy hop in the middle of a long path.  The
receiver-side proxy quACKs arrivals; the sender-side proxy buffers what
it forwards and locally retransmits what the quACKs report missing --
repairs cost the 4 ms proxy-proxy RTT instead of the ~90 ms end-to-end
RTT.  The cadence adapts to the observed loss ratio (Section 4.3).

The host ablation matters: an unchanged QUIC server still detects the
losses itself (packet threshold 3) and double-repairs; a repair-tolerant
server (threshold 64) lets the local repair win outright.

Run::

    python examples/innetwork_retx_demo.py
"""

from repro.sidecar.retransmission import run_retransmission


def main() -> None:
    config = dict(total_bytes=1_500_000, loss_rate=0.05, seed=1)
    print("transfer: 1.5 MB, server --100Mbps/40ms-- p1 "
          "--50Mbps/2ms/5% loss-- p2 --100Mbps/2ms-- client\n")

    rows = [
        ("end-to-end repair only",
         run_retransmission(innet_retx=False, **config)),
        ("in-network retx, stock host",
         run_retransmission(innet_retx=True, **config)),
        ("in-network retx, tolerant host",
         run_retransmission(innet_retx=True, reorder_threshold=64, **config)),
    ]

    header = (f"{'configuration':32s} {'time (s)':>9s} {'srv retx':>9s} "
              f"{'proxy retx':>11s} {'cwnd cuts':>10s}")
    print(header)
    print("-" * len(header))
    for name, r in rows:
        print(f"{name:32s} {r.completion_time:>9.2f} "
              f"{r.server_retransmissions:>9d} "
              f"{r.proxy_retransmissions:>11d} "
              f"{r.server_congestion_events:>10d}")

    e2e, stock, tolerant = (r for _, r in rows)
    print(f"\nwith a repair-tolerant host, local repair is "
          f"{e2e.completion_time / tolerant.completion_time:.2f}x faster than "
          f"end-to-end repair and cuts congestion events from "
          f"{e2e.server_congestion_events} to "
          f"{tolerant.server_congestion_events}.")
    print("(The stock-host row shows why the paper pairs this mechanism "
          "with host cooperation: an unchanged server races the proxy and "
          "re-repairs anyway.)")


if __name__ == "__main__":
    main()
