#!/usr/bin/env python3
"""Congestion-control division demo (paper, Section 2.1 / Fig. 1b).

A server pushes a file to a client across a proxy.  The server-proxy
segment is wide and clean; the proxy-client segment is a lossy access
link.  Without assistance, the end-to-end congestion controller treats
every access-link loss as congestion and crawls.  With the sidecar:

* the client's sidecar quACKs once per segment-RTT to the proxy;
* the proxy takes custody of data packets and paces its own segment;
* the proxy's sidecar quACKs forwarded packets to the server, whose
  congestion window moves on those instead of end-to-end ACKs
  (e2e ACKs still govern retransmission).

Run::

    python examples/cc_division_demo.py
"""

from repro.sidecar.cc_division import run_cc_division


def main() -> None:
    config = dict(
        total_bytes=1_500_000,
        server_proxy_mbps=200.0, server_proxy_delay=0.025,
        proxy_client_mbps=50.0, proxy_client_delay=0.005,
        loss_rate=0.02, seed=1,
    )
    print("transfer: 1.5 MB, server --200Mbps/25ms-- proxy "
          "--50Mbps/5ms/2% loss-- client\n")

    baseline = run_cc_division(sidecar=False, **config)
    divided = run_cc_division(sidecar=True, **config)

    print(f"{'':28s} {'end-to-end':>12s} {'cc division':>12s}")
    print(f"{'completion time (s)':28s} "
          f"{baseline.completion_time:>12.2f} {divided.completion_time:>12.2f}")
    print(f"{'goodput (Mbps)':28s} "
          f"{baseline.goodput_bps / 1e6:>12.2f} "
          f"{divided.goodput_bps / 1e6:>12.2f}")
    print(f"{'server retransmissions':28s} "
          f"{baseline.server_retransmissions:>12d} "
          f"{divided.server_retransmissions:>12d}")
    print(f"{'client quACKs sent':28s} {0:>12d} {divided.client_quacks:>12d}")

    proxy = divided.proxy_stats
    print(f"\nproxy: custody of {proxy.taken_custody} packets, forwarded "
          f"{proxy.forwarded}, max buffer {proxy.max_buffer_depth}, "
          f"decode failures {proxy.decode_failures}")
    speedup = baseline.completion_time / divided.completion_time
    print(f"\nspeedup from dividing congestion control: {speedup:.2f}x")


if __name__ == "__main__":
    main()
