#!/usr/bin/env python3
"""Multipath + per-path sidecars (the paper's Section 5 question).

"How would a proxy interact with multipath transport protocols?"
Each subflow of a multipath transfer is an ordinary paranoid connection
with its own flow id and identifier key, so the answer falls out of the
design: every on-path proxy runs an ordinary quACK session against its
own subflow, no coordination needed.

The demo stripes a 2 MB transfer over a fast clean path and a slower
lossy path, first bare, then with a quACK sidecar assisting each path.

Run::

    python examples/multipath_demo.py
"""

import random

from repro.netsim import (
    BernoulliLoss,
    HopSpec,
    Host,
    Router,
    Simulator,
    build_parallel_paths,
)
from repro.sidecar.agents import ProxyEmitterTap, ServerSidecar
from repro.sidecar.frequency import PacketCountFrequency
from repro.transport.multipath import MultipathTransfer, PathSpec

TOTAL = 2_000_000


def run(with_sidecars: bool):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    p0, p1 = Router(sim, "p0"), Router(sim, "p1")
    build_parallel_paths(sim, server, client, [p0, p1], [
        (HopSpec(bandwidth_bps=20e6, delay_s=0.01),
         HopSpec(bandwidth_bps=20e6, delay_s=0.01)),
        (HopSpec(bandwidth_bps=10e6, delay_s=0.03,
                 loss_up=BernoulliLoss(0.02, random.Random(4))),
         HopSpec(bandwidth_bps=10e6, delay_s=0.03)),
    ])
    transfer = MultipathTransfer(sim, server, client, TOTAL,
                                 [PathSpec("p0", "p0"),
                                  PathSpec("p1", "p1")])
    sidecars = []
    if with_sidecars:
        for proxy, subflow in zip((p0, p1), transfer.subflows):
            ProxyEmitterTap(sim, proxy, server="server", client="client",
                            flow_id=subflow.flow_id,
                            policy=PacketCountFrequency(4), threshold=16)
            sidecars.append(ServerSidecar(sim, subflow.sender, threshold=16,
                                          grace=2, apply_losses=False))
    transfer.start()
    sim.run(until=60)
    return transfer, sidecars


def main() -> None:
    print("2 MB striped over: p0 = 20 Mbps/10 ms clean, "
          "p1 = 10 Mbps/30 ms with 2% loss\n")
    for label, with_sidecars in (("bare multipath", False),
                                 ("with per-path sidecars", True)):
        transfer, sidecars = run(with_sidecars)
        split = transfer.bytes_by_subflow()
        print(f"{label}:")
        print(f"  completed in {transfer.completed_at:.2f} s "
              f"({transfer.goodput_bps / 1e6:.1f} Mbps aggregate)")
        print(f"  stream split: p0 carried {split['mp-0'] / TOTAL:.0%}, "
              f"p1 carried {split['mp-1'] / TOTAL:.0%}")
        for index, sidecar in enumerate(sidecars):
            print(f"  sidecar[{index}]: {sidecar.stats.quacks_received} "
                  f"quACKs, {sidecar.stats.receipts_applied} receipts, "
                  f"{sidecar.stats.decode_failures} failures")
        print()


if __name__ == "__main__":
    main()
