#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation.

Prints Table 2 (strawmen vs power sums), Table 3 (collision
probabilities), the Figure 5 construction-time curves, the Figure 6
decoding-time curves, and the three end-to-end protocol scenarios the
paper describes in Section 2 (which it does not measure; our simulator
numbers reproduce the *claims*).  Expect a few minutes of runtime.

Run::

    python examples/reproduce_paper.py [--quick]
"""

import argparse

from repro.bench.tables import (
    fig5_series,
    fig6_series,
    format_series,
    format_table2,
    table2_report,
    table3_report,
)
from repro.sidecar.ack_reduction import run_ack_reduction
from repro.sidecar.cc_division import run_cc_division
from repro.sidecar.retransmission import run_retransmission


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer trials / smaller transfers")
    args = parser.parse_args()
    trials = 10 if args.quick else 100
    total = 300_000 if args.quick else 1_000_000

    print("=" * 76)
    print("Table 2: strawmen vs the power-sum quACK "
          "(n=1000, t=20, b=32, c=16)")
    print("=" * 76)
    print(format_table2(table2_report(trials=trials)))

    print()
    print("=" * 76)
    print("Table 3: collision probability by identifier width (n=1000)")
    print("=" * 76)
    for bits, row in table3_report().items():
        print(f"  {bits:>2d} bits: ours {row['ours']:.2g}   "
              f"paper {row['paper']:.2g}")

    print()
    print("=" * 76)
    print("Figure 5: construction time vs threshold (us)")
    print("=" * 76)
    print(format_series(
        fig5_series(trials=max(3, trials // 10)), x_label="threshold"))

    print()
    print("=" * 76)
    print("Figure 6: decoding time vs missing packets (us)")
    print("=" * 76)
    print(format_series(
        fig6_series(trials=max(5, trials // 5)), x_label="missing"))

    print()
    print("=" * 76)
    print("Section 2 protocols (simulated; the paper proposes, we measure)")
    print("=" * 76)
    base = run_cc_division(total_bytes=total, sidecar=False)
    side = run_cc_division(total_bytes=total, sidecar=True)
    print(f"E7 cc division:      {base.completion_time:.2f}s e2e -> "
          f"{side.completion_time:.2f}s divided "
          f"({base.completion_time / side.completion_time:.2f}x)")
    dense = run_ack_reduction(total_bytes=total, ack_every=2, sidecar=False)
    assisted = run_ack_reduction(total_bytes=total, ack_every=32,
                                 sidecar=True)
    print(f"E8 ack reduction:    {dense.client_acks_sent} client ACKs -> "
          f"{assisted.client_acks_sent} "
          f"({dense.completion_time:.2f}s -> "
          f"{assisted.completion_time:.2f}s)")
    e2e = run_retransmission(total_bytes=total, innet_retx=False)
    local = run_retransmission(total_bytes=total, innet_retx=True,
                               reorder_threshold=64)
    print(f"E9 in-network retx:  {e2e.completion_time:.2f}s e2e -> "
          f"{local.completion_time:.2f}s local "
          f"({e2e.completion_time / local.completion_time:.2f}x, "
          f"{local.proxy_retransmissions} proxy repairs)")


if __name__ == "__main__":
    main()
