#!/usr/bin/env python3
"""Choosing quACK parameters (paper, Sections 4.2-4.3).

A receiver configures three knobs: the threshold t (missing packets per
quACK), the identifier width b, and the communication frequency.  This
example walks the trade-offs the paper walks:

* t -> quACK size and construction cost grow linearly;
* b -> collision (indeterminacy) probability falls exponentially;
* frequency -> per-protocol sizing envelopes (Section 4.3).

Run::

    python examples/parameter_tuning.py
"""

from repro.bench.frequency import (
    ack_reduction_sizing,
    cc_division_sizing,
    retransmission_cadence,
)
from repro.bench.timing import measure
from repro.bench.workloads import make_workload
from repro.quack.collision import collision_probability
from repro.quack.power_sum import PowerSumQuack


def threshold_tradeoff() -> None:
    print("== threshold t: size and construction cost (n=1000, b=32) ==")
    workload = make_workload(n=1000, num_missing=0, bits=32, seed=0)
    identifiers = workload.sent.tolist()
    print(f"{'t':>4s} {'size (bytes)':>13s} {'construction (us)':>18s}")
    for threshold in (5, 10, 20, 40, 80):
        quack = PowerSumQuack(threshold=threshold, bits=32)

        def build() -> None:
            q = PowerSumQuack(threshold=threshold, bits=32)
            for identifier in identifiers:
                q.insert(identifier)

        timing = measure(build, trials=5, warmup=1)
        print(f"{threshold:>4d} {quack.wire_size_bits() // 8:>13d} "
              f"{timing.mean_us:>18,.0f}")
    print()


def bits_tradeoff() -> None:
    print("== identifier bits b: collision probability (Table 3) ==")
    print(f"{'b':>4s} {'P(collision), n=1000':>22s} "
          f"{'expected collisions':>20s}")
    for bits in (8, 16, 24, 32, 48):
        p = collision_probability(1000, bits)
        print(f"{bits:>4d} {p:>22.3g} {1000 * p:>20.3g}")
    print()


def frequency_selection() -> None:
    print("== communication frequency per protocol (Section 4.3) ==")
    cc = cc_division_sizing()
    print(f"cc division (once per RTT @ 200 Mbps / 60 ms / 2% loss):\n"
          f"  n={cc.packets_per_rtt} packets/RTT, t={cc.threshold}, "
          f"quACK={cc.quack_bytes} B "
          f"({cc.quack_overhead_bps / 1e3:.1f} kbps overhead; "
          f"strawman-1 echo would cost "
          f"{cc.strawman1_overhead_bps / 1e3:.0f} kbps)")
    ack = ack_reduction_sizing()
    print(f"ack reduction (every n={ack.every_n} packets, count omitted):\n"
          f"  quACK={ack.quack_bytes} B vs strawman-1 {ack.strawman1_bytes} B "
          f"-> {ack.bandwidth_saving_factor:.2f}x saving (needs t < n)")
    print("in-network retransmission (target 20 missing per quACK):")
    for loss in (0.20, 0.05, 0.01, 0.0):
        print(f"  loss {loss:>5.0%} -> quACK every "
              f"{retransmission_cadence(loss):>3d} packets")


def main() -> None:
    threshold_tradeoff()
    bits_tradeoff()
    frequency_selection()


if __name__ == "__main__":
    main()
