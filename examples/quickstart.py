#!/usr/bin/env python3
"""Quickstart: the quACK in five minutes.

The quACK interface (paper, Fig. 2):

    Construction:  R -> quACK
    Decoding:      S + quACK -> S \\ R

A receiver folds the identifiers of the packets it received into a tiny
fixed-size summary; a sender holding the list of sent identifiers decodes
exactly which packets are missing.  Run::

    python examples/quickstart.py
"""

import random

from repro import DecodeStatus, PowerSumQuack, decode_frame, encode_frame
from repro.ids import IdentifierFactory
from repro.quack import EchoQuack


def main() -> None:
    rng = random.Random(2024)

    # --- a connection's packets ------------------------------------------------
    # Identifiers model "32 bits from a randomly-encrypted QUIC header":
    # everyone who sees a packet derives the same pseudorandom value.
    factory = IdentifierFactory(key=b"demo-connection", bits=32)
    sent = [factory.identifier(pn) for pn in range(1000)]

    # The network dropped 12 random packets.
    lost_positions = sorted(rng.sample(range(1000), 12))
    received = [identifier for pn, identifier in enumerate(sent)
                if pn not in lost_positions]
    print(f"sent {len(sent)} packets, {len(lost_positions)} lost "
          f"at positions {lost_positions}")

    # --- receiver side: construct -----------------------------------------------
    # t=20 tolerates up to 20 missing packets; b=32-bit identifiers.
    quack = PowerSumQuack(threshold=20, bits=32)
    for identifier in received:
        quack.insert(identifier)  # ~one multiply-add per power sum

    frame = encode_frame(quack)
    print(f"quACK wire size: {len(frame)} bytes "
          f"(payload {quack.wire_size_bits() // 8} bytes; an echo of all "
          f"received ids would be {EchoQuack(32).bits * len(received) // 8})")

    # --- sender side: decode ---------------------------------------------------
    received_quack = decode_frame(frame)
    result = received_quack.decode(sent)
    assert result.status is DecodeStatus.OK
    missing_positions = sorted(sent.index(identifier)
                               for identifier in result.missing)
    print(f"decoded missing positions: {missing_positions}")
    assert missing_positions == lost_positions
    print("decode matches ground truth")

    # --- failure modes are explicit -----------------------------------------------
    tiny = PowerSumQuack(threshold=4)
    for identifier in received[:-30]:
        tiny.insert(identifier)
    overflowed = tiny.decode(sent)
    print(f"with t=4 and 42 missing: status={overflowed.status.value} "
          f"(the session must reset, paper Section 3.3)")


if __name__ == "__main__":
    main()
