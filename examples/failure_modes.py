#!/usr/bin/env python3
"""A tour of the quACK's failure modes and how a session handles them.

The quACK is not magic: its guarantees are bounded by the threshold t,
the identifier width b, and the consistency of the cumulative state.
This example triggers each documented failure on purpose:

1. threshold exceeded (Section 3.2: "if t < m, decoding fails");
2. identifier collisions making packet fates indeterminate (Section 3.2);
3. a desynchronized session (the Section 3.3 reordering hazard) and the
   reset that heals it (Section 3.3: "must reset the connection");
4. infrastructure failures under the chaos harness -- a middlebox
   crash/restart and a sidecar-channel blackout -- showing the health
   state machine walking the degradation ladder and back.

Run::

    python examples/failure_modes.py
"""

import random

from repro.quack import DecodeStatus, PowerSumQuack
from repro.sidecar.consumer import QuackConsumer

P32 = 4_294_967_291


def threshold_exceeded() -> None:
    print("== 1. threshold exceeded ==")
    rng = random.Random(1)
    sent = [rng.getrandbits(32) for _ in range(100)]
    quack = PowerSumQuack(threshold=5)
    quack.insert_many(sent[9:])  # 9 missing > t = 5
    result = quack.decode(sent)
    print(f"9 missing against t=5 -> status: {result.status.value}")
    print("the paper's remedy: reset the session and pick a larger t "
          "(see parameter_tuning.py)\n")


def collisions() -> None:
    print("== 2. identifier collisions (indeterminacy) ==")
    # Two distinct 33-bit-ish values that collide modulo the 32-bit prime.
    a, b = 4, P32 + 4
    sent = [a, b, 777]
    quack = PowerSumQuack(threshold=4)
    quack.insert_many([a, 777])  # b is missing -- but who can tell?
    result = quack.decode(sent)
    print(f"log holds {a} and {b}, congruent mod p; one is missing")
    print(f"determinate missing: {list(result.missing) or 'none'}")
    for group, count in result.indeterminate:
        print(f"indeterminate: {count} of candidates {list(group)}")
    from repro.quack import collision_probability
    print(f"(probability of this at n=1000, b=32: "
          f"{collision_probability(1000, 32):.2g} -- Table 3)\n")


def desync_and_reset() -> None:
    print("== 3. desynchronized session and reset ==")
    consumer = QuackConsumer(threshold=4, grace=1,
                             trailing_in_transit=False)
    receiver = PowerSumQuack(4)
    # The consumer wrongly declares a delayed packet lost...
    consumer.record_send(111, "pkt-111", now=0.0)
    feedback = consumer.on_quack(receiver.copy(), now=1.0)
    print(f"declared lost prematurely: {feedback.lost}")
    # ...and then it arrives after all:
    receiver.insert(111)
    consumer.record_send(222, "pkt-222", now=2.0)
    receiver.insert(222)
    poisoned = consumer.on_quack(receiver.copy(), now=3.0)
    print(f"next decode: {poisoned.status.value} "
          f"(the cumulative states disagree forever)")
    # The Section 3.3 remedy: both sides reset and begin a new epoch.
    consumer.reset()
    receiver = PowerSumQuack(4)  # the emitter's fresh accumulator
    consumer.record_send(333, "pkt-333", now=4.0)
    receiver.insert(333)
    healed = consumer.on_quack(receiver, now=5.0)
    print(f"after reset: status={healed.status.value}, "
          f"received={healed.received}")
    print("(the full drain/epoch/ResetMessage handshake runs in "
          "tests/sidecar/test_reset_protocol.py)")


def chaos_failures() -> None:
    print("\n== 4. infrastructure failures (chaos harness) ==")
    from repro.chaos import format_result, run_plan

    print("-- middlebox crash/restart: the accumulator is wiped twice "
          "mid-flow;")
    print("   the server detects the count regression and heals with "
          "implicit resets")
    print(format_result(run_plan("crash-restart", seed=1)))

    print("\n-- sidecar-channel blackout: no quACKs for 0.6 s; the sender "
          "degrades")
    print("   to pure end-to-end delivery, then recovers after probation")
    print(format_result(run_plan("blackout", seed=1)))


def main() -> None:
    threshold_exceeded()
    collisions()
    desync_and_reset()
    chaos_failures()


if __name__ == "__main__":
    main()
