#!/usr/bin/env python3
"""Watch congestion windows react to an unruly access link.

Runs the same 1.5 MB transfer over a 20 Mbps / 40 ms path with 3% random
loss under three controllers -- NewReno, CUBIC, and the model-based
BbrLite -- sampling cwnd every 50 ms and rendering the timelines as text
charts.  This is the per-segment behaviour the congestion-control
division proxy gets to choose between (paper, Section 2.1).

Run::

    python examples/cwnd_timeline.py
"""

import random

from repro.netsim import BernoulliLoss, Host, HopSpec, Simulator, build_path
from repro.transport import BbrLite, Cubic, NewReno
from repro.transport.connection import ReceiverConnection, SenderConnection
from repro.transport.instrument import ConnectionProbe, ascii_chart

TOTAL = 1_500_000
LOSS = 0.03


def run(controller_factory, pacing):
    sim = Simulator()
    server, client = Host(sim, "server"), Host(sim, "client")
    build_path(sim, [server, client],
               [HopSpec(bandwidth_bps=20e6, delay_s=0.02, queue_packets=64,
                        loss_up=BernoulliLoss(LOSS, random.Random(7)))])
    receiver = ReceiverConnection(sim, client, "server", TOTAL)
    sender = SenderConnection(sim, server, "client", TOTAL,
                              cc=controller_factory(), pacing=pacing)
    probe = ConnectionProbe(sim, sender, interval_s=0.05)
    sender.start()
    sim.run(until=60)
    return sender, receiver, probe


def main() -> None:
    print(f"transfer: 1.5 MB over 20 Mbps / 40 ms RTT / {LOSS:.0%} loss\n")
    for name, factory, pacing in (("NewReno", NewReno, False),
                                  ("CUBIC", Cubic, False),
                                  ("BbrLite (paced)", BbrLite, True)):
        sender, receiver, probe = run(factory, pacing)
        _, cwnd = probe.cwnd_packets_series()
        goodput = receiver.monitor.goodput_bps(receiver.completed_at)
        print(ascii_chart(
            cwnd, width=72, height=8,
            label=(f"{name}: cwnd (packets) -- finished in "
                   f"{receiver.completed_at:.2f}s at "
                   f"{goodput / 1e6:.1f} Mbps, "
                   f"{sender.stats.retransmitted_packets} retx")))
        print()


if __name__ == "__main__":
    main()
