#!/usr/bin/env python3
"""ACK reduction demo (paper, Section 2.2 / Fig. 3).

The client thins its ACKs (QUIC ACK-frequency extension) to save uplink
bandwidth and radio wakeups; a proxy sidecar quACKs every other data
packet back to the server so the sending window still moves at proxy-RTT
pace.  Three configurations show the trade-off:

* dense client ACKs (every 2 packets) -- the status quo;
* sparse client ACKs (every 32) alone -- naive thinning, slows the loop;
* sparse client ACKs + proxy quACKs -- the sidecar protocol.

Run::

    python examples/ack_reduction_demo.py
"""

from repro.sidecar.ack_reduction import run_ack_reduction


def main() -> None:
    config = dict(total_bytes=1_500_000, loss_rate=0.005, seed=1)
    print("transfer: 1.5 MB, server --100Mbps/30ms-- proxy "
          "--25Mbps/10ms/0.5% loss-- client\n")

    rows = [
        ("dense ACKs (every 2)",
         run_ack_reduction(ack_every=2, sidecar=False, **config)),
        ("sparse ACKs (every 32)",
         run_ack_reduction(ack_every=32, sidecar=False, **config)),
        ("sparse ACKs + sidecar",
         run_ack_reduction(ack_every=32, sidecar=True, **config)),
    ]

    header = (f"{'configuration':26s} {'time (s)':>9s} {'client ACKs':>12s} "
              f"{'ACK bytes':>10s} {'quACKs':>7s}")
    print(header)
    print("-" * len(header))
    for name, r in rows:
        print(f"{name:26s} {r.completion_time:>9.2f} "
              f"{r.client_acks_sent:>12d} {r.client_ack_bytes:>10d} "
              f"{r.proxy_quacks_sent:>7d}")

    dense, sparse, assisted = (r for _, r in rows)
    print(f"\nclient sends {dense.client_acks_sent / assisted.client_acks_sent:.1f}x "
          f"fewer ACKs with the sidecar, and the transfer finishes "
          f"{sparse.completion_time / assisted.completion_time:.2f}x faster than "
          f"naive thinning "
          f"({dense.completion_time / assisted.completion_time:.2f}x vs dense).")


if __name__ == "__main__":
    main()
