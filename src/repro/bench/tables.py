"""Regenerate the paper's tables and figures as data + formatted text.

Each ``*_report`` function reruns one paper artifact on this machine and
returns both our measured numbers and the paper's published ones, so the
output reads like the original table with a "measured" column.  The
pytest-benchmark files in ``benchmarks/`` wrap the same building blocks;
these functions are what the examples and EXPERIMENTS.md generation call.

Absolute times will not match the paper (C++ on a MacBook vs CPython);
the *shape* -- orderings, proportionality, crossovers -- is the
reproduction target.  Sizes and probabilities are analytic and match
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bench.timing import TimingResult, measure, measure_throughput
from repro.bench.workloads import (
    PAPER_B,
    PAPER_COUNT_BITS,
    PAPER_N,
    PAPER_T,
    QuackWorkload,
    make_workload,
)
from repro.quack.collision import collision_probability
from repro.quack.power_sum import PowerSumQuack
from repro.quack.strawman import EchoQuack, HashQuack

#: Table 2 of the paper (n=1000, t=20, b=32, c=16; MacBook Pro, C++).
PAPER_TABLE2 = {
    "strawman1": {"construction_us": 222.0, "decode_us": 126.0,
                  "size_bits": 32_000},
    "strawman2": {"construction_us": 0.387, "decode_days": 7e6,
                  "size_bits": 272},
    "power_sum": {"construction_us": 106.0, "decode_us": 61.0,
                  "size_bits": 656},
}

#: Table 3 of the paper (collision probability, n=1000).
PAPER_TABLE3 = {8: 0.98, 16: 0.015, 24: 6.0e-5, 32: 2.3e-7}

#: Headline metrics from Section 1 (n=1000, t=20, b=32).
PAPER_INTRO = {
    "quack_bytes": 82,
    "construction_ns_per_packet": 100.0,
    "decode_us_upper": 100.0,
    "indeterminate_percent": 0.000023,
}


@dataclass(frozen=True)
class SchemeRow:
    """One Table 2 row: a scheme's construction/decode/size figures."""

    scheme: str
    construction: TimingResult
    decode: TimingResult | None
    decode_extrapolated_days: float | None
    size_bits: int


def table2_report(n: int = PAPER_N, threshold: int = PAPER_T,
                  bits: int = PAPER_B, count_bits: int = PAPER_COUNT_BITS,
                  trials: int = 100, seed: int = 0,
                  strawman2_probe_n: int = 18,
                  strawman2_probe_m: int = 3) -> dict[str, SchemeRow]:
    """Rerun Table 2: the two strawmen vs the power-sum quACK.

    Strawman 2's decode is *extrapolated* from a measured small-instance
    digest rate (the paper's ~7e+06 days entry is likewise an estimate --
    C(1000, 20) subsets cannot be enumerated).  The probe instance is
    C(strawman2_probe_n, strawman2_probe_m) subsets, small enough to run.
    """
    workload = make_workload(n, threshold, bits, seed)
    rows: dict[str, SchemeRow] = {}

    # -- Strawman 1: echo everything ------------------------------------
    def build_echo() -> EchoQuack:
        quack = EchoQuack(bits)
        for identifier in workload.received.tolist():
            quack.insert(identifier)
        return quack

    echo = build_echo()
    log = workload.sent.tolist()
    rows["strawman1"] = SchemeRow(
        scheme="Strawman 1 (echo)",
        construction=measure(build_echo, trials=trials),
        decode=measure(lambda: echo.decode(log), trials=trials),
        decode_extrapolated_days=None,
        size_bits=echo.wire_size_bits(),
    )

    # -- Strawman 2: hash + subset search -----------------------------------
    def build_hash() -> HashQuack:
        quack = HashQuack(bits)
        for identifier in workload.received.tolist():
            quack.insert(identifier)
        return quack

    hash_quack = build_hash()
    probe = make_workload(strawman2_probe_n, strawman2_probe_m, bits, seed)
    probe_quack = HashQuack(bits, max_subsets=10_000_000)
    probe_quack.insert_many(probe.received.tolist())
    probe_log = probe.sent.tolist()
    digests_per_second = measure_throughput(
        lambda: probe_quack.decode(probe_log),
        items_per_call=HashQuack.subsets_to_search(probe.n, probe.num_missing),
        trials=5,
    )
    extrapolated_days = HashQuack.estimate_decode_seconds(
        n, threshold, digests_per_second) / 86_400
    rows["strawman2"] = SchemeRow(
        scheme="Strawman 2 (hash)",
        construction=measure(build_hash, trials=trials),
        decode=None,
        decode_extrapolated_days=extrapolated_days,
        size_bits=hash_quack.wire_size_bits(),
    )

    # -- Power sums ---------------------------------------------------------------
    def build_power_sum() -> PowerSumQuack:
        quack = PowerSumQuack(threshold, bits, count_bits)
        for identifier in workload.received.tolist():
            quack.insert(identifier)
        return quack

    power = PowerSumQuack(threshold, bits, count_bits)
    power.insert_many(workload.received)
    rows["power_sum"] = SchemeRow(
        scheme="Power Sums",
        construction=measure(build_power_sum, trials=trials),
        decode=measure(lambda: power.decode(log), trials=trials),
        decode_extrapolated_days=None,
        size_bits=power.wire_size_bits(),
    )
    return rows


def format_table2(rows: dict[str, SchemeRow]) -> str:
    """Render the Table 2 comparison, paper numbers alongside ours."""
    lines = [
        f"{'Scheme':22s} {'Construction':>16s} {'Decoding':>22s} {'Size (bits)':>12s}",
        "-" * 76,
    ]
    for key, row in rows.items():
        paper = PAPER_TABLE2[key]
        if row.decode is not None:
            decode = f"{row.decode.mean_us:,.0f} us"
        else:
            decode = f"~{row.decode_extrapolated_days:.1e} days"
        lines.append(
            f"{row.scheme:22s} {row.construction.mean_us:>12,.0f} us "
            f"{decode:>22s} {row.size_bits:>12,d}"
        )
        paper_decode = (f"{paper['decode_us']:,.0f} us" if "decode_us" in paper
                        else f"~{paper['decode_days']:.0e} days")
        lines.append(
            f"{'  (paper)':22s} {paper['construction_us']:>12,.1f} us "
            f"{paper_decode:>22s} {paper['size_bits']:>12,d}"
        )
    return "\n".join(lines)


def fig5_series(thresholds: Sequence[int] = tuple(range(10, 51, 10)),
                bits_options: Sequence[int] = (16, 24, 32),
                n: int = PAPER_N, trials: int = 30,
                seed: int = 0, stat: str = "mean") -> dict[int, dict[int, float]]:
    """Figure 5: construction time (us) vs threshold, per bit width.

    Returns ``{bits: {threshold: us}}``.  The paper's claim to check:
    "the construction time is directly proportional to t".  ``stat``
    selects mean (paper methodology) or median (noise-robust).
    """
    series: dict[int, dict[int, float]] = {}
    for bits in bits_options:
        workload = make_workload(n, 0, bits, seed)
        ids = workload.sent.tolist()
        per_bits: dict[int, float] = {}
        for threshold in thresholds:
            def build() -> None:
                quack = PowerSumQuack(threshold, bits)
                for identifier in ids:
                    quack.insert(identifier)
            timing = measure(build, trials=trials)
            per_bits[threshold] = (timing.median * 1e6 if stat == "median"
                                   else timing.mean_us)
        series[bits] = per_bits
    return series


def fig6_series(missing_counts: Sequence[int] = (0, 5, 10, 15, 20),
                bits_options: Sequence[int] = (16, 24, 32),
                n: int = PAPER_N, threshold: int = PAPER_T,
                trials: int = 50, seed: int = 0,
                method: str = "candidates",
                stat: str = "mean") -> dict[int, dict[int, float]]:
    """Figure 6: decoding time (us) vs number of missing packets.

    Returns ``{bits: {m: us}}``.  The paper's claims: decoding time is
    "directly proportional to m", and zero missing packets "takes
    virtually no time to decode".  ``stat`` selects ``"mean"`` (the
    paper's methodology) or ``"median"`` (robust to scheduler noise,
    used by the shape-checking benchmarks).
    """
    series: dict[int, dict[int, float]] = {}
    for bits in bits_options:
        per_bits: dict[int, float] = {}
        for m in missing_counts:
            workload = make_workload(n, m, bits, seed)
            receiver = PowerSumQuack(threshold, bits)
            receiver.insert_many(workload.received)
            sender = PowerSumQuack(threshold, bits)
            sender.insert_many(workload.sent)
            delta = sender - receiver
            log = workload.sent.tolist()
            from repro.quack.decoder import decode_delta  # local to avoid cycle
            timing = measure(
                lambda: decode_delta(delta, log, method=method),
                trials=trials)
            per_bits[m] = (timing.median * 1e6 if stat == "median"
                           else timing.mean_us)
        series[bits] = per_bits
    return series


def table3_report(n: int = PAPER_N,
                  bits_options: Iterable[int] = (8, 16, 24, 32)) \
        -> dict[int, dict[str, float]]:
    """Table 3: collision probability per identifier width, vs the paper."""
    return {
        bits: {
            "ours": collision_probability(n, bits),
            "paper": PAPER_TABLE3[bits],
        }
        for bits in bits_options
    }


def format_series(series: dict[int, dict[int, float]], x_label: str,
                  y_label: str = "us") -> str:
    """Render a {bits: {x: y}} family of curves as an aligned text table."""
    all_x = sorted({x for curve in series.values() for x in curve})
    header = f"{x_label:>12s} " + " ".join(f"{bits:>4d}-bit" for bits in series)
    lines = [header, "-" * len(header)]
    for x in all_x:
        cells = " ".join(
            f"{series[bits].get(x, float('nan')):>8.1f}" for bits in series
        )
        lines.append(f"{x:>12d} {cells}")
    lines.append(f"({y_label})")
    return "\n".join(lines)
