"""Section 4.3 analysis: selecting the communication frequency.

The paper sizes the quACK for each sidecar protocol with a back-of-the-
envelope model; this module reproduces those envelopes as code so the
bench can print the same numbers and the tests can pin them down.

* Congestion-control division: "Assuming a 60ms RTT on a 200 Mbps link
  and a maximum handled 2% loss rate, at 1500 bytes/packet (a typical
  MTU), this is ~1000 sent packets with 20 missing packets per RTT" --
  :func:`cc_division_sizing`.
* ACK reduction: quACK every n=32 packets, count field omitted ("we can
  omit c, which is always n"), "Setting t < n uses less bandwidth
  compared to Strawman 1" -- :func:`ack_reduction_sizing`.
* In-network retransmission: cadence from the loss ratio targeting a
  constant number of missing packets per quACK --
  :func:`retransmission_cadence`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The Section 4.3 scenario constants.
PAPER_RTT_S = 0.060
PAPER_LINK_BPS = 200e6
PAPER_LOSS = 0.02
PAPER_PACKET_BYTES = 1500


@dataclass(frozen=True)
class CcDivisionSizing:
    """Per-RTT quACK budget for congestion-control division."""

    packets_per_rtt: int
    expected_missing_per_rtt: int
    threshold: int
    quack_bytes: int
    quack_overhead_bps: float
    strawman1_bytes: int
    strawman1_overhead_bps: float


def cc_division_sizing(rtt_s: float = PAPER_RTT_S,
                       link_bps: float = PAPER_LINK_BPS,
                       loss_rate: float = PAPER_LOSS,
                       packet_bytes: int = PAPER_PACKET_BYTES,
                       bits: int = 32, count_bits: int = 16) \
        -> CcDivisionSizing:
    """The paper's once-per-RTT budget: n ~= 1000, t = 20 at 2% loss."""
    packets = int(link_bps * rtt_s / (8 * packet_bytes))
    missing = math.ceil(packets * loss_rate)
    threshold = missing
    quack_bits = threshold * bits + count_bits
    strawman1_bits = packets * bits
    return CcDivisionSizing(
        packets_per_rtt=packets,
        expected_missing_per_rtt=missing,
        threshold=threshold,
        quack_bytes=(quack_bits + 7) // 8,
        quack_overhead_bps=quack_bits / rtt_s,
        strawman1_bytes=(strawman1_bits + 7) // 8,
        strawman1_overhead_bps=strawman1_bits / rtt_s,
    )


@dataclass(frozen=True)
class AckReductionSizing:
    """Per-n-packets quACK budget for ACK reduction."""

    every_n: int
    threshold: int
    quack_bytes: int
    strawman1_bytes: int
    bandwidth_saving_factor: float


def ack_reduction_sizing(every_n: int = 32, threshold: int = 20,
                         bits: int = 32) -> AckReductionSizing:
    """Quack every n packets, count omitted (it is always n).

    The paper's bandwidth claim holds exactly when ``t < n``: the quACK
    costs ``t*b`` bits where Strawman 1 costs ``n*b``.
    """
    quack_bits = threshold * bits  # count omitted
    strawman1_bits = every_n * bits
    return AckReductionSizing(
        every_n=every_n,
        threshold=threshold,
        quack_bytes=(quack_bits + 7) // 8,
        strawman1_bytes=(strawman1_bits + 7) // 8,
        bandwidth_saving_factor=strawman1_bits / quack_bits,
    )


def retransmission_cadence(loss_ratio: float, target_missing: int = 20,
                           min_every: int = 2, max_every: int = 512) -> int:
    """Packets per quACK so ~``target_missing`` losses accrue per quACK.

    "The sender who configures this frequency could target a constant
    t = 20 missing packets per quACK.  If the link is relatively stable,
    the sender-side proxy could decrease the frequency" (Section 4.3).
    """
    if not 0.0 <= loss_ratio < 1.0:
        raise ValueError(f"loss ratio must be in [0, 1), got {loss_ratio}")
    if loss_ratio == 0.0:
        return max_every
    return max(min_every, min(max_every, int(target_missing / loss_ratio)))
