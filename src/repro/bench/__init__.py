"""Benchmark harness: workloads, timing, and paper-table regeneration."""

from repro.bench.frequency import (
    AckReductionSizing,
    CcDivisionSizing,
    ack_reduction_sizing,
    cc_division_sizing,
    retransmission_cadence,
)
from repro.bench.tables import (
    PAPER_INTRO,
    PAPER_TABLE2,
    PAPER_TABLE3,
    fig5_series,
    fig6_series,
    format_series,
    format_table2,
    table2_report,
    table3_report,
)
from repro.bench.store import (
    BenchSnapshot,
    Metric,
    compare_dirs,
    compare_snapshots,
    format_comparison,
    load_snapshot,
    record,
)
from repro.bench.timing import TimingResult, measure, measure_throughput
from repro.bench.traces import (
    PacketTrace,
    SessionOutcome,
    run_session,
    survival_probability,
    synthesize_trace,
)
from repro.bench.workloads import (
    PAPER_B,
    PAPER_N,
    PAPER_T,
    QuackWorkload,
    make_workload,
)

__all__ = [
    "Metric",
    "BenchSnapshot",
    "record",
    "load_snapshot",
    "compare_snapshots",
    "compare_dirs",
    "format_comparison",
    "measure",
    "measure_throughput",
    "TimingResult",
    "make_workload",
    "QuackWorkload",
    "PAPER_N",
    "PAPER_T",
    "PAPER_B",
    "table2_report",
    "format_table2",
    "fig5_series",
    "fig6_series",
    "format_series",
    "table3_report",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_INTRO",
    "cc_division_sizing",
    "ack_reduction_sizing",
    "retransmission_cadence",
    "CcDivisionSizing",
    "AckReductionSizing",
    "PacketTrace",
    "SessionOutcome",
    "synthesize_trace",
    "run_session",
    "survival_probability",
]
