"""Workload generation for the quACK benchmarks.

Every microbenchmark in the paper's Section 4 runs over the same shape of
input: ``n`` sent packets with uniform ``b``-bit identifiers, of which
``m <= t`` chosen uniformly at random are missing.  :func:`make_workload`
builds that, deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.ids import random_identifiers

#: The paper's running configuration (Sections 1 and 4.1).
PAPER_N = 1000
PAPER_T = 20
PAPER_B = 32
PAPER_COUNT_BITS = 16


@dataclass(frozen=True)
class QuackWorkload:
    """One (sent, received, missing) instance."""

    sent: np.ndarray
    received: np.ndarray
    missing: tuple[int, ...]
    bits: int

    @property
    def n(self) -> int:
        return int(self.sent.size)

    @property
    def num_missing(self) -> int:
        return len(self.missing)


def make_workload(n: int = PAPER_N, num_missing: int = PAPER_T,
                  bits: int = PAPER_B, seed: int = 0) -> QuackWorkload:
    """``n`` random identifiers with ``num_missing`` of them undelivered."""
    if not 0 <= num_missing <= n:
        raise ValueError(f"need 0 <= missing <= n, got {num_missing} of {n}")
    rng = random.Random(seed)
    sent = random_identifiers(n, bits, rng)
    missing_indices = sorted(rng.sample(range(n), num_missing))
    received = np.delete(sent, missing_indices)
    missing = tuple(sorted(int(sent[i]) for i in missing_indices))
    return QuackWorkload(sent=sent, received=received, missing=missing,
                         bits=bits)
