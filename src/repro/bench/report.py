"""Markdown experiment reports generated from live runs.

``python -m repro report`` (or :func:`full_report`) reruns the
reproduction's experiments on the current machine and emits a
self-contained markdown document in the same shape as EXPERIMENTS.md --
paper value next to measured value for every artifact.  Useful for
checking a new environment, and as the honest record of a run.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass
from typing import Callable

from repro.bench.frequency import ack_reduction_sizing, cc_division_sizing
from repro.bench.tables import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    table2_report,
    table3_report,
)
from repro.bench.traces import survival_probability


@dataclass(frozen=True)
class ReportOptions:
    """Effort knobs for report generation."""

    trials: int = 30
    protocol_bytes: int = 500_000
    headroom_trials: int = 8
    include_protocols: bool = True
    include_headroom: bool = True
    include_chaos: bool = True
    include_scale: bool = True
    include_observability: bool = True
    chaos_seed: int = 1
    scale_flows: int = 5_000


def environment_section() -> str:
    return "\n".join([
        "## Environment",
        "",
        f"* Python {sys.version.split()[0]} on {platform.system()} "
        f"{platform.machine()}",
        "* Paper artifact: 1408 lines of C++ on a 2019 MacBook Pro "
        "(2.4 GHz i9); expect 1-2 orders of magnitude slower absolute "
        "times here with matching shapes.",
        "",
    ])


def table2_section(trials: int) -> str:
    rows = table2_report(trials=trials)
    lines = [
        "## Table 2 -- strawmen vs power sums (n=1000, t=20, b=32)",
        "",
        "| scheme | construction (paper / ours) | decoding (paper / ours) "
        "| size bits (paper / ours) |",
        "|---|---|---|---|",
    ]
    for key, row in rows.items():
        paper = PAPER_TABLE2[key]
        ours_decode = (f"{row.decode.mean_us:,.0f} µs" if row.decode
                       else f"~{row.decode_extrapolated_days:.1e} days")
        paper_decode = (f"{paper['decode_us']:,.0f} µs"
                        if "decode_us" in paper
                        else f"~{paper['decode_days']:.0e} days")
        lines.append(
            f"| {row.scheme} "
            f"| {paper['construction_us']:,.1f} µs / "
            f"{row.construction.mean_us:,.0f} µs "
            f"| {paper_decode} / {ours_decode} "
            f"| {paper['size_bits']:,} / {row.size_bits:,} |"
        )
    lines.append("")
    return "\n".join(lines)


def table3_section() -> str:
    lines = [
        "## Table 3 -- collision probability (n=1000)",
        "",
        "| bits | paper | ours |",
        "|---|---|---|",
    ]
    for bits, row in table3_report().items():
        lines.append(f"| {bits} | {row['paper']:.2g} | {row['ours']:.3g} |")
    lines.append("")
    return "\n".join(lines)


def sizing_section() -> str:
    cc = cc_division_sizing()
    ack = ack_reduction_sizing()
    return "\n".join([
        "## Section 4.3 -- frequency envelopes",
        "",
        f"* CC division @ 200 Mbps / 60 ms / 2% loss: "
        f"{cc.packets_per_rtt} packets per RTT, t={cc.threshold}, "
        f"{cc.quack_bytes} B per quACK "
        f"({cc.quack_overhead_bps / 1e3:.1f} kbps overhead).",
        f"* ACK reduction @ every {ack.every_n} packets: "
        f"{ack.quack_bytes} B vs Strawman 1's {ack.strawman1_bytes} B "
        f"({ack.bandwidth_saving_factor:.2f}x saving).",
        "",
    ])


def protocols_section(total_bytes: int) -> str:
    from repro.sidecar.ack_reduction import run_ack_reduction
    from repro.sidecar.cc_division import run_cc_division
    from repro.sidecar.retransmission import run_retransmission

    lines = ["## Section 2 protocols (simulated end to end)", ""]
    base = run_cc_division(total_bytes=total_bytes, sidecar=False)
    side = run_cc_division(total_bytes=total_bytes, sidecar=True)
    lines.append(
        f"* **CC division (E7)**: {base.completion_time:.2f} s end-to-end "
        f"vs {side.completion_time:.2f} s divided "
        f"(**{base.completion_time / side.completion_time:.2f}x**), "
        f"{side.server_sidecar_failures} decode failures.")
    dense = run_ack_reduction(total_bytes=total_bytes, ack_every=2,
                              sidecar=False)
    assisted = run_ack_reduction(total_bytes=total_bytes, ack_every=32,
                                 sidecar=True)
    lines.append(
        f"* **ACK reduction (E8)**: {dense.client_acks_sent} client ACKs "
        f"-> {assisted.client_acks_sent} "
        f"(completion {dense.completion_time:.2f} s -> "
        f"{assisted.completion_time:.2f} s).")
    e2e = run_retransmission(total_bytes=total_bytes, innet_retx=False)
    local = run_retransmission(total_bytes=total_bytes, innet_retx=True,
                               reorder_threshold=64)
    lines.append(
        f"* **In-network retransmission (E9)**: {e2e.completion_time:.2f} s "
        f"end-to-end repair vs {local.completion_time:.2f} s local "
        f"(**{e2e.completion_time / local.completion_time:.2f}x**), "
        f"{local.proxy_retransmissions} proxy repairs.")
    lines.append("")
    return "\n".join(lines)


def headroom_section(trials: int) -> str:
    lines = [
        "## Threshold headroom under bursty loss (E11, extension)",
        "",
        "Survival probability of a 3000-packet session at 2% average "
        "loss, one quACK per 32 packets:",
        "",
        "| t | random loss | bursty loss |",
        "|---|---|---|",
    ]
    for threshold in (5, 10, 20, 40):
        p_random = survival_probability(threshold, 0.02, "random",
                                        trials=trials, n=3000)
        p_bursty = survival_probability(threshold, 0.02, "bursty",
                                        trials=trials, n=3000)
        lines.append(f"| {threshold} | {p_random:.2f} | {p_bursty:.2f} |")
    lines.append("")
    return "\n".join(lines)


def chaos_section(seed: int) -> str:
    from repro.chaos import PLANS, run_plan

    lines = [
        "## Robustness under fault injection (chaos harness)",
        "",
        "Each plan runs the canonical assisted transfer with one fault "
        "injector on the sidecar channel and checks the invariants: all "
        "bytes delivered end-to-end, epochs converged, corruption "
        "classified as wire errors.",
        "",
        "| plan | completed in | epochs | resets | wire errors | "
        "final health | invariants |",
        "|---|---|---|---|---|---|---|",
    ]
    for name in sorted(PLANS):
        result = run_plan(name, seed=seed)
        counters = result.server_counters
        lines.append(
            f"| {name} | {result.duration_s:.2f} s "
            f"| {result.emitter_epoch}/{result.server_epoch} "
            f"| {counters['resets_initiated']} "
            f"| {counters['wire_errors']} "
            f"| {result.health_final.value} "
            f"| {'held' if result.ok else 'VIOLATED'} |")
    lines.append("")
    return "\n".join(lines)


def scale_section(flows: int, seed: int = 1) -> str:
    from repro.sidecar.flowtable import run_scale

    results = [run_scale(flows=flows, tenants=8, packets_per_flow=4,
                         churn_rate=churn, duration_s=1.0, seed=seed,
                         account=True)
               for churn in (0.0, 0.5)]
    lines = [
        "## Multi-tenant flow table at scale",
        "",
        f"One shared flow table driving {flows:,} flows across 8 tenants "
        "under per-tenant memory budgets, with and without churn "
        "(fraction of the population replaced per second):",
        "",
        "| churn | admitted | closed | evicted | shed | resident bytes "
        "| bytes/flow | emit p50 | emit p99 |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        per_flow = (result["ledger_bank_bytes"]
                    / max(result["ledger_flows"], 1))
        lines.append(
            f"| {result['churn_rate']:.1f}/s "
            f"| {result['flows_admitted']:,} "
            f"| {result['flows_closed']:,} "
            f"| {result['flows_evicted']:,} "
            f"| {result['flows_shed']:,} "
            f"| {result['ledger_bank_bytes']:,} "
            f"| {per_flow:.1f} "
            f"| {result['emission_latency_p50_s'] * 1e3:.2f} ms "
            f"| {result['emission_latency_p99_s'] * 1e3:.2f} ms |")
    lines.append("")
    lines.append(
        "Emission latency is coalescing delay only -- time from a flow "
        "coming due to its quACK leaving in a shared batch frame -- so "
        "p99 is bounded by the batch interval (5 ms default).")
    lines.append("")
    return "\n".join(lines)


def observability_section(total_bytes: int, seed: int = 1) -> str:
    from repro.obs import format_component_tally
    from repro.obs.runner import run_traced

    result = run_traced("cc-division", seed=seed, total_bytes=total_bytes)
    lines = [
        "## Observability (unified trace, `python -m repro trace`)",
        "",
        f"One traced cc-division run ({total_bytes:,} bytes, seed {seed}) "
        f"captured {len(result.events)} events "
        f"({result.events_dropped} dropped by the ring buffer):",
        "",
        format_component_tally(result.components(), markdown=True),
        "",
    ]
    spans = result.metrics.get("obs_span_seconds", {}).get("series", [])
    if spans:
        lines.append("Hot-path latency spans (wall clock):")
        lines.append("")
        lines.append("| span | calls | mean | p99 |")
        lines.append("|---|---|---|---|")
        for entry in spans:
            span = entry["labels"].get("span", "?")
            snap = entry["value"]
            lines.append(
                f"| {span} | {snap['count']} | {snap['mean'] * 1e6:,.1f} µs "
                f"| {snap['p99'] * 1e6:,.1f} µs |")
        lines.append("")
    return "\n".join(lines)


def full_report(options: ReportOptions | None = None,
                progress: Callable[[str], None] | None = None) -> str:
    """Generate the complete markdown report."""
    options = options if options is not None else ReportOptions()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    sections = ["# Sidecar / quACK reproduction report", ""]
    sections.append(environment_section())
    note("running Table 2 microbenchmarks...")
    sections.append(table2_section(options.trials))
    sections.append(table3_section())
    sections.append(sizing_section())
    if options.include_protocols:
        note("running protocol scenarios (E7-E9)...")
        sections.append(protocols_section(options.protocol_bytes))
    if options.include_headroom:
        note("running threshold-headroom sweep (E11)...")
        sections.append(headroom_section(options.headroom_trials))
    if options.include_chaos:
        note("running chaos plans (fault injection)...")
        sections.append(chaos_section(options.chaos_seed))
    if options.include_scale:
        note("driving the flow table at scale...")
        sections.append(scale_section(options.scale_flows))
    if options.include_observability:
        note("running a traced scenario (observability)...")
        sections.append(observability_section(options.protocol_bytes))
    return "\n".join(sections)
