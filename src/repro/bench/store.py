"""Continuous benchmark store: snapshot, persist, and gate on regressions.

The reproduction's performance claims (Table 2 timings, the
no-overhead-when-disabled observability guarantee, the E7-E9 protocol
outcomes) were, before this module, numbers that scrolled past in a
report.  The store makes them durable and comparable:

* :func:`record` runs the collectors for one or more *areas* and writes
  one ``BENCH_<area>.json`` per area -- schema-versioned, stamped with
  the git revision and a machine fingerprint, every metric carried as
  mean/stdev/n with its unit and its improvement direction;
* :func:`compare_snapshots` diffs a current snapshot against a baseline
  and renders a threshold-based verdict: a *lower-is-better* metric
  regresses when ``current > baseline * threshold``, a
  *higher-is-better* metric when ``current * threshold < baseline``,
  and ``info`` metrics never gate.

Two kinds of metric live side by side and the direction/threshold
machinery treats them uniformly:

* **wall-clock timings** (quACK construction/decode, obs hot-path
  costs) vary across machines, so CI compares them with a deliberately
  generous threshold (2x) that only trips on order-of-magnitude rot;
* **virtual-time protocol outcomes** (completion time, goodput, ACK
  counts from the deterministic simulator) are machine-independent --
  an identical tree re-run reproduces them bit-for-bit, so *any*
  movement is a real behavior change.

CLI::

    python -m repro bench record --quick --dir /tmp/bench
    python -m repro bench compare --current /tmp/bench \
        --baseline benchmarks/baselines
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import BenchStoreError

#: Version of the on-disk snapshot format.  Readers accept any file with
#: ``schema <= SCHEMA_VERSION`` (newer writers must stay additive);
#: a file from a *newer* schema is refused rather than misread.
SCHEMA_VERSION = 1

#: Valid improvement directions for a metric.
DIRECTIONS = ("lower", "higher", "info")

#: Default regression threshold (ratio).  Generous on purpose: CI runs
#: on shared machines, and the store's job is catching order-of-magnitude
#: rot, not scheduler noise.
DEFAULT_THRESHOLD = 2.0


@dataclass(frozen=True)
class Metric:
    """One recorded measurement with its gating semantics."""

    name: str
    mean: float
    stdev: float = 0.0
    n: int = 1
    unit: str = ""
    #: ``lower`` / ``higher`` (is better) gate comparisons; ``info``
    #: metrics are recorded and reported but never regress.
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise BenchStoreError(
                f"metric {self.name!r}: direction must be one of "
                f"{DIRECTIONS}, got {self.direction!r}")

    def to_dict(self) -> dict:
        return {"mean": self.mean, "stdev": self.stdev, "n": self.n,
                "unit": self.unit, "direction": self.direction}

    @classmethod
    def from_dict(cls, name: str, record: Mapping) -> "Metric":
        """Decode one metric record, ignoring unknown keys."""
        try:
            return cls(
                name=name,
                mean=float(record["mean"]),
                stdev=float(record.get("stdev", 0.0)),
                n=int(record.get("n", 1)),
                unit=str(record.get("unit", "")),
                direction=str(record.get("direction", "lower")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchStoreError(
                f"metric {name!r}: malformed record {record!r}: "
                f"{exc}") from exc


@dataclass(frozen=True)
class BenchSnapshot:
    """One area's recorded metrics plus provenance.

    ``git_rev`` is the commit the snapshot was recorded at (best-effort
    ``git rev-parse``; ``None`` -- JSON ``null`` -- outside a
    repository), so ``repro diff`` can name the two commits it
    compares.
    """

    area: str
    metrics: dict[str, Metric]
    recorded_at: str = ""
    git_rev: str | None = None
    quick: bool = False
    fingerprint: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "area": self.area,
            "recorded_at": self.recorded_at,
            "git_rev": self.git_rev,
            "quick": self.quick,
            "fingerprint": dict(self.fingerprint),
            "metrics": {name: metric.to_dict()
                        for name, metric in sorted(self.metrics.items())},
        }


def machine_fingerprint() -> dict:
    """Enough about this machine to judge snapshot comparability."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
    }


def git_revision(cwd: str | None = None) -> str | None:
    """The working tree's HEAD, or ``None`` outside a repository."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


# -- collectors ---------------------------------------------------------------
#
# One collector per area, each returning {metric name: Metric}.  Quick
# mode shrinks instance sizes / trial counts for CI; the metric names do
# not change, so quick and full snapshots still compare (their quick
# flags are carried so the report can say the comparison is approximate).

def _timing_metric(name: str, result, unit: str = "us",
                   scale: float = 1e6) -> Metric:
    return Metric(name=name, mean=result.mean * scale,
                  stdev=result.stdev * scale, n=result.trials, unit=unit,
                  direction="lower")


def collect_quack(quick: bool = False) -> dict[str, Metric]:
    """Table 2's power-sum hot path plus the analytic artifacts."""
    from repro.bench.timing import measure
    from repro.bench.workloads import make_workload
    from repro.quack.collision import collision_probability
    from repro.quack.decoder import decode_delta
    from repro.quack.power_sum import PowerSumQuack

    n = 300 if quick else 1000
    trials = 10 if quick else 60
    threshold, bits = 20, 32
    workload = make_workload(n=n, num_missing=threshold, bits=bits, seed=0)
    sent = workload.sent.tolist()
    received = workload.received.tolist()

    def construct() -> PowerSumQuack:
        quack = PowerSumQuack(threshold, bits)
        quack.insert_many(received)
        return quack

    mine = PowerSumQuack(threshold, bits)
    mine.insert_many(sent)
    delta = mine - construct()
    sent_log = [int(identifier) for identifier in sent]

    construction = measure(construct, trials=trials)
    decode = measure(lambda: decode_delta(delta, sent_log,
                                          method="candidates"),
                     trials=trials)
    metrics = {
        f"construct_{n}_us": _timing_metric(f"construct_{n}_us",
                                            construction),
        f"decode_{n}_t{threshold}_us": _timing_metric(
            f"decode_{n}_t{threshold}_us", decode),
        "quack_bytes": Metric(
            name="quack_bytes",
            mean=mine.wire_size_bits() / 8,
            unit="bytes", direction="lower"),
        "collision_p_32": Metric(
            name="collision_p_32",
            mean=collision_probability(1000, 32),
            unit="probability", direction="info"),
    }
    return metrics


def collect_obs(quick: bool = False) -> dict[str, Metric]:
    """Observability hot-path costs: enabled emit/count, disabled guard."""
    from repro.bench.timing import measure
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    batch = 200 if quick else 1000
    trials = 10 if quick else 40

    enabled = Tracer()
    enabled.configure(capacity=batch * 2)

    def emit_batch() -> None:
        for index in range(batch):
            enabled.emit("transport.send", 0.001 * index, flow="flow0",
                         pn=index, size=1200)

    disabled = Tracer()

    def guard_batch() -> None:
        for index in range(batch):
            if disabled.enabled:
                disabled.emit("transport.send", 0.001 * index,
                              flow="flow0", pn=index, size=1200)

    registry = MetricsRegistry()

    def count_batch() -> None:
        counter = registry.counter("bench_events_total", labels=("flow",))
        for _ in range(batch):
            counter.labels(flow="flow0").inc()

    per_event = 1e9 / batch  # seconds/batch -> ns/event
    return {
        "emit_enabled_ns": _timing_metric(
            "emit_enabled_ns", measure(emit_batch, trials=trials),
            unit="ns", scale=per_event),
        "emit_disabled_guard_ns": _timing_metric(
            "emit_disabled_guard_ns", measure(guard_batch, trials=trials),
            unit="ns", scale=per_event),
        "counter_inc_ns": _timing_metric(
            "counter_inc_ns", measure(count_batch, trials=trials),
            unit="ns", scale=per_event),
    }


def collect_protocols(quick: bool = False) -> dict[str, Metric]:
    """E7-E9 outcomes from the deterministic virtual-time simulator.

    These are *not* wall-clock: the simulator is seeded and
    event-ordered, so the numbers are machine-independent and any
    movement between snapshots of the same tree is a behavior change.
    """
    from repro.sidecar.ack_reduction import run_ack_reduction
    from repro.sidecar.cc_division import run_cc_division
    from repro.sidecar.retransmission import run_retransmission

    total_bytes = 120_000 if quick else 500_000

    cc = run_cc_division(total_bytes=total_bytes, sidecar=True, seed=1)
    ack = run_ack_reduction(total_bytes=total_bytes, ack_every=32,
                            sidecar=True, seed=1)
    retx = run_retransmission(total_bytes=total_bytes, innet_retx=True,
                              seed=1)

    def sim_metric(name: str, value: float, unit: str,
                   direction: str) -> Metric:
        return Metric(name=name, mean=float(value), stdev=0.0, n=1,
                      unit=unit, direction=direction)

    return {
        "cc_division_completion_s": sim_metric(
            "cc_division_completion_s", cc.completion_time, "s", "lower"),
        "cc_division_goodput_bps": sim_metric(
            "cc_division_goodput_bps",
            total_bytes * 8 / cc.completion_time, "bps", "higher"),
        "ack_reduction_completion_s": sim_metric(
            "ack_reduction_completion_s", ack.completion_time, "s",
            "lower"),
        "ack_reduction_client_acks": sim_metric(
            "ack_reduction_client_acks", ack.client_acks_sent, "acks",
            "lower"),
        "retransmission_completion_s": sim_metric(
            "retransmission_completion_s", retx.completion_time, "s",
            "lower"),
        "retransmission_proxy_repairs": sim_metric(
            "retransmission_proxy_repairs", retx.proxy_retransmissions,
            "packets", "info"),
    }


def collect_negotiate(quick: bool = False) -> dict[str, Metric]:
    """Negotiation overhead: what the capability handshake costs.

    The versioning milestone's promise is that negotiation is cheap --
    one offer round trip, a few hundred bytes, assistance starting
    within the first RTTs of the transfer -- and that a mid-connection
    VERSION-SWITCH adds nothing.  These are virtual-time outcomes from
    the deterministic chaos harness, machine-independent like
    :func:`collect_protocols`; ``quick`` changes nothing because the
    plans are fixed-size.  Any movement between snapshots of the same
    tree is a behavior change.
    """
    del quick  # the plans are fixed-size and deterministic
    from repro.chaos.harness import run_plan

    skew = run_plan("version-skew", seed=1)
    switch = run_plan("version-switch", seed=1)

    def sim_metric(name: str, value: float, unit: str,
                   direction: str) -> Metric:
        return Metric(name=name, mean=float(value), stdev=0.0, n=1,
                      unit=unit, direction=direction)

    return {
        "handshake_bytes": sim_metric(
            "handshake_bytes", skew.handshake_bytes, "bytes", "lower"),
        "handshake_rtts": sim_metric(
            "handshake_rtts", skew.server_counters["hellos_sent"],
            "round-trips", "lower"),
        "assistance_start_s": sim_metric(
            "assistance_start_s", skew.assistance_started_s or 0.0,
            "s", "lower"),
        "negotiated_version": sim_metric(
            "negotiated_version", skew.negotiated_version or 0,
            "version", "info"),
        "switch_completion_s": sim_metric(
            "switch_completion_s", switch.duration_s, "s", "lower"),
        "switch_stale_frames": sim_metric(
            "switch_stale_frames",
            switch.server_counters["stale_version_frames"], "frames",
            "lower"),
        "switch_retransmissions": sim_metric(
            "switch_retransmissions", switch.retransmitted_packets,
            "packets", "info"),
    }


def collect_simcore(quick: bool = False) -> dict[str, Metric]:
    """Simulator-core throughput: the trajectory the scheduler rework
    (ROADMAP item 5) has to beat.

    Three wall-clock rates plus one deterministic cost signature, all
    measured under the process default scheduler:

    * ``events_per_sec`` -- the *scheduler-throughput benchmark*:
      dispatch rate of a burst-loaded queue.  N events are pre-scheduled
      across a dense near horizon (untimed setup), then drained by one
      ``run()`` -- only the drain is inside the clock
      (:func:`~repro.bench.timing.measure_staged`).  This is the regime
      the calendar queue's batched dispatch targets (whole same-tick
      buckets dequeued at once).  Before the calendar rework this metric
      measured a 64-timer self-rescheduling loop on the heap scheduler
      at ~314k events/s; that pre-rework snapshot is kept at
      ``benchmarks/baselines/pre_scheduler/`` as the comparison point,
      and the old loop itself lives on unchanged as
      ``timer_loop_events_per_sec``.
    * ``timer_loop_events_per_sec`` -- the original self-rescheduling
      timer loop (schedule + dispatch combined; pure scheduler cost, no
      protocol work), for continuity with the pre-rework measurements.
    * ``packets_per_sec`` -- packets the full retransmission scenario
      pushes through per wall-clock second (protocol + scheduler);
    * ``heap_ops_per_event`` -- binary-heap pushes+pops per dispatched
      event on the scheduler-throughput workload, machine-independent:
      the heap scheduler does 2.0 by construction, the calendar queue
      touches a heap only for far-future overflow and mid-batch
      arrivals (~0 here).
    """
    from time import perf_counter

    from repro.bench.timing import measure, measure_staged
    from repro.netsim.core import Simulator
    from repro.sidecar.retransmission import run_retransmission

    n_events = 50_000 if quick else 200_000
    timers = 64
    trials = 5 if quick else 10

    counters: dict[str, int] = {}

    def build_burst() -> Simulator:
        # Burst arrival: n_events across 500 distinct timestamps inside
        # a 50 ms horizon (dense same-bucket batches).  Untimed.
        sim = Simulator()
        fired = [0]

        def on_event() -> None:
            fired[0] += 1

        schedule = sim.schedule
        step = 0.05 / 500
        for index in range(n_events):
            schedule((index % 500) * step, on_event)
        return sim

    def drain_burst(sim: Simulator) -> None:
        # The timed region: one drain of the pre-loaded queue.
        sim.run()
        counters.update(sim.resource_stats())

    burst = measure_staged(build_burst, drain_burst, trials=trials)
    heap_ops = (counters["heap_pushes"] + counters["heap_pops"]) \
        / max(counters["events_dispatched"], 1)

    loop_counters: dict[str, int] = {}

    def drive_loop() -> None:
        sim = Simulator()
        remaining = [n_events]

        def tick(index: int) -> None:
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            sim.schedule(0.001 * ((index % 7) + 1), tick, index + 1)

        for index in range(timers):
            sim.schedule(0.0001 * index, tick, index)
        sim.run()
        loop_counters.update(sim.resource_stats())

    loop = measure(drive_loop, trials=trials)

    total_bytes = 120_000 if quick else 500_000
    started = perf_counter()
    retx = run_retransmission(total_bytes=total_bytes, innet_retx=True,
                              seed=1)
    wall = perf_counter() - started
    packets = retx.server_packets_sent + retx.proxy_retransmissions

    return {
        "events_per_sec": Metric(
            name="events_per_sec", mean=n_events / burst.mean,
            stdev=(n_events / burst.mean ** 2) * burst.stdev,
            n=burst.trials, unit="events/s", direction="higher"),
        "timer_loop_events_per_sec": Metric(
            name="timer_loop_events_per_sec", mean=n_events / loop.mean,
            stdev=(n_events / loop.mean ** 2) * loop.stdev, n=loop.trials,
            unit="events/s", direction="higher"),
        "heap_ops_per_event": Metric(
            name="heap_ops_per_event", mean=heap_ops,
            unit="ops/event", direction="lower"),
        "packets_per_sec": Metric(
            name="packets_per_sec", mean=packets / wall,
            unit="packets/s", direction="higher"),
        "sim_events_dispatched": Metric(
            name="sim_events_dispatched",
            mean=float(counters["events_dispatched"]),
            unit="events", direction="info"),
    }


def collect_scale(quick: bool = False) -> dict[str, Metric]:
    """Multi-tenant flow-table throughput and tail latency.

    One :func:`~repro.sidecar.flowtable.run_scale` population -- flows
    spread over eight tenants with steady churn -- yields both kinds of
    metric at once: ``flows_per_sec`` is wall-clock (how fast the table
    admits, drives, and tears down the population, scheduler included,
    gated at the generous 2x threshold), while the memory footprint and
    the emission-latency tail are deterministic virtual-time outcomes a
    la :func:`collect_protocols` -- any movement is a behavior change.
    """
    from time import perf_counter

    from repro.sidecar.flowtable import run_scale

    flows = 5_000 if quick else 20_000
    started = perf_counter()
    result = run_scale(flows=flows, tenants=8, packets_per_flow=4,
                       churn_rate=0.2, duration_s=1.0, seed=1,
                       account=True)
    wall = perf_counter() - started

    def sim_metric(name: str, value: float, unit: str,
                   direction: str) -> Metric:
        return Metric(name=name, mean=float(value), stdev=0.0, n=1,
                      unit=unit, direction=direction)

    driven = result["flows_admitted"] + result["flows_closed"]
    return {
        "flows_per_sec": Metric(
            name="flows_per_sec", mean=driven / wall,
            unit="flows/s", direction="higher"),
        "bytes_per_flow": sim_metric(
            "bytes_per_flow",
            result["ledger_bank_bytes"] / max(result["ledger_flows"], 1),
            "bytes", "lower"),
        "peak_bank_bytes": sim_metric(
            "peak_bank_bytes", result["peak_bank_bytes"], "bytes",
            "lower"),
        "emission_latency_p99_s": sim_metric(
            "emission_latency_p99_s", result["emission_latency_p99_s"],
            "s", "lower"),
        "flows_evicted": sim_metric(
            "flows_evicted", result["flows_evicted"], "flows", "info"),
        "flows_shed": sim_metric(
            "flows_shed", result["flows_shed"], "flows", "info"),
    }


#: Area name -> collector.  ``record`` runs these.
COLLECTORS: dict[str, Callable[[bool], dict[str, Metric]]] = {
    "quack": collect_quack,
    "obs": collect_obs,
    "protocols": collect_protocols,
    "negotiate": collect_negotiate,
    "simcore": collect_simcore,
    "scale": collect_scale,
}


# -- persistence --------------------------------------------------------------

def snapshot_path(directory: str, area: str) -> str:
    return os.path.join(directory, f"BENCH_{area}.json")


def profile_path(directory: str, area: str) -> str:
    """Where the area's hierarchical profile snapshot lives."""
    return os.path.join(directory, f"PROFILE_{area}.json")


def _record_profile(directory: str, area: str, rev: str | None) -> str:
    """Run the area's collector once more under the hierarchical profiler.

    The *timed* collector pass above runs uninstrumented so its
    wall-clock numbers stay comparable with checked-in baselines; this
    extra quick pass trades accuracy of the absolute numbers for span
    attribution, and its output (``PROFILE_<area>.json``) feeds
    ``repro diff`` / ``repro bench compare`` regression hints.
    """
    from repro.obs import PROFILER, perf
    from repro.obs.metrics import MetricsRegistry

    scratch = MetricsRegistry()
    PROFILER.reset()
    PROFILER.configure(scratch)
    try:
        COLLECTORS[area](True)
        doc = perf.profile_snapshot(
            PROFILER, scenario=f"bench:{area}", git_rev=rev)
    finally:
        PROFILER.disable()
        PROFILER.reset()
    return perf.write_profile(doc, profile_path(directory, area))


def record(directory: str, areas: Iterable[str] | None = None,
           quick: bool = False,
           progress: Callable[[str], None] | None = None,
           profile: bool = True) -> dict[str, BenchSnapshot]:
    """Run collectors and write one ``BENCH_<area>.json`` per area.

    With ``profile`` (the default) each area also gets a
    ``PROFILE_<area>.json`` hierarchical span snapshot from a separate
    quick instrumented pass -- the timed pass stays uninstrumented.
    """
    chosen = tuple(areas) if areas is not None else tuple(sorted(COLLECTORS))
    unknown = [area for area in chosen if area not in COLLECTORS]
    if unknown:
        raise BenchStoreError(
            f"unknown bench area(s) {', '.join(unknown)}; have "
            f"{', '.join(sorted(COLLECTORS))}")
    os.makedirs(directory, exist_ok=True)
    stamp = _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds")
    rev = git_revision()
    fingerprint = machine_fingerprint()
    snapshots: dict[str, BenchSnapshot] = {}
    for area in chosen:
        if progress is not None:
            progress(f"collecting {area}...")
        snapshot = BenchSnapshot(
            area=area,
            metrics=COLLECTORS[area](quick),
            recorded_at=stamp,
            git_rev=rev,
            quick=quick,
            fingerprint=fingerprint,
        )
        write_snapshot(snapshot, directory)
        if profile:
            if progress is not None:
                progress(f"profiling {area}...")
            _record_profile(directory, area, rev)
        snapshots[area] = snapshot
    return snapshots


def _flatten_telemetry(telemetry: Mapping) -> dict[str, float]:
    """Scalar bench metrics from a merged telemetry snapshot.

    Counters/gauges flatten to one sample per series; histogram series
    flatten to their count plus exact-to-bucket p50/p99.  Keys look like
    ``telemetry_quack_decodes_total{status=ok}`` so they stay unique per
    label set.  Everything is virtual-time derived, hence ``info``.
    """
    from repro.obs.aggregate import summarize_snapshot

    flat: dict[str, float] = {}
    for name, series in summarize_snapshot(dict(telemetry)).items():
        for entry in series:
            labels = entry.get("labels", {})
            tag = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
            base = f"telemetry_{name}" + (f"{{{tag}}}" if tag else "")
            if "value" in entry:
                stats = {"": entry["value"]}
            else:
                stats = {"_count": entry["count"], "_p50": entry["p50"],
                         "_p99": entry["p99"]}
            for suffix, value in stats.items():
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                flat[base + suffix] = float(value)
    return flat


def snapshot_from_sweep(aggregate: Mapping,
                        quick: bool = False) -> BenchSnapshot:
    """Flatten a sweep aggregate into a bench snapshot.

    Every numeric scalar in each ``ok`` cell's result becomes a metric
    sample; samples with the same key are pooled across cells as
    mean/stdev/n.  All sweep metrics are deterministic virtual-time
    outcomes, so they are recorded with direction ``info`` (sweeps gate
    on their own determinism tests, not on the 2x timing threshold) --
    except ``sweep_failed_cells``, which is ``lower``-is-better and
    *does* gate: a sweep that starts failing cells is a regression.

    The area name is ``sweep_<name>``, so ``BENCH_sweep_<name>.json``
    sits beside the collector-produced snapshots and flows through
    :func:`compare_dirs` unchanged.
    """
    if not isinstance(aggregate, Mapping) \
            or aggregate.get("kind") != "sweep-aggregate":
        raise BenchStoreError(
            "snapshot_from_sweep needs a sweep aggregate dict "
            "(kind == 'sweep-aggregate')")
    name = aggregate.get("name")
    if not isinstance(name, str) or not name:
        raise BenchStoreError("sweep aggregate has no 'name'")
    samples: dict[str, list[float]] = {}
    for cell in aggregate.get("cells", ()):
        if cell.get("status") != "ok" \
                or not isinstance(cell.get("result"), Mapping):
            continue
        for key, value in cell["result"].items():
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                continue
            samples.setdefault(key, []).append(float(value))
    metrics: dict[str, Metric] = {}
    for key, values in sorted(samples.items()):
        mean = sum(values) / len(values)
        variance = (sum((v - mean) ** 2 for v in values)
                    / (len(values) - 1)) if len(values) > 1 else 0.0
        metrics[key] = Metric(name=key, mean=mean,
                              stdev=variance ** 0.5, n=len(values),
                              direction="info")
    telemetry = aggregate.get("telemetry")
    if telemetry:
        for key, value in sorted(_flatten_telemetry(telemetry).items()):
            metrics[key] = Metric(name=key, mean=value, n=1,
                                  direction="info")
    summary = aggregate.get("summary", {})
    metrics["sweep_failed_cells"] = Metric(
        name="sweep_failed_cells",
        mean=float(summary.get("failed", 0)),
        n=1, unit="cells", direction="lower")
    return BenchSnapshot(
        area=f"sweep_{name}",
        metrics=metrics,
        recorded_at=_datetime.datetime.now(
            _datetime.timezone.utc).isoformat(timespec="seconds"),
        git_rev=git_revision(),
        quick=quick,
        fingerprint=machine_fingerprint(),
    )


def write_snapshot(snapshot: BenchSnapshot, directory: str) -> str:
    """Persist one snapshot as ``BENCH_<area>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, snapshot.area)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> BenchSnapshot:
    """Read one snapshot file (forward-compatible within the schema).

    Unknown top-level and per-metric keys are ignored so older readers
    keep working against additive writers; a file declaring a *newer*
    schema than this reader supports is refused.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record_ = json.load(handle)
    except OSError as exc:
        raise BenchStoreError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchStoreError(
            f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(record_, dict):
        raise BenchStoreError(f"snapshot {path} must be a JSON object")
    schema = record_.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool):
        raise BenchStoreError(f"snapshot {path} has no integer 'schema'")
    if schema > SCHEMA_VERSION:
        raise BenchStoreError(
            f"snapshot {path} uses schema {schema}, newer than the "
            f"supported {SCHEMA_VERSION}; upgrade before comparing")
    area = record_.get("area")
    if not isinstance(area, str) or not area:
        raise BenchStoreError(f"snapshot {path} has no 'area'")
    raw_metrics = record_.get("metrics")
    if not isinstance(raw_metrics, dict):
        raise BenchStoreError(f"snapshot {path} has no 'metrics' object")
    metrics = {name: Metric.from_dict(name, value)
               for name, value in raw_metrics.items()
               if isinstance(value, Mapping)}
    fingerprint = record_.get("fingerprint")
    rev = record_.get("git_rev")
    return BenchSnapshot(
        area=area,
        metrics=metrics,
        recorded_at=str(record_.get("recorded_at", "")),
        git_rev=rev if isinstance(rev, str) and rev != "unknown" else None,
        quick=bool(record_.get("quick", False)),
        fingerprint=dict(fingerprint)
        if isinstance(fingerprint, Mapping) else {},
        schema=schema,
    )


def load_dir(directory: str) -> dict[str, BenchSnapshot]:
    """Every ``BENCH_*.json`` in ``directory``, keyed by area."""
    snapshots: dict[str, BenchSnapshot] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        raise BenchStoreError(
            f"cannot list snapshot dir {directory}: {exc}") from exc
    for name in names:
        if name.startswith("BENCH_") and name.endswith(".json"):
            snapshot = load_snapshot(os.path.join(directory, name))
            snapshots[snapshot.area] = snapshot
    return snapshots


# -- comparison ---------------------------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between baseline and current."""

    name: str
    unit: str
    direction: str
    baseline: float | None
    current: float | None
    #: ``current / baseline`` (None when undefined: zero or missing side).
    ratio: float | None
    regressed: bool
    note: str = ""


@dataclass
class AreaComparison:
    """The verdict for one area."""

    area: str
    deltas: list[MetricDelta]
    baseline_quick: bool = False
    current_quick: bool = False

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _delta(metric_name: str, baseline: Metric | None,
           current: Metric | None, threshold: float) -> MetricDelta:
    if baseline is None:
        assert current is not None
        return MetricDelta(
            name=metric_name, unit=current.unit,
            direction=current.direction, baseline=None,
            current=current.mean, ratio=None, regressed=False,
            note="new metric (no baseline)")
    if current is None:
        return MetricDelta(
            name=metric_name, unit=baseline.unit,
            direction=baseline.direction, baseline=baseline.mean,
            current=None, ratio=None, regressed=True,
            note="metric disappeared from current snapshot")
    direction = baseline.direction
    ratio = (current.mean / baseline.mean) if baseline.mean else None
    regressed = False
    note = ""
    if direction == "lower":
        regressed = current.mean > baseline.mean * threshold \
            and current.mean > 0
    elif direction == "higher":
        regressed = current.mean * threshold < baseline.mean
    if baseline.mean == 0 and current.mean != 0 and direction != "info":
        regressed, note = True, "moved off a zero baseline"
    return MetricDelta(name=metric_name, unit=baseline.unit,
                       direction=direction, baseline=baseline.mean,
                       current=current.mean, ratio=ratio,
                       regressed=regressed, note=note)


def compare_snapshots(current: BenchSnapshot, baseline: BenchSnapshot,
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> AreaComparison:
    """Diff two snapshots of one area with the threshold verdict."""
    if current.area != baseline.area:
        raise BenchStoreError(
            f"cannot compare area {current.area!r} against baseline "
            f"area {baseline.area!r}")
    if threshold <= 1.0:
        raise BenchStoreError(
            f"threshold must be > 1.0 (a ratio), got {threshold}")
    names = sorted(set(current.metrics) | set(baseline.metrics))
    deltas = [_delta(name, baseline.metrics.get(name),
                     current.metrics.get(name), threshold)
              for name in names]
    return AreaComparison(area=current.area, deltas=deltas,
                          baseline_quick=baseline.quick,
                          current_quick=current.quick)


def compare_dirs(current_dir: str, baseline_dir: str,
                 threshold: float = DEFAULT_THRESHOLD
                 ) -> list[AreaComparison]:
    """Compare every area present in *both* directories.

    Areas only on one side are skipped (a new area has no baseline to
    gate against; record one).  An empty intersection is an error -- a
    comparison that compares nothing should not pass CI silently.
    """
    current = load_dir(current_dir)
    baseline = load_dir(baseline_dir)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        raise BenchStoreError(
            f"no common bench areas between {current_dir} "
            f"(has {sorted(current) or 'nothing'}) and {baseline_dir} "
            f"(has {sorted(baseline) or 'nothing'})")
    return [compare_snapshots(current[area], baseline[area],
                              threshold=threshold)
            for area in shared]


def format_comparison(comparisons: Iterable[AreaComparison],
                      threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable verdict table for ``bench compare``."""
    lines: list[str] = []
    total_regressions = 0
    for comparison in comparisons:
        quick_note = ""
        if comparison.baseline_quick != comparison.current_quick:
            quick_note = "  (quick/full mismatch -- approximate)"
        lines.append(f"area {comparison.area}:{quick_note}")
        for delta in comparison.deltas:
            ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
            baseline = (f"{delta.baseline:,.4g}"
                        if delta.baseline is not None else "-")
            current = (f"{delta.current:,.4g}"
                       if delta.current is not None else "-")
            marker = "REGRESSED" if delta.regressed else "ok"
            note = f"  [{delta.note}]" if delta.note else ""
            lines.append(
                f"  {marker:<9s} {delta.name:<32s} "
                f"{baseline:>12s} -> {current:>12s} {delta.unit:<11s} "
                f"({ratio}, {delta.direction}){note}")
        total_regressions += len(comparison.regressions)
    lines.append("")
    if total_regressions:
        lines.append(f"FAIL: {total_regressions} metric(s) regressed "
                     f"past the {threshold:g}x threshold")
    else:
        lines.append(f"OK: no metric moved past the {threshold:g}x "
                     f"threshold")
    return "\n".join(lines)
