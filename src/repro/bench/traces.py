"""Trace-driven quACK sessions: arrival processes, loss patterns, outcomes.

Section 3.2: "Receivers select t based on the communication frequency,
and the estimated bandwidth usage and loss rate on the link."  This
module makes that selection quantitative.  It synthesizes packet traces
under several arrival processes (CBR, Poisson, bursty on/off) and loss
processes (Bernoulli, Gilbert-Elliott), then drives an emitter/consumer
session over the trace *without* the full simulator, reporting whether
the threshold ever overflowed and what was decoded.

The headline use is :func:`survival_probability`: for a given loss
process and quACK cadence, how often does a session with threshold ``t``
survive a long trace without needing a reset?  (Bursty loss needs far
more headroom than its average rate suggests -- the experiment behind
`benchmarks/test_threshold_headroom.py`.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ids import IdentifierFactory
from repro.netsim.loss import BernoulliLoss, GilbertElliottLoss, LossModel
from repro.netsim.packet import Packet
from repro.quack.base import DecodeStatus
from repro.sidecar.consumer import QuackConsumer
from repro.sidecar.emitter import QuackEmitter
from repro.sidecar.frequency import PacketCountFrequency


@dataclass(frozen=True)
class PacketTrace:
    """A synthesized unidirectional packet timeline."""

    times: tuple[float, ...]
    dropped: tuple[bool, ...]
    identifiers: tuple[int, ...]

    @property
    def n(self) -> int:
        return len(self.times)

    @property
    def loss_count(self) -> int:
        return sum(self.dropped)

    @property
    def loss_rate(self) -> float:
        return self.loss_count / self.n if self.n else 0.0

    def longest_loss_burst(self) -> int:
        longest = current = 0
        for dropped in self.dropped:
            current = current + 1 if dropped else 0
            longest = max(longest, current)
        return longest


def cbr_arrivals(n: int, rate_pps: float) -> list[float]:
    """Constant bit rate: one packet every 1/rate seconds."""
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    gap = 1.0 / rate_pps
    return [i * gap for i in range(n)]


def poisson_arrivals(n: int, rate_pps: float,
                     rng: random.Random) -> list[float]:
    """Poisson process: exponential inter-arrival gaps."""
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    now = 0.0
    times = []
    for _ in range(n):
        now += rng.expovariate(rate_pps)
        times.append(now)
    return times


def onoff_arrivals(n: int, rate_pps: float, on_s: float, off_s: float,
                   rng: random.Random) -> list[float]:
    """Bursty on/off source: CBR during exponential on-periods, silent
    during exponential off-periods."""
    if min(rate_pps, on_s, off_s) <= 0:
        raise ValueError("rate, on_s and off_s must all be positive")
    times: list[float] = []
    now = 0.0
    gap = 1.0 / rate_pps
    while len(times) < n:
        burst_end = now + rng.expovariate(1.0 / on_s)
        while now < burst_end and len(times) < n:
            times.append(now)
            now += gap
        now = burst_end + rng.expovariate(1.0 / off_s)
    return times


def synthesize_trace(n: int, arrival: str = "cbr", rate_pps: float = 1000.0,
                     loss: LossModel | None = None, bits: int = 32,
                     seed: int = 0, on_s: float = 0.05,
                     off_s: float = 0.05) -> PacketTrace:
    """Build a trace: arrival process x loss process x identifiers."""
    rng = random.Random(seed)
    if arrival == "cbr":
        times = cbr_arrivals(n, rate_pps)
    elif arrival == "poisson":
        times = poisson_arrivals(n, rate_pps, rng)
    elif arrival == "onoff":
        times = onoff_arrivals(n, rate_pps, on_s, off_s, rng)
    else:
        raise ValueError(f"unknown arrival process {arrival!r}")
    model = loss if loss is not None \
        else BernoulliLoss(0.0, random.Random(rng.random()))
    probe = Packet(src="t", dst="t", size_bytes=1500)
    dropped = tuple(model.should_drop(probe) for _ in range(n))
    factory = IdentifierFactory(
        rng.getrandbits(128).to_bytes(16, "big"), bits=bits)
    identifiers = tuple(factory.identifier(i) for i in range(n))
    return PacketTrace(times=tuple(times), dropped=dropped,
                       identifiers=identifiers)


@dataclass
class SessionOutcome:
    """What happened when a quACK session consumed a trace."""

    quacks: int = 0
    decode_failures: int = 0
    threshold_exceeded: bool = False
    declared_lost: int = 0
    false_losses: int = 0
    confirmed: int = 0
    survived: bool = True
    max_outstanding: int = 0


def run_session(trace: PacketTrace, threshold: int, quack_every: int = 32,
                grace: int = 1, bits: int = 32) -> SessionOutcome:
    """Drive one emitter/consumer pair over a trace (no simulator).

    The sender logs every packet at its timestamp; the receiver observes
    the survivors; a quACK is decoded every ``quack_every`` *arrivals*.
    A decode failure of any kind marks the session as not survived
    (a real deployment would reset; we measure how often that happens).
    """
    consumer = QuackConsumer(threshold, bits, grace=grace)
    emitter = QuackEmitter(threshold, bits,
                           policy=PacketCountFrequency(quack_every))
    outcome = SessionOutcome()
    truly_dropped = set()
    for index in range(trace.n):
        identifier = trace.identifiers[index]
        now = trace.times[index]
        consumer.record_send(identifier, index, now)
        outcome.max_outstanding = max(outcome.max_outstanding,
                                      consumer.outstanding)
        if trace.dropped[index]:
            truly_dropped.add(index)
            continue
        snapshot = emitter.observe(identifier, now)
        if snapshot is None:
            continue
        outcome.quacks += 1
        feedback = consumer.on_quack(snapshot, now)
        if not feedback.ok:
            outcome.decode_failures += 1
            outcome.survived = False
            # With the Section 3.3 truncation, an overflow surfaces as an
            # inconsistent decode (truncated "in transit" packets were
            # really lost, so the receiver's sums disagree); flag any
            # failure while more than t packets were outstanding.
            if (feedback.status is DecodeStatus.THRESHOLD_EXCEEDED
                    or feedback.num_missing > threshold
                    or consumer.outstanding > threshold):
                outcome.threshold_exceeded = True
            continue
        outcome.confirmed += len(feedback.received)
        for meta in feedback.lost:
            outcome.declared_lost += 1
            if meta not in truly_dropped:
                outcome.false_losses += 1
    return outcome


def survival_probability(threshold: int, loss: float, burstiness: str,
                         trials: int = 20, n: int = 4000,
                         quack_every: int = 32,
                         base_seed: int = 0) -> float:
    """P(session survives an n-packet trace) for a threshold choice.

    ``burstiness`` selects the loss process at (approximately) the same
    average rate: ``"random"`` is Bernoulli(loss); ``"bursty"`` is a
    Gilbert-Elliott channel with 50%-lossy bad states tuned to the same
    steady-state rate.
    """
    survived = 0
    for trial in range(trials):
        rng = random.Random(base_seed * 1000 + trial)
        if burstiness == "random":
            model: LossModel = BernoulliLoss(loss, rng)
        elif burstiness == "bursty":
            # pi_bad * 0.5 = loss  =>  p_gb/(p_gb+p_bg) = 2*loss.
            p_bg = 0.25
            pi_bad = min(2 * loss, 0.99)
            p_gb = p_bg * pi_bad / (1 - pi_bad)
            model = GilbertElliottLoss(p_gb, p_bg, loss_good=0.0,
                                       loss_bad=0.5, rng=rng)
        else:
            raise ValueError(f"unknown burstiness {burstiness!r}")
        trace = synthesize_trace(n, loss=model, seed=trial)
        outcome = run_session(trace, threshold, quack_every=quack_every)
        survived += outcome.survived
    return survived / trials
