"""Timing utilities matching the paper's methodology.

Table 2's caption: "Average of 100 trials with warmup."  :func:`measure`
implements exactly that -- run the callable ``warmup`` times unrecorded,
then ``trials`` times recorded -- and returns simple statistics.  The
pytest-benchmark files use their own machinery for statistical rigor;
this module serves the examples and the table-printing harness, which
want paper-style single numbers.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TimingResult:
    """Statistics over recorded trials, in seconds."""

    trials: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def mean_us(self) -> float:
        return self.mean * 1e6

    @property
    def mean_ns(self) -> float:
        return self.mean * 1e9

    def __str__(self) -> str:
        return (f"{self.mean_us:,.1f} us (median {self.median * 1e6:,.1f}, "
                f"+/- {self.stdev * 1e6:,.1f}, n={self.trials})")


def measure(fn: Callable[[], object], trials: int = 100,
            warmup: int = 3) -> TimingResult:
    """Time ``fn`` with warmup, the paper's Table 2 methodology."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        trials=trials,
        mean=statistics.fmean(samples),
        median=statistics.median(samples),
        stdev=statistics.stdev(samples) if trials > 1 else 0.0,
        minimum=min(samples),
        maximum=max(samples),
    )


def measure_staged(setup: Callable[[], object],
                   stage: Callable[[object], object],
                   trials: int = 100, warmup: int = 3) -> TimingResult:
    """Time ``stage(setup())`` with only ``stage`` inside the clock.

    For consume-once workloads (e.g. draining a pre-loaded event queue)
    where the preparation cost must not pollute the measured rate:
    ``setup`` builds a fresh workload per trial, untimed; ``stage``
    consumes it, timed.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    for _ in range(warmup):
        stage(setup())
    samples = []
    for _ in range(trials):
        prepared = setup()
        start = time.perf_counter()
        stage(prepared)
        samples.append(time.perf_counter() - start)
    return TimingResult(
        trials=trials,
        mean=statistics.fmean(samples),
        median=statistics.median(samples),
        stdev=statistics.stdev(samples) if trials > 1 else 0.0,
        minimum=min(samples),
        maximum=max(samples),
    )


def measure_throughput(fn: Callable[[], object], items_per_call: int,
                       trials: int = 20, warmup: int = 2) -> float:
    """Items processed per second (e.g. digests/s for the Strawman 2
    extrapolation)."""
    result = measure(fn, trials=trials, warmup=warmup)
    if result.mean <= 0:
        return math.inf
    return items_per_call / result.mean
