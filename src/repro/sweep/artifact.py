"""Sweep aggregates: the schema-versioned artifact a sweep produces.

One sweep run yields one :class:`SweepAggregate`: every cell's outcome
(ordered by cell index, never by completion order), a ``failed_cells``
section for tasks that exhausted their retries, and a ``timing`` block
that quarantines everything wall-clock-dependent.  The split is load
bearing: :func:`strip_timing` removes the quarantined fields and what
remains is guaranteed byte-identical across worker counts and
completion orders -- the engine's determinism contract, pinned by
``tests/sweep/test_determinism.py``.

The artifact is designed to be fed onward:

* :func:`repro.bench.store.snapshot_from_sweep` turns an aggregate into
  a ``BENCH_sweep_<name>.json`` snapshot for the regression gate;
* ``repro sweep --resume partial.json`` reloads one and re-runs only
  the cells that are missing or failed (:func:`completed_results`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SweepError, SweepResumeError
from repro.obs.aggregate import merge_snapshots
from repro.sweep.spec import SWEEP_SCHEMA_VERSION, SweepSpec

#: How a finished cell ended up.
CELL_OK = "ok"
CELL_FAILED = "failed"

#: Failure classes the runner distinguishes (``error_kind``).
ERROR_EXCEPTION = "exception"      # scenario raised inside the worker
ERROR_WORKER_CRASH = "worker-crash"  # worker process died; pool rebuilt
ERROR_TIMEOUT = "timeout"          # task exceeded task_timeout_s


@dataclass
class CellOutcome:
    """One cell's final state after retries."""

    index: int
    params: dict[str, Any]
    seed: int
    status: str
    attempts: int
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    wall_time_s: float = 0.0
    #: Mergeable metrics snapshot from the worker (``--telemetry`` runs).
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == CELL_OK

    def to_dict(self) -> dict:
        record = {
            "index": self.index,
            "params": dict(self.params),
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "result": self.result,
            "wall_time_s": self.wall_time_s,
        }
        if self.status == CELL_FAILED:
            record["error"] = self.error
            record["error_kind"] = self.error_kind
        if self.telemetry is not None:
            record["telemetry"] = self.telemetry
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "CellOutcome":
        try:
            return cls(
                index=int(record["index"]),
                params=dict(record["params"]),
                seed=int(record["seed"]),
                status=str(record["status"]),
                attempts=int(record.get("attempts", 1)),
                result=record.get("result"),
                error=record.get("error"),
                error_kind=record.get("error_kind"),
                wall_time_s=float(record.get("wall_time_s", 0.0)),
                telemetry=record.get("telemetry"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed cell record {record!r}: {exc}") \
                from exc


@dataclass
class SweepAggregate:
    """Everything one sweep produced, in cell order."""

    spec: SweepSpec
    cells: list[CellOutcome]
    workers: int = 1
    wall_time_s: float = 0.0
    recorded_at: str = ""
    schema: int = SWEEP_SCHEMA_VERSION

    @property
    def failed_cells(self) -> list[CellOutcome]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_cells

    @property
    def telemetry(self) -> dict | None:
        """Sweep-wide telemetry: every cell's snapshot merged into one.

        ``None`` unless the sweep ran with telemetry collection on.
        Merging is commutative and series come out sorted, so this block
        is as deterministic as the cell results themselves and survives
        :func:`strip_timing`.
        """
        per_cell = [cell.telemetry for cell in self.cells
                    if cell.telemetry is not None]
        if not per_cell:
            return None
        return merge_snapshots(per_cell)

    def to_dict(self) -> dict:
        """The artifact: deterministic body plus a ``timing`` block."""
        cells = sorted(self.cells, key=lambda cell: cell.index)
        retried = sum(1 for cell in cells if cell.attempts > 1)
        telemetry = self.telemetry
        # Resume can mix telemetry-bearing fresh cells with carried-over
        # cells that have none; the count makes partial coverage visible.
        covered = sum(1 for cell in cells if cell.telemetry is not None)
        return {
            "schema": self.schema,
            "kind": "sweep-aggregate",
            "name": self.spec.name,
            "scenario": self.spec.scenario,
            "fingerprint": self.spec.fingerprint(),
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in cells],
            "failed_cells": [
                {"index": cell.index, "params": dict(cell.params),
                 "error": cell.error, "error_kind": cell.error_kind,
                 "attempts": cell.attempts}
                for cell in cells if not cell.ok],
            "summary": {
                "total": len(cells),
                "ok": sum(1 for cell in cells if cell.ok),
                "failed": sum(1 for cell in cells if not cell.ok),
                "retried": retried,
                **({"telemetry_cells": covered} if covered else {}),
            },
            **({"telemetry": telemetry} if telemetry is not None else {}),
            "timing": {
                "recorded_at": self.recorded_at,
                "wall_time_s": self.wall_time_s,
                "workers": self.workers,
            },
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def strip_timing(aggregate: Mapping) -> dict:
    """The deterministic core of an aggregate dict.

    Removes the ``timing`` block, per-cell wall clocks, attempt counts
    (a pool-breaking crash can burn an attempt of innocently
    co-scheduled cells, so attempts may vary with scheduling), and the
    retry tally derived from them.  Two runs of the same spec must
    compare equal under this projection whatever their worker counts.
    """
    body = {key: value for key, value in aggregate.items()
            if key != "timing"}
    body["cells"] = [
        {key: value for key, value in cell.items()
         if key not in ("wall_time_s", "attempts")}
        for cell in aggregate.get("cells", ())]
    body["failed_cells"] = [
        {key: value for key, value in cell.items() if key != "attempts"}
        for cell in aggregate.get("failed_cells", ())]
    summary = dict(aggregate.get("summary", {}))
    summary.pop("retried", None)
    body["summary"] = summary
    return body


def load_aggregate_dict(path: str) -> dict:
    """Read an aggregate artifact, checking shape and schema only."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        raise SweepError(f"cannot read aggregate {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SweepError(
            f"aggregate {path} is not valid JSON: {exc}") from exc
    if not isinstance(record, dict) \
            or record.get("kind") != "sweep-aggregate":
        raise SweepError(
            f"{path} is not a sweep aggregate (missing kind marker)")
    schema = record.get("schema")
    if not isinstance(schema, int) or isinstance(schema, bool):
        raise SweepError(f"aggregate {path} has no integer 'schema'")
    if schema > SWEEP_SCHEMA_VERSION:
        raise SweepError(
            f"aggregate {path} uses schema {schema}, newer than the "
            f"supported {SWEEP_SCHEMA_VERSION}")
    return record


def completed_results(spec: SweepSpec, partial: Mapping,
                      source: str = "partial aggregate"
                      ) -> dict[int, CellOutcome]:
    """Extract resumable cells from a partial aggregate.

    Only ``ok`` cells are carried over -- failed cells get a fresh set
    of attempts.  The partial must have been produced by a spec with the
    same fingerprint (same scenario, seed, base, and grid); scheduling
    knobs may differ.
    """
    fingerprint = partial.get("fingerprint")
    if fingerprint != spec.fingerprint():
        raise SweepResumeError(
            f"{source} was produced by a different sweep "
            f"(fingerprint {fingerprint!r}, expected "
            f"{spec.fingerprint()!r}); refusing to mix results")
    carried: dict[int, CellOutcome] = {}
    num_cells = spec.num_cells
    for record in partial.get("cells", ()):
        cell = CellOutcome.from_dict(record)
        if cell.ok and 0 <= cell.index < num_cells:
            carried[cell.index] = cell
    return carried


def format_aggregate(aggregate: Mapping, max_rows: int = 40) -> str:
    """Terminal summary of an aggregate dict: grid, outcomes, failures."""
    spec = aggregate.get("spec", {})
    summary = aggregate.get("summary", {})
    timing = aggregate.get("timing", {})
    axes = {axis: values for axis, values in spec.get("grid", {}).items()}
    lines = [
        f"sweep: {aggregate.get('name')} "
        f"(scenario {aggregate.get('scenario')}, "
        f"seed {spec.get('seed')}, fingerprint "
        f"{aggregate.get('fingerprint')})",
        "grid: " + (" x ".join(
            f"{axis}[{len(values)}]" for axis, values in axes.items())
            or "(single cell)"),
        f"cells: {summary.get('total', 0)} total, "
        f"{summary.get('ok', 0)} ok, {summary.get('failed', 0)} failed, "
        f"{summary.get('retried', 0)} retried",
    ]
    if timing:
        lines.append(
            f"timing: {timing.get('wall_time_s', 0.0):.2f} s on "
            f"{timing.get('workers', '?')} worker(s)")
    shown = 0
    for cell in aggregate.get("cells", ()):
        if shown >= max_rows:
            lines.append(f"  ... {len(aggregate['cells']) - shown} more "
                         f"cell(s) not shown")
            break
        shown += 1
        varying = {axis: cell["params"].get(axis) for axis in axes}
        label = ", ".join(f"{axis}={value}"
                          for axis, value in varying.items()) or "-"
        if cell.get("status") == CELL_OK:
            lines.append(f"  [{cell['index']:>3d}] ok      {label}")
        else:
            lines.append(f"  [{cell['index']:>3d}] FAILED  {label}  "
                         f"({cell.get('error_kind')}: {cell.get('error')})")
    failed = aggregate.get("failed_cells", ())
    if failed:
        lines.append(f"failed cells: "
                     + ", ".join(str(cell["index"]) for cell in failed))
    else:
        lines.append("failed cells: none")
    return "\n".join(lines)
