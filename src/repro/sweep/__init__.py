"""Parallel scenario sweeps (``repro.sweep``).

The distributed-job-runner layer of the reproduction: a declarative
spec (cartesian grids over topology, loss, CC, quACK parameters, chaos
plans) expands into independently seeded cells, the cells shard across
a process pool, and the outcomes aggregate into one schema-versioned
JSON artifact.  Guarantees, pinned by ``tests/sweep/``:

* **determinism** -- each cell's seed derives from
  ``(sweep_seed, cell_index)``; aggregates are byte-identical across
  worker counts and completion orders once timing metadata is stripped;
* **fault tolerance** -- crashed or over-budget tasks are retried with
  backoff and, if they keep failing, recorded in ``failed_cells``
  rather than aborting the sweep;
* **resumability** -- ``repro sweep --resume partial.json`` re-runs
  only the missing/failed cells of a matching sweep.

Quick start::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.from_dict({
        "name": "retx", "scenario": "retransmission", "seed": 7,
        "base": {"total_bytes": 100_000},
        "grid": {"loss_rate": [0.01, 0.05], "lossy_delay": [0.002, 0.02]},
    })
    aggregate = run_sweep(spec, workers=4)
    aggregate.save("sweep.json")
"""

from repro.sweep.artifact import (
    CELL_FAILED,
    CELL_OK,
    CellOutcome,
    SweepAggregate,
    completed_results,
    format_aggregate,
    load_aggregate_dict,
    strip_timing,
)
from repro.sweep.runner import default_workers, run_sweep
from repro.sweep.scenarios import SCENARIOS, known_scenarios, run_cell
from repro.sweep.spec import (
    SWEEP_SCHEMA_VERSION,
    SweepCell,
    SweepSpec,
    derive_seed,
)

__all__ = [
    "SweepSpec", "SweepCell", "derive_seed", "SWEEP_SCHEMA_VERSION",
    "SweepAggregate", "CellOutcome", "CELL_OK", "CELL_FAILED",
    "strip_timing", "load_aggregate_dict", "completed_results",
    "format_aggregate",
    "run_sweep", "default_workers",
    "SCENARIOS", "known_scenarios", "run_cell",
]
