"""The sweep engine: shard seeded cells across worker processes.

``run_sweep`` expands a :class:`~repro.sweep.spec.SweepSpec` into cells
and executes them:

* **serial** (``workers=1``): cells run in-process, in index order --
  the reference execution the parallel path must reproduce;
* **parallel**: cells are submitted to a ``ProcessPoolExecutor``
  (worker count auto-detected from the CPU count unless overridden) and
  collected as they finish.  Results are keyed by cell index, so the
  aggregate is independent of completion order.

Fault tolerance, per cell:

* a scenario that **raises** inside a worker is retried up to
  ``spec.retries`` times with exponential backoff;
* a worker that **dies** (hard crash; the pool breaks) has the pool
  rebuilt; the crashing cell and any innocently in-flight cells each
  burn an attempt (the parent cannot tell which task killed the
  worker);
* a task that **exceeds** ``task_timeout_s`` (measured from submission)
  burns an attempt; if it was genuinely running, the pool is rebuilt to
  reclaim the seat, and still-queued siblings are resubmitted without
  burning their attempts.

A cell that exhausts its attempts is recorded in the aggregate's
``failed_cells`` -- the sweep never aborts and never drops a cell
silently.  Progress is mirrored into the :mod:`repro.obs` metrics
registry (``sweep_cells_total{status=...}``, ``sweep_retries_total``).
"""

from __future__ import annotations

import datetime as _datetime
import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Mapping

from repro import obs
from repro.obs.aggregate import mergeable_snapshot
from repro.sweep.artifact import (
    CELL_FAILED,
    CELL_OK,
    ERROR_EXCEPTION,
    ERROR_TIMEOUT,
    ERROR_WORKER_CRASH,
    CellOutcome,
    SweepAggregate,
    completed_results,
)
from repro.errors import SweepSpecError
from repro.sweep.scenarios import known_scenarios, run_cell
from repro.sweep.spec import SweepCell, SweepSpec

#: Longest the collection loop sleeps between bookkeeping passes.
_POLL_S = 0.05


def default_workers() -> int:
    """Worker count when the spec and CLI are silent: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _execute_cell(scenario: str, params: dict, seed: int,
                  attempt: int, telemetry: bool = False) -> dict:
    """Worker-side entry point; must stay module-level (picklable).

    With ``telemetry`` on, the cell runs in metrics-only observability
    mode (:func:`repro.obs.enable_metrics`: guarded counters and
    histograms record, trace events are dropped) and the payload gains
    a ``"telemetry"`` key carrying the worker registry frozen into the
    mergeable form of :func:`repro.obs.aggregate.mergeable_snapshot`.
    """
    start = time.perf_counter()
    if telemetry:
        obs.reset()
        obs.enable_metrics()
    try:
        result = run_cell(scenario, params, seed, attempt)
    finally:
        if telemetry:
            obs.disable()
    payload = {"result": _json_sanitize(result),
               "wall_time_s": time.perf_counter() - start}
    if telemetry:
        payload["telemetry"] = mergeable_snapshot(obs.METRICS)
        obs.METRICS.reset()
    return payload


def _json_sanitize(value):
    """Recursively null out non-finite floats so aggregates always dump."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(item) for item in value]
    return value


class _CellTracker:
    """Book-keeping for one cell across its attempts."""

    __slots__ = ("cell", "attempts_used", "outcome")

    def __init__(self, cell: SweepCell) -> None:
        self.cell = cell
        self.attempts_used = 0
        self.outcome: CellOutcome | None = None

    def succeed(self, payload: Mapping) -> CellOutcome:
        self.outcome = CellOutcome(
            index=self.cell.index, params=dict(self.cell.params),
            seed=self.cell.seed, status=CELL_OK,
            attempts=self.attempts_used,
            result=payload["result"],
            wall_time_s=float(payload["wall_time_s"]),
            telemetry=payload.get("telemetry"))
        return self.outcome

    def fail(self, error: str, error_kind: str) -> CellOutcome:
        self.outcome = CellOutcome(
            index=self.cell.index, params=dict(self.cell.params),
            seed=self.cell.seed, status=CELL_FAILED,
            attempts=self.attempts_used, result=None,
            error=error, error_kind=error_kind)
        return self.outcome


def run_sweep(spec: SweepSpec, *, workers: int | None = None,
              resume: Mapping | None = None,
              progress: Callable[[str], None] | None = None,
              telemetry: bool = False) -> SweepAggregate:
    """Run every cell of ``spec`` and aggregate the outcomes.

    ``workers`` overrides (in precedence order) the spec's ``workers``
    field and the CPU-count default.  ``resume`` is a previously saved
    aggregate dict (see :func:`repro.sweep.artifact.load_aggregate_dict`)
    whose ``ok`` cells are carried over instead of re-run; it must stem
    from a spec with the same fingerprint.  ``progress`` receives
    one-line status strings as cells finish.  ``telemetry`` runs every
    cell in metrics-only observability mode and merges the per-worker
    snapshots into the aggregate's sweep-wide ``telemetry`` block (see
    :mod:`repro.obs.aggregate`); virtual-time determinism makes the
    merged block identical across worker counts.
    """
    started = time.perf_counter()
    if spec.scenario not in known_scenarios():
        # Catch this before burning per-cell retries on a typo.
        raise SweepSpecError(
            f"unknown sweep scenario {spec.scenario!r}; have "
            f"{', '.join(known_scenarios())}")
    stamp = _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds")
    effective_workers = workers if workers is not None \
        else (spec.workers if spec.workers is not None else default_workers())
    if effective_workers < 1:
        effective_workers = 1

    cells = spec.cells()
    carried: dict[int, CellOutcome] = {}
    if resume is not None:
        carried = completed_results(spec, resume)
        if progress is not None and carried:
            progress(f"resume: carrying over {len(carried)} of "
                     f"{len(cells)} completed cell(s)")
    todo = [cell for cell in cells if cell.index not in carried]

    say = progress if progress is not None else (lambda message: None)
    if effective_workers == 1 or len(todo) <= 1:
        outcomes = _run_serial(spec, todo, say, telemetry)
    else:
        outcomes = _run_parallel(spec, todo, effective_workers, say,
                                 telemetry)

    outcomes.update(carried)
    ordered = [outcomes[cell.index] for cell in cells]
    return SweepAggregate(
        spec=spec,
        cells=ordered,
        workers=effective_workers,
        wall_time_s=time.perf_counter() - started,
        recorded_at=stamp,
    )


def _note_outcome(outcome: CellOutcome,
                  say: Callable[[str], None]) -> None:
    obs.count("sweep_cells_total", status=outcome.status)
    if outcome.ok:
        say(f"cell {outcome.index}: ok "
            f"({outcome.attempts} attempt(s), "
            f"{outcome.wall_time_s:.2f} s)")
    else:
        say(f"cell {outcome.index}: FAILED after {outcome.attempts} "
            f"attempt(s) [{outcome.error_kind}] {outcome.error}")


def _backoff_s(spec: SweepSpec, attempts_used: int) -> float:
    return spec.retry_backoff_s * (2 ** max(0, attempts_used - 1))


# -- serial ------------------------------------------------------------------

def _run_serial(spec: SweepSpec, todo: list[SweepCell],
                say: Callable[[str], None],
                telemetry: bool = False) -> dict[int, CellOutcome]:
    """The reference execution: index order, in-process, still retrying."""
    outcomes: dict[int, CellOutcome] = {}
    for cell in todo:
        tracker = _CellTracker(cell)
        while tracker.outcome is None:
            tracker.attempts_used += 1
            try:
                payload = _execute_cell(spec.scenario, dict(cell.params),
                                        cell.seed, tracker.attempts_used - 1,
                                        telemetry)
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                _retry_or_fail(spec, tracker,
                               f"{type(exc).__name__}: {exc}",
                               ERROR_EXCEPTION, say)
                if tracker.outcome is None:
                    time.sleep(_backoff_s(spec, tracker.attempts_used))
            else:
                _note_outcome(tracker.succeed(payload), say)
        outcomes[cell.index] = tracker.outcome
    return outcomes


def _retry_or_fail(spec: SweepSpec, tracker: _CellTracker, error: str,
                   error_kind: str, say: Callable[[str], None]) -> None:
    """Burn one failed attempt: either queue a retry or finalize."""
    if tracker.attempts_used <= spec.retries:
        obs.count("sweep_retries_total", kind=error_kind)
        say(f"cell {tracker.cell.index}: attempt "
            f"{tracker.attempts_used} failed [{error_kind}], retrying "
            f"({spec.retries - tracker.attempts_used + 1} left)")
    else:
        _note_outcome(tracker.fail(error, error_kind), say)


# -- parallel ----------------------------------------------------------------

class _Pool:
    """A rebuildable ProcessPoolExecutor wrapper.

    On worker crash or timeout the old executor is abandoned
    (``shutdown(wait=False, cancel_futures=True)``) and a fresh one
    built; abandoned futures are resubmitted by the caller.
    """

    def __init__(self, workers: int, telemetry: bool = False) -> None:
        self.workers = workers
        self.telemetry = telemetry
        self.executor = ProcessPoolExecutor(max_workers=workers)

    def submit(self, spec: SweepSpec, cell: SweepCell,
               attempt: int) -> Future:
        return self.executor.submit(_execute_cell, spec.scenario,
                                    dict(cell.params), cell.seed, attempt,
                                    self.telemetry)

    def rebuild(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = ProcessPoolExecutor(max_workers=self.workers)

    def close(self) -> None:
        self.executor.shutdown(wait=True, cancel_futures=True)


def _run_parallel(spec: SweepSpec, todo: list[SweepCell], workers: int,
                  say: Callable[[str], None],
                  telemetry: bool = False) -> dict[int, CellOutcome]:
    outcomes: dict[int, CellOutcome] = {}
    trackers = {cell.index: _CellTracker(cell) for cell in todo}
    #: Cells waiting for (re)submission: (eligible_monotonic, index).
    queue: list[tuple[float, int]] = [(0.0, cell.index) for cell in todo]
    #: In-flight futures -> (index, submitted_monotonic).
    running: dict[Future, tuple[int, float]] = {}
    pool = _Pool(workers, telemetry)
    obs.gauge("sweep_workers", workers)

    def submit_ready() -> None:
        now = time.monotonic()
        remaining: list[tuple[float, int]] = []
        for eligible, index in sorted(queue):
            if eligible <= now:
                tracker = trackers[index]
                tracker.attempts_used += 1
                future = pool.submit(spec, tracker.cell,
                                     tracker.attempts_used - 1)
                running[future] = (index, now)
            else:
                remaining.append((eligible, index))
        queue[:] = remaining

    def queue_retry(index: int) -> None:
        eligible = time.monotonic() + _backoff_s(
            spec, trackers[index].attempts_used)
        queue.append((eligible, index))

    def handle_failure(index: int, error: str, error_kind: str) -> None:
        tracker = trackers[index]
        _retry_or_fail(spec, tracker, error, error_kind, say)
        if tracker.outcome is None:
            queue_retry(index)
        else:
            outcomes[index] = tracker.outcome

    try:
        while queue or running:
            submit_ready()
            if not running:
                # Everything eligible is backing off; sleep it out.
                pending = min(eligible for eligible, _ in queue)
                time.sleep(max(0.0, min(_POLL_S,
                                        pending - time.monotonic())))
                continue
            done, _ = futures_wait(list(running), timeout=_POLL_S,
                                   return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index, _submitted = running.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    handle_failure(
                        index,
                        "worker process died (or a co-scheduled task "
                        "killed the pool)", ERROR_WORKER_CRASH)
                except Exception as exc:  # noqa: BLE001 - recorded below
                    handle_failure(index, f"{type(exc).__name__}: {exc}",
                                   ERROR_EXCEPTION)
                else:
                    outcome = trackers[index].succeed(payload)
                    outcomes[index] = outcome
                    _note_outcome(outcome, say)
            if broken:
                # The pool is dead: every other in-flight future is lost
                # with it.  Burn an attempt for each (the parent cannot
                # tell which task was the killer) and rebuild.
                for future, (index, _submitted) in list(running.items()):
                    handle_failure(
                        index,
                        "worker pool broke while this task was in flight",
                        ERROR_WORKER_CRASH)
                running.clear()
                pool.rebuild()
                continue
            if spec.task_timeout_s is not None:
                _reap_timeouts(spec, pool, running, handle_failure, queue,
                               trackers, say)
    finally:
        pool.close()
    return outcomes


def _reap_timeouts(spec: SweepSpec, pool: _Pool,
                   running: dict[Future, tuple[int, float]],
                   handle_failure: Callable[[int, str, str], None],
                   queue: list[tuple[float, int]],
                   trackers: dict[int, "_CellTracker"],
                   say: Callable[[str], None]) -> None:
    """Expire tasks over budget; rebuild the pool if one held a seat."""
    now = time.monotonic()
    overdue = [(future, index) for future, (index, submitted)
               in running.items()
               if now - submitted > spec.task_timeout_s]
    if not overdue:
        return
    hung = False
    for future, index in overdue:
        del running[future]
        if future.cancel():
            # Never started: give the attempt back and requeue as-is.
            trackers[index].attempts_used -= 1
            queue.append((now, index))
            continue
        hung = True
        handle_failure(
            index,
            f"task exceeded {spec.task_timeout_s:g} s budget",
            ERROR_TIMEOUT)
    if hung:
        # A genuinely running task blew its budget; its worker may be
        # hung, so rebuild the pool to reclaim the seat.  Queued
        # siblings were cancelled with it -- requeue them free of
        # charge.
        for future, (index, _submitted) in list(running.items()):
            trackers[index].attempts_used -= 1
            queue.append((now, index))
        running.clear()
        say("rebuilding worker pool after task timeout")
        pool.rebuild()
