"""Declarative sweep specs and their expansion into seeded cells.

A *sweep spec* describes a scenario matrix: one scenario (an E7-E9
protocol experiment, a chaos plan, or the engine's self-test scenario),
a dict of fixed ``base`` parameters, and a ``grid`` of axes whose
cartesian product generates the cells.  The JSON form::

    {
      "schema": 1,
      "name": "retx-loss-delay",
      "scenario": "retransmission",
      "seed": 42,
      "base": {"total_bytes": 200000},
      "grid": {
        "loss_rate":   [0.01, 0.02, 0.05],
        "lossy_delay": [0.002, 0.01, 0.05]
      },
      "task_timeout_s": 120,
      "retries": 2
    }

Expansion is deterministic: axes are ordered by name, values keep their
spec order, and the product is enumerated row-major.  Each cell's RNG
seed is derived from ``(sweep_seed, cell_index)`` with SHA-256 -- a pure
function of the spec, never of scheduling -- which is what makes a sweep
reproduce byte-identically regardless of worker count or completion
order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import SweepSpecError

#: Version of the sweep spec/aggregate format.  Readers accept any
#: ``schema <= SWEEP_SCHEMA_VERSION`` (writers must stay additive).
SWEEP_SCHEMA_VERSION = 1

#: Keys a spec file may carry; anything else is a typo worth rejecting.
_SPEC_KEYS = frozenset({
    "schema", "name", "scenario", "seed", "base", "grid",
    "task_timeout_s", "retries", "retry_backoff_s", "workers",
})


def derive_seed(sweep_seed: int, cell_index: int) -> int:
    """The cell's RNG seed: a pure function of ``(sweep_seed, index)``.

    SHA-256 rather than ``sweep_seed + index`` so that neighbouring
    cells (and neighbouring sweeps) get statistically unrelated streams;
    truncated to 63 bits so it stays a friendly non-negative int for
    ``random.Random`` and JSON alike.
    """
    digest = hashlib.sha256(
        f"repro.sweep:{sweep_seed}:{cell_index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepCell:
    """One task of the matrix: resolved parameters plus a derived seed."""

    index: int
    params: dict[str, Any]
    seed: int

    def to_dict(self) -> dict:
        return {"index": self.index, "params": dict(self.params),
                "seed": self.seed}


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep spec (see the module docstring for the format)."""

    name: str
    scenario: str
    grid: dict[str, tuple]
    base: dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    task_timeout_s: float | None = None
    retries: int = 2
    retry_backoff_s: float = 0.05
    workers: int | None = None
    schema: int = SWEEP_SCHEMA_VERSION

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, record: Mapping) -> "SweepSpec":
        """Validate a decoded spec; raise :class:`SweepSpecError` on rot."""
        if not isinstance(record, Mapping):
            raise SweepSpecError(
                f"spec must be a JSON object, got {type(record).__name__}")
        unknown = sorted(set(record) - _SPEC_KEYS)
        if unknown:
            raise SweepSpecError(
                f"spec has unknown key(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(_SPEC_KEYS))}")
        schema = record.get("schema", SWEEP_SCHEMA_VERSION)
        if not isinstance(schema, int) or isinstance(schema, bool):
            raise SweepSpecError("spec 'schema' must be an integer")
        if schema > SWEEP_SCHEMA_VERSION:
            raise SweepSpecError(
                f"spec uses schema {schema}, newer than the supported "
                f"{SWEEP_SCHEMA_VERSION}")
        scenario = record.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise SweepSpecError("spec needs a non-empty 'scenario' string")
        name = record.get("name", scenario)
        if not isinstance(name, str) or not name:
            raise SweepSpecError("spec 'name' must be a non-empty string")

        base = record.get("base", {})
        if not isinstance(base, Mapping):
            raise SweepSpecError("spec 'base' must be an object")
        grid = record.get("grid", {})
        if not isinstance(grid, Mapping):
            raise SweepSpecError("spec 'grid' must be an object")
        clean_grid: dict[str, tuple] = {}
        for axis in sorted(grid):
            values = grid[axis]
            if isinstance(values, (str, bytes)) \
                    or not isinstance(values, Sequence):
                raise SweepSpecError(
                    f"grid axis {axis!r} must be a list of values")
            if len(values) == 0:
                raise SweepSpecError(f"grid axis {axis!r} is empty")
            if axis in base:
                raise SweepSpecError(
                    f"grid axis {axis!r} shadows a base parameter")
            clean_grid[axis] = tuple(values)

        seed = record.get("seed", 1)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SweepSpecError("spec 'seed' must be an integer")
        retries = record.get("retries", 2)
        if not isinstance(retries, int) or isinstance(retries, bool) \
                or retries < 0:
            raise SweepSpecError("spec 'retries' must be an integer >= 0")
        timeout = record.get("task_timeout_s")
        if timeout is not None and (not isinstance(timeout, (int, float))
                                    or isinstance(timeout, bool)
                                    or timeout <= 0):
            raise SweepSpecError("spec 'task_timeout_s' must be > 0")
        backoff = record.get("retry_backoff_s", 0.05)
        if not isinstance(backoff, (int, float)) or isinstance(backoff, bool) \
                or backoff < 0:
            raise SweepSpecError("spec 'retry_backoff_s' must be >= 0")
        workers = record.get("workers")
        if workers is not None and (not isinstance(workers, int)
                                    or isinstance(workers, bool)
                                    or workers < 1):
            raise SweepSpecError("spec 'workers' must be an integer >= 1")

        return cls(name=name, scenario=scenario, grid=clean_grid,
                   base=dict(base), seed=seed,
                   task_timeout_s=float(timeout) if timeout else None,
                   retries=retries, retry_backoff_s=float(backoff),
                   workers=workers, schema=schema)

    @classmethod
    def from_json_file(cls, path: str) -> "SweepSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError as exc:
            raise SweepSpecError(f"cannot read spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SweepSpecError(
                f"spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(record)

    # -- identity ----------------------------------------------------------

    def to_dict(self) -> dict:
        """The canonical JSON-safe form (axes sorted, values in order)."""
        return {
            "schema": self.schema,
            "name": self.name,
            "scenario": self.scenario,
            "seed": self.seed,
            "base": dict(self.base),
            "grid": {axis: list(values)
                     for axis, values in sorted(self.grid.items())},
            "task_timeout_s": self.task_timeout_s,
            "retries": self.retries,
            "retry_backoff_s": self.retry_backoff_s,
            "workers": self.workers,
        }

    def fingerprint(self) -> str:
        """Identity of the *result-determining* part of the spec.

        Scheduling knobs (workers, timeout, retries, backoff) are
        excluded: two runs differing only in those must produce the same
        cells, so their partial aggregates are mutually resumable.
        """
        payload = {
            "schema": self.schema,
            "scenario": self.scenario,
            "seed": self.seed,
            "base": dict(sorted(self.base.items())),
            "grid": {axis: list(values)
                     for axis, values in sorted(self.grid.items())},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- expansion ---------------------------------------------------------

    @property
    def num_cells(self) -> int:
        product = 1
        for values in self.grid.values():
            product *= len(values)
        return product

    def cells(self) -> list[SweepCell]:
        """Expand the grid row-major over name-sorted axes."""
        axes = sorted(self.grid)
        combos = itertools.product(*(self.grid[axis] for axis in axes)) \
            if axes else iter([()])
        cells = []
        for index, combo in enumerate(combos):
            params = dict(self.base)
            params.update(zip(axes, combo))
            cells.append(SweepCell(index=index, params=params,
                                   seed=derive_seed(self.seed, index)))
        return cells
