"""The scenario registry: every experiment as ``spec -> result dict``.

Worker processes import this module by name and call
:func:`run_cell`, so everything here must be picklable and free of
module-global mutable state.  Each entry point is a pure function: the
same ``(params, seed)`` produces the same result dict in any process,
which is the contract the sweep engine's determinism guarantee rests on
(the experiment modules reset the one process-wide counter, packet
uids, on entry).

Registered scenarios:

* ``cc-division``, ``ack-reduction``, ``retransmission`` -- the E7-E9
  protocol experiments (Table 1's three sidecar protocols, end to end);
* ``chaos`` -- the fault-injection harness; the cell must carry a
  ``plan`` parameter naming one of :data:`repro.chaos.PLANS` (sweep the
  ``plan`` axis to cover all of them);
* ``scale`` -- the multi-tenant flow table driven at scale
  (:func:`repro.sidecar.flowtable.run_scale`): flow-count x churn-rate
  grids measuring admissions, evictions, shedding, and p99 emission
  latency under per-tenant budgets;
* ``selftest`` -- a deliberately cheap arithmetic scenario with
  injectable failures, used by the engine's own differential tests and
  by scaling demos.  Parameters: ``work`` (payload size), ``sleep_s``
  (simulated task latency), ``fail_attempts`` (raise until the task's
  attempt number reaches this), ``exit_attempts`` (hard-kill the worker
  process until then -- exercises pool breakage).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from typing import Any, Callable, Mapping

from repro.errors import SweepError


def _run_selftest(params: Mapping[str, Any], seed: int,
                  attempt: int) -> dict:
    """The engine's built-in scenario: cheap, seeded, failure-injectable."""
    fail_attempts = int(params.get("fail_attempts", 0))
    exit_attempts = int(params.get("exit_attempts", 0))
    if attempt < exit_attempts:
        if multiprocessing.parent_process() is None:
            # Serial mode runs cells in the main process; killing it
            # would take the whole sweep down.  Degrade to an ordinary
            # (retryable) failure instead.
            raise SweepError(
                "selftest: exit_attempts needs worker processes; "
                "run with --workers >= 2")
        # A hard crash: the worker process dies without cleanup, the
        # pool breaks, and the runner must rebuild it.
        os._exit(13)
    if attempt < fail_attempts:
        raise RuntimeError(
            f"selftest: injected failure on attempt {attempt} "
            f"(fails until attempt {fail_attempts})")
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    rng = random.Random(seed)
    work = int(params.get("work", 64))
    values = [rng.getrandbits(32) for _ in range(work)]
    return {
        "checksum": sum(values) % (1 << 31),
        "first": values[0] if values else None,
        "work": work,
        "attempt": attempt,
        "echo": {key: params[key] for key in sorted(params)
                 if key not in ("fail_attempts", "exit_attempts")},
    }


def _run_cc_division(params: Mapping[str, Any], seed: int,
                     attempt: int) -> dict:
    from repro.sidecar.cc_division import run_cc_division_spec

    return run_cc_division_spec(_with_seed(params, seed))


def _run_ack_reduction(params: Mapping[str, Any], seed: int,
                       attempt: int) -> dict:
    from repro.sidecar.ack_reduction import run_ack_reduction_spec

    return run_ack_reduction_spec(_with_seed(params, seed))


def _run_retransmission(params: Mapping[str, Any], seed: int,
                        attempt: int) -> dict:
    from repro.sidecar.retransmission import run_retransmission_spec

    return run_retransmission_spec(_with_seed(params, seed))


def _run_chaos(params: Mapping[str, Any], seed: int, attempt: int) -> dict:
    from repro.chaos import run_chaos_spec

    return run_chaos_spec(_with_seed(params, seed))


def _run_scale(params: Mapping[str, Any], seed: int, attempt: int) -> dict:
    from repro.sidecar.flowtable import run_scale_spec

    return run_scale_spec(_with_seed(params, seed))


def _with_seed(params: Mapping[str, Any], seed: int) -> dict:
    """Inject the derived cell seed unless the spec pins one explicitly."""
    merged = dict(params)
    merged.setdefault("seed", seed)
    return merged


#: Scenario name -> entry point ``(params, seed, attempt) -> dict``.
SCENARIOS: dict[str, Callable[[Mapping[str, Any], int, int], dict]] = {
    "cc-division": _run_cc_division,
    "ack-reduction": _run_ack_reduction,
    "retransmission": _run_retransmission,
    "chaos": _run_chaos,
    "scale": _run_scale,
    "selftest": _run_selftest,
}


def known_scenarios() -> tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def run_cell(scenario: str, params: Mapping[str, Any], seed: int,
             attempt: int = 0) -> dict:
    """Run one cell's scenario; the workers' sole entry point."""
    try:
        entry = SCENARIOS[scenario]
    except KeyError:
        raise SweepError(
            f"unknown sweep scenario {scenario!r}; have "
            f"{', '.join(known_scenarios())}")
    return entry(params, seed, attempt)
