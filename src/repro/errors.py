"""Exception hierarchy for the ``repro`` package.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause.  Sub-families mirror the package layout:

* :class:`ArithmeticDomainError` -- misuse of the finite-field layer;
* :class:`QuackError` -- failures of quACK construction or decoding, with
  the concrete decode failures the paper describes in Section 3.2
  (threshold exceeded, count wraparound that makes the system unsolvable);
* :class:`SimulationError` -- misconfiguration of the discrete-event
  simulator or the protocol agents that run on it.
"""

from __future__ import annotations

from typing import Sequence


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ArithmeticDomainError(ReproError, ValueError):
    """An operand is outside the domain of a finite-field operation.

    Raised, for example, when inverting zero, when a modulus is not prime,
    or when an element does not fit the field's bit width.
    """


class QuackError(ReproError):
    """Base class for quACK construction and decoding failures."""


class DecodeError(QuackError):
    """A quACK could not be decoded into a set of missing packets."""


class ThresholdExceededError(DecodeError):
    """More packets are missing than the quACK's threshold ``t`` can encode.

    Section 3.2 of the paper: "If t < m, decoding fails because there are
    not enough equations to solve."  Section 3.3: the parties "must reset
    the connection if they wish to use the quACK."
    """

    def __init__(self, missing: int, threshold: int) -> None:
        super().__init__(
            f"{missing} packets are missing but the quACK only carries "
            f"{threshold} power sums; the sidecar session must be reset"
        )
        self.missing = missing
        self.threshold = threshold


class InconsistentQuackError(DecodeError):
    """The power-sum system has no solution within the sender's log.

    This is the symptom of a wrapped-around count difference (Section 3.2:
    "If the difference also wraps around, then the polynomial equations
    either cannot be solved or the solutions do not correspond to packets
    in S") or of subtracting quACKs from unrelated sessions.
    """


class WireFormatError(QuackError, ValueError):
    """A serialized quACK could not be parsed."""


def unsupported_version(format_name: str, got: int,
                        supported: Sequence[int]) -> WireFormatError:
    """The one true version-rejection error, shared by every wire format.

    Each sidecar byte format (quACK frames, control messages, emitter
    checkpoints) carries a version byte; all of them reject an alien
    version with this exact shape, so operators and conformance vectors
    see one consistent message naming the format, the version received,
    and the range this build speaks.
    """
    low, high = min(supported), max(supported)
    span = str(low) if low == high else f"{low}..{high}"
    return WireFormatError(
        f"{format_name}: unsupported version {got} (supported {span})")


class SimulationError(ReproError):
    """Misuse or misconfiguration of the network simulator."""


class ObservabilityError(ReproError, ValueError):
    """Misuse of the tracing/metrics layer (:mod:`repro.obs`).

    Raised for registry conflicts (re-registering a metric under a
    different type or label set), malformed trace events, and schema
    violations found by the JSONL validator.
    """


class TransportError(SimulationError):
    """Protocol violation inside the paranoid transport implementation."""


class BenchStoreError(ReproError, ValueError):
    """A benchmark snapshot could not be written, read, or compared.

    Raised for malformed ``BENCH_<area>.json`` files, snapshots written
    by a newer schema than this reader supports, unknown bench areas,
    and comparisons with nothing in common.
    """


class SweepError(ReproError, ValueError):
    """A scenario sweep (:mod:`repro.sweep`) could not be run.

    Base class for everything the sweep engine raises on purpose:
    malformed specs, unknown scenarios, and incompatible resume
    artifacts.  Worker-side scenario failures are *not* raised -- they
    are retried and ultimately recorded in the aggregate's
    ``failed_cells`` section.
    """


class SweepSpecError(SweepError):
    """A sweep spec file is malformed or internally inconsistent.

    Raised for missing/mis-typed required keys, empty grid axes, grid
    axes that shadow base parameters, and scenarios the registry does
    not know.
    """


class SweepResumeError(SweepError):
    """A partial aggregate cannot seed a resume.

    Raised when the partial artifact's spec fingerprint does not match
    the spec being run (different grid, scenario, or sweep seed), or the
    artifact is structurally unreadable.
    """
