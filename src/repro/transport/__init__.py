"""A "paranoid" (QUIC-like, E2E-encrypted) transport over the simulator.

Public surface:

* :class:`~repro.transport.connection.SenderConnection`,
  :class:`~repro.transport.connection.ReceiverConnection`;
* congestion controllers in :mod:`repro.transport.cc`;
* :class:`~repro.transport.ack.AckFrequencyPolicy` (the QUIC
  ACK-frequency extension knob);
* frames and sizing constants in :mod:`repro.transport.frames`;
* :class:`~repro.transport.ranges.RangeSet`,
  :class:`~repro.transport.rtt.RttEstimator` utilities.
"""

from repro.transport.ack import AckFrequencyPolicy, AckTracker
from repro.transport.cc import AimdRate, BbrLite, Cubic, FixedWindow, NewReno
from repro.transport.connection import (
    ReceiverConnection,
    SenderConnection,
    SentPacketRecord,
)
from repro.transport.multipath import (
    MultipathTransfer,
    PathSpec,
    SharedStream,
)
from repro.transport.frames import (
    DEFAULT_MSS,
    HEADER_BYTES,
    AckFrame,
    AckFrequencyFrame,
    DataFrame,
)
from repro.transport.ranges import RangeSet
from repro.transport.rtt import RttEstimator

__all__ = [
    "SenderConnection",
    "ReceiverConnection",
    "SentPacketRecord",
    "NewReno",
    "Cubic",
    "BbrLite",
    "FixedWindow",
    "AimdRate",
    "AckFrequencyPolicy",
    "AckTracker",
    "AckFrame",
    "AckFrequencyFrame",
    "DataFrame",
    "MultipathTransfer",
    "PathSpec",
    "SharedStream",
    "RangeSet",
    "RttEstimator",
    "DEFAULT_MSS",
    "HEADER_BYTES",
]
