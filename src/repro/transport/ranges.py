"""Integer interval sets, used for ACK ranges and received-byte tracking.

A :class:`RangeSet` stores a set of non-negative integers as sorted,
disjoint, inclusive ranges ``[lo, hi]``.  QUIC expresses both its ACK
frames and its stream reassembly state this way; we reuse one structure
for both (packet numbers and byte offsets).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator


class RangeSet:
    """A set of ints as sorted disjoint inclusive ranges."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[tuple[int, int]] = ()) -> None:
        self._ranges: list[tuple[int, int]] = []
        for lo, hi in ranges:
            self.add_range(lo, hi)

    # -- mutation ---------------------------------------------------------

    def add(self, value: int) -> None:
        self.add_range(value, value)

    def add_range(self, lo: int, hi: int) -> None:
        """Insert the inclusive range [lo, hi], merging neighbours."""
        if lo > hi:
            raise ValueError(f"inverted range [{lo}, {hi}]")
        ranges = self._ranges
        # Find the window of existing ranges that touch [lo-1, hi+1].
        i = bisect.bisect_left(ranges, (lo,)) - 1
        if i >= 0 and ranges[i][1] >= lo - 1:
            start = i
        else:
            start = i + 1
        j = start
        new_lo, new_hi = lo, hi
        while j < len(ranges) and ranges[j][0] <= hi + 1:
            new_lo = min(new_lo, ranges[j][0])
            new_hi = max(new_hi, ranges[j][1])
            j += 1
        ranges[start:j] = [(new_lo, new_hi)]

    # -- queries -----------------------------------------------------------

    def __contains__(self, value: int) -> bool:
        i = bisect.bisect_right(self._ranges, (value, float("inf"))) - 1
        return i >= 0 and self._ranges[i][0] <= value <= self._ranges[i][1]

    def __len__(self) -> int:
        """Total count of integers covered."""
        return sum(hi - lo + 1 for lo, hi in self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._ranges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangeSet) and other._ranges == self._ranges

    @property
    def ranges(self) -> tuple[tuple[int, int], ...]:
        return tuple(self._ranges)

    @property
    def max_value(self) -> int | None:
        return self._ranges[-1][1] if self._ranges else None

    @property
    def min_value(self) -> int | None:
        return self._ranges[0][0] if self._ranges else None

    def covers_contiguously(self, lo: int, hi: int) -> bool:
        """True if every integer in [lo, hi] is present."""
        i = bisect.bisect_right(self._ranges, (lo, float("inf"))) - 1
        return (i >= 0 and self._ranges[i][0] <= lo
                and self._ranges[i][1] >= hi)

    def missing_below(self, ceiling: int) -> list[tuple[int, int]]:
        """Inclusive gaps in [min_value, ceiling] not covered by the set.

        Gaps are reported between the set's smallest element and
        ``ceiling``; values below the smallest element are not considered
        missing (nothing is known about them).
        """
        gaps: list[tuple[int, int]] = []
        previous_hi: int | None = None
        for lo, hi in self._ranges:
            if lo > ceiling:
                break
            if previous_hi is not None and lo > previous_hi + 1:
                gaps.append((previous_hi + 1, min(lo - 1, ceiling)))
            previous_hi = hi
        if previous_hi is not None and previous_hi < ceiling:
            gaps.append((previous_hi + 1, ceiling))
        return gaps

    def __repr__(self) -> str:
        inner = ", ".join(f"[{lo},{hi}]" for lo, hi in self._ranges)
        return f"RangeSet({inner})"
