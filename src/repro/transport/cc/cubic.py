"""CUBIC congestion control (RFC 9438, simplified).

The window in congestion avoidance follows

    W_cubic(t) = C * (t - K)**3 + W_max        [in datagrams]
    K = cbrt(W_max * (1 - beta) / C)

where ``t`` is time since the last reduction, ``W_max`` the window at that
reduction, ``beta = 0.7`` the decrease factor, and ``C = 0.4``.  The
Reno-friendly region and fast-convergence heuristic are included; the
delayed-ack adjustments are not (the simulator's ACK cadence is explicit).
"""

from __future__ import annotations

from repro.transport.cc.base import DEFAULT_DATAGRAM, CongestionController

BETA = 0.7
C_SCALE = 0.4  # window units per second**3, per RFC 9438


class Cubic(CongestionController):
    def __init__(self, datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        super().__init__(datagram_bytes)
        self._w_max = 0.0          # datagrams
        self._epoch_start: float | None = None
        self._reno_cwnd = 0.0      # datagrams, the TCP-friendly estimate
        self._acked_since_epoch = 0.0

    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            if self.cwnd >= self.ssthresh:
                self.cwnd = int(self.ssthresh)
            return
        if self._epoch_start is None:
            self._epoch_start = now
            self._w_max = max(self._w_max, self.cwnd_packets)
            self._reno_cwnd = self.cwnd_packets
        t = now - self._epoch_start
        k = ((self._w_max * (1 - BETA)) / C_SCALE) ** (1 / 3)
        w_cubic = C_SCALE * (t - k) ** 3 + self._w_max
        # Reno-friendly region: emulate AIMD growth.
        self._acked_since_epoch += acked_bytes / self.datagram_bytes
        rtt = max(rtt_s, 1e-4)
        self._reno_cwnd += (3 * (1 - BETA) / (1 + BETA)) \
            * (acked_bytes / max(self.cwnd, 1))
        target = max(w_cubic, self._reno_cwnd)
        current = self.cwnd_packets
        if target > current:
            # Approach the cubic target over roughly one RTT.
            increment = (target - current) / max(current, 1.0)
            self.cwnd += int(increment * self.datagram_bytes)
        else:
            # Minimal growth to stay responsive in the concave plateau.
            self.cwnd += int(self.datagram_bytes
                             * (acked_bytes / (100.0 * max(self.cwnd, 1))))

    def _reduce_window(self, now: float) -> None:
        current = self.cwnd_packets
        if current < self._w_max:
            # Fast convergence: release bandwidth faster on consecutive losses.
            self._w_max = current * (1 + BETA) / 2
        else:
            self._w_max = current
        self.ssthresh = max(int(self.cwnd * BETA), self._floor())
        self.cwnd = int(max(self.cwnd * BETA, self._floor()))
        self._epoch_start = None

    def __repr__(self) -> str:
        return f"Cubic(cwnd={self.cwnd_packets:.1f} pkts, w_max={self._w_max:.1f})"
