"""Congestion-controller interface.

The sidecar's congestion-control division (paper, Section 2.1) runs a
*separate* controller per path segment: the proxy paces its downstream
segment from client quACKs while the server controls its segment from
proxy quACKs.  Controllers therefore consume abstract events (bytes
acked / congestion detected) rather than transport internals, so the same
implementations drive the end-to-end transport, the proxy pacer, and the
quACK-fed server window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.transport.frames import DEFAULT_MSS, HEADER_BYTES

#: Datagram size the window arithmetic assumes.
DEFAULT_DATAGRAM = DEFAULT_MSS + HEADER_BYTES

#: RFC 9002 initial window: min(10 * max_datagram, ...) ~ 10 packets.
INITIAL_WINDOW_PACKETS = 10

#: Floor for the congestion window.
MIN_WINDOW_PACKETS = 2


class CongestionController(ABC):
    """Window-based congestion control over byte counts."""

    def __init__(self, datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        self.datagram_bytes = datagram_bytes
        self.cwnd = INITIAL_WINDOW_PACKETS * datagram_bytes
        self.ssthresh = float("inf")
        self.congestion_events = 0
        self._recovery_start: float | None = None

    # -- queries ---------------------------------------------------------

    def can_send(self, bytes_in_flight: int, size: int) -> bool:
        return bytes_in_flight + size <= self.cwnd

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    @property
    def cwnd_packets(self) -> float:
        return self.cwnd / self.datagram_bytes

    def in_recovery(self, sent_time: float) -> bool:
        """Was this packet sent before the current recovery epoch began?"""
        return (self._recovery_start is not None
                and sent_time <= self._recovery_start)

    # -- events ------------------------------------------------------------

    def on_packet_sent(self, size: int, now: float) -> None:
        """Default: nothing; rate-based controllers may override."""

    @abstractmethod
    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        """``acked_bytes`` newly confirmed delivered; grow the window."""

    def on_congestion_event(self, sent_time: float, now: float) -> None:
        """A loss (or ECN-CE) for a packet sent at ``sent_time``.

        At most one window reduction per round trip: events inside the
        current recovery epoch are ignored (RFC 9002 Section 7.3.1).
        """
        if self.in_recovery(sent_time):
            return
        self._recovery_start = now
        self.congestion_events += 1
        self._reduce_window(now)

    @abstractmethod
    def _reduce_window(self, now: float) -> None:
        """Apply the controller's multiplicative decrease."""

    def _floor(self) -> int:
        return MIN_WINDOW_PACKETS * self.datagram_bytes
