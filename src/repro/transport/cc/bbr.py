"""A BBR-flavored, model-based congestion controller.

Section 2.1 motivates congestion-control division with the observation
that a proxy could "implement a different kind of congestion control on
each segment entirely".  Loss-based AIMD is exactly what suffers on a
noisy access link; a model-based controller that paces at the estimated
bottleneck bandwidth and ignores stray losses is the natural alternative.
``BbrLite`` implements the core of BBR v1:

* **btlbw** -- windowed-max of delivery-rate samples (last ~10 samples);
* **rtprop** -- windowed-min of RTT samples (10 s expiry);
* a **startup** phase growing 2.89x per round until bandwidth plateaus
  for three rounds, then a **drain**, then **probe-bw** cycling pacing
  gain through [1.25, 0.75, 1, 1, 1, 1, 1, 1];
* cwnd capped at ``cwnd_gain * btlbw * rtprop`` (the BDP estimate);
* losses do **not** collapse the window (only the floor applies).

Delivery-rate sampling is simplified: each ACK contributes
``acked_bytes / elapsed-since-previous-ACK``, which on an ACK-per-few-
packets cadence approximates the true delivery rate well enough for the
simulator.  This is deliberately "lite" -- no ProbeRTT dwell, no
long-term bandwidth sampler -- and documented as such.
"""

from __future__ import annotations

from collections import deque

from repro.transport.cc.base import DEFAULT_DATAGRAM, CongestionController

STARTUP_GAIN = 2.89
DRAIN_GAIN = 1 / STARTUP_GAIN
CWND_GAIN = 2.0
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Bandwidth samples kept for the windowed max.
BW_WINDOW_SAMPLES = 10

#: rtprop expires after this long without a new minimum (BBR uses 10 s).
RTPROP_WINDOW_S = 10.0

#: Startup ends after this many rounds without >25% bandwidth growth.
FULL_BW_ROUNDS = 3


class BbrLite(CongestionController):
    """Model-based (BBR v1 style) controller; best used with pacing."""

    def __init__(self, datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        super().__init__(datagram_bytes)
        self._bw_samples: deque[float] = deque(maxlen=BW_WINDOW_SAMPLES)
        self._btlbw = 0.0            # bytes per second
        self._rtprop = float("inf")
        self._rtprop_stamp = 0.0
        # Delivery-rate sampling state: acks arriving at the same instant
        # (several records in one ACK frame) aggregate into one sample.
        self._prev_ack_time: float | None = None
        self._cur_ack_time: float | None = None
        self._cur_ack_bytes = 0
        self._mode = "startup"
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._round_bytes = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0

    # -- model updates --------------------------------------------------------

    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        if rtt_s > 0:
            if rtt_s <= self._rtprop or \
                    now - self._rtprop_stamp > RTPROP_WINDOW_S:
                self._rtprop = rtt_s
                self._rtprop_stamp = now
        if self._cur_ack_time is None:
            self._cur_ack_time = now
            self._cur_ack_bytes = acked_bytes
        elif now == self._cur_ack_time:
            self._cur_ack_bytes += acked_bytes
        else:
            if self._prev_ack_time is not None \
                    and self._cur_ack_time > self._prev_ack_time:
                sample = self._cur_ack_bytes \
                    / (self._cur_ack_time - self._prev_ack_time)
                self._bw_samples.append(sample)
                self._btlbw = max(self._bw_samples)
            self._prev_ack_time = self._cur_ack_time
            self._cur_ack_time = now
            self._cur_ack_bytes = acked_bytes

        self._advance_state_machine(acked_bytes, now)
        self._update_cwnd()

    def _advance_state_machine(self, acked_bytes: int, now: float) -> None:
        rtprop = self._rtprop if self._rtprop != float("inf") else 0.1
        self._round_bytes += acked_bytes
        # A "round" is one window's worth of acknowledgments.  Clamp to
        # the actual cwnd so an early bandwidth underestimate cannot make
        # rounds artificially short and end startup prematurely.
        round_size = max(self._btlbw * rtprop, self.cwnd,
                         self.datagram_bytes)
        if self._round_bytes < round_size:
            return
        self._round_bytes = 0
        if self._mode == "startup":
            if self._btlbw > self._full_bw * 1.25:
                self._full_bw = self._btlbw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= FULL_BW_ROUNDS:
                    self._mode = "drain"
        elif self._mode == "drain":
            # One round of draining the startup queue is enough here.
            self._mode = "probe_bw"
            self._cycle_stamp = now
        elif self._mode == "probe_bw":
            if now - self._cycle_stamp >= rtprop:
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_GAINS)
                self._cycle_stamp = now

    def _update_cwnd(self) -> None:
        if self._btlbw <= 0 or self._rtprop == float("inf"):
            return  # keep the initial window until the model is primed
        bdp = self._btlbw * self._rtprop
        target = max(int(CWND_GAIN * bdp), self._floor())
        if self._mode == "startup":
            # Never let an unconverged model throttle startup below the
            # window we are already probing with.
            target = max(target, self.cwnd)
        self.cwnd = target

    # -- interface ---------------------------------------------------------------

    @property
    def pacing_gain(self) -> float:
        if self._mode == "startup":
            return STARTUP_GAIN
        if self._mode == "drain":
            return DRAIN_GAIN
        return PROBE_GAINS[self._cycle_index]

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def bottleneck_bandwidth_bps(self) -> float:
        return self._btlbw * 8

    @property
    def min_rtt_estimate(self) -> float:
        return self._rtprop

    def pacing_rate_bps(self, rtt_s: float) -> float:
        """The sender paces at ``gain * btlbw`` once the model is primed."""
        if self._btlbw <= 0:
            # Unprimed: pace the initial window over the handshake RTT.
            return STARTUP_GAIN * self.cwnd * 8 / max(rtt_s, 1e-4)
        return max(self.pacing_gain * self._btlbw * 8,
                   self.datagram_bytes * 8)

    def _reduce_window(self, now: float) -> None:
        # BBR does not halve on loss; the model re-converges instead.
        # The floor keeps pathological cases alive.
        self.cwnd = max(self.cwnd, self._floor())

    @property
    def in_slow_start(self) -> bool:  # startup plays slow start's role
        return self._mode == "startup"

    def __repr__(self) -> str:
        return (f"BbrLite(mode={self._mode}, "
                f"btlbw={self.bottleneck_bandwidth_bps / 1e6:.2f} Mbps, "
                f"rtprop={self._rtprop * 1e3:.1f} ms, "
                f"cwnd={self.cwnd_packets:.1f} pkts)")
