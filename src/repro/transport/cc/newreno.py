"""NewReno congestion control (RFC 9002, Appendix B flavor)."""

from __future__ import annotations

from repro.transport.cc.base import DEFAULT_DATAGRAM, CongestionController

#: Multiplicative decrease factor on congestion.
LOSS_REDUCTION = 0.5


class NewReno(CongestionController):
    """Slow start + AIMD congestion avoidance."""

    def __init__(self, datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        super().__init__(datagram_bytes)
        self._avoidance_acc = 0  # bytes acked since the last +1 MSS step

    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            if self.cwnd >= self.ssthresh:
                self.cwnd = int(self.ssthresh)
            return
        # Congestion avoidance: +1 datagram per cwnd's worth of acked bytes.
        self._avoidance_acc += acked_bytes
        while self._avoidance_acc >= self.cwnd:
            self._avoidance_acc -= self.cwnd
            self.cwnd += self.datagram_bytes

    def _reduce_window(self, now: float) -> None:
        self.ssthresh = max(int(self.cwnd * LOSS_REDUCTION), self._floor())
        self.cwnd = int(self.ssthresh)
        self._avoidance_acc = 0

    def __repr__(self) -> str:
        return (f"NewReno(cwnd={self.cwnd_packets:.1f} pkts, "
                f"ssthresh={'inf' if self.ssthresh == float('inf') else int(self.ssthresh)})")
