"""Pluggable congestion controllers for the paranoid transport."""

from repro.transport.cc.base import (
    DEFAULT_DATAGRAM,
    INITIAL_WINDOW_PACKETS,
    MIN_WINDOW_PACKETS,
    CongestionController,
)
from repro.transport.cc.bbr import BbrLite
from repro.transport.cc.cubic import Cubic
from repro.transport.cc.fixed import AimdRate, FixedWindow
from repro.transport.cc.newreno import NewReno

__all__ = [
    "CongestionController",
    "NewReno",
    "Cubic",
    "BbrLite",
    "FixedWindow",
    "AimdRate",
    "DEFAULT_DATAGRAM",
    "INITIAL_WINDOW_PACKETS",
    "MIN_WINDOW_PACKETS",
]
