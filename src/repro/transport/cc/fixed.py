"""Degenerate controllers for tests and pacing baselines."""

from __future__ import annotations

from repro.transport.cc.base import DEFAULT_DATAGRAM, CongestionController


class FixedWindow(CongestionController):
    """A constant congestion window; ignores acks and losses.

    Useful to isolate other mechanisms (loss detection, sidecar logic)
    from congestion dynamics in unit tests.
    """

    def __init__(self, window_packets: int,
                 datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        super().__init__(datagram_bytes)
        if window_packets < 1:
            raise ValueError(f"window must be >= 1 packet, got {window_packets}")
        self.cwnd = window_packets * datagram_bytes
        self.ssthresh = self.cwnd  # never in slow start

    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        pass

    def _reduce_window(self, now: float) -> None:
        pass

    def __repr__(self) -> str:
        return f"FixedWindow({self.cwnd_packets:.0f} pkts)"


class AimdRate(CongestionController):
    """A pragmatic AIMD used by the proxy pacer in CC division.

    Identical dynamics to NewReno but exposes the window as a *pacing
    rate* given an RTT estimate, which is how the proxy drains its buffer
    of unforwarded packets "at a slower rate if it detects a large number
    of packets have yet to be received" (Section 2.1).
    """

    def __init__(self, datagram_bytes: int = DEFAULT_DATAGRAM) -> None:
        super().__init__(datagram_bytes)
        self._avoidance_acc = 0

    def on_ack(self, acked_bytes: int, rtt_s: float, now: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            if self.cwnd >= self.ssthresh:
                self.cwnd = int(self.ssthresh)
            return
        self._avoidance_acc += acked_bytes
        while self._avoidance_acc >= self.cwnd:
            self._avoidance_acc -= self.cwnd
            self.cwnd += self.datagram_bytes

    def _reduce_window(self, now: float) -> None:
        self.ssthresh = max(int(self.cwnd * 0.5), self._floor())
        self.cwnd = int(self.ssthresh)
        self._avoidance_acc = 0

    def pacing_rate_bps(self, rtt_s: float) -> float:
        """cwnd per RTT, as bits per second."""
        return self.cwnd * 8 / max(rtt_s, 1e-4)

    def __repr__(self) -> str:
        return f"AimdRate(cwnd={self.cwnd_packets:.1f} pkts)"
