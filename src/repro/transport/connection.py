"""Sender and receiver endpoints of the paranoid transport.

One connection moves ``total_bytes`` of a single stream from a sender host
to a receiver host over the simulated network.  On the wire every packet
is sealed (E2E-encrypted); on-path elements observe only sizes, timing,
and the pseudorandom per-packet identifier derived from the ciphertext
(:mod:`repro.ids`).

The sender implements the QUIC-like machinery the sidecar interacts with:

* window-based sending governed by a pluggable congestion controller;
* ACK processing with packet-threshold + time-threshold loss detection
  and a probe timeout (PTO) backstop (RFC 9002 flavored);
* retransmission of lost byte ranges under *new* packet numbers;
* **sidecar hooks**: :meth:`SenderConnection.sidecar_receipt` and
  :meth:`SenderConnection.sidecar_loss` let a host sidecar feed decoded
  quACK information into window management ("The server no longer needs
  to rely on end-to-end ACKs to make decisions to increase the cwnd,
  though these ACKs still govern the retransmission logic", Section 2.1;
  "enable the server to move its sending window ahead more quickly",
  Section 2.2) -- and :meth:`SenderConnection.add_send_listener` lets the
  sidecar library log each sent packet's identifier.

The receiver tracks received ranges, generates ACK frames under an
:class:`~repro.transport.ack.AckFrequencyPolicy`, and honours
ACK-frequency updates from the sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.errors import TransportError
from repro.ids import IdentifierFactory
from repro.netsim.core import EventHandle, Simulator
from repro.netsim.node import Host
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.trace import FlowMonitor
from repro.transport.ack import AckFrequencyPolicy, AckTracker
from repro.transport.cc.base import CongestionController
from repro.transport.cc.newreno import NewReno
from repro.transport.frames import (
    DEFAULT_MSS,
    HEADER_BYTES,
    AckFrame,
    AckFrequencyFrame,
    DataFrame,
)
from repro.transport.ranges import RangeSet
from repro.transport.rtt import RttEstimator

#: Packet-number threshold for loss detection (RFC 9002: kPacketThreshold).
PACKET_REORDER_THRESHOLD = 3

#: Loss-detection trigger -> retransmit cause tag for trace attribution.
#: ``quack`` = a sidecar quACK decode declared the loss, ``ack`` = e2e ACK
#: range evidence (packet or time threshold), ``pto`` = the probe-timeout
#: backstop fired blind.
RETRANSMIT_CAUSES = {"sidecar": "quack", "reorder": "ack", "time": "ack",
                     "pto": "pto"}

#: Upper bound on PTO exponential backoff doublings.
MAX_PTO_BACKOFF = 6


@dataclass
class SentPacketRecord:
    """Sender-side bookkeeping for one transmitted packet."""

    packet_number: int
    offset: int
    length: int
    size_bytes: int
    time_sent: float
    identifier: int
    is_retransmission: bool = False
    acked: bool = False
    lost: bool = False
    #: True once this packet no longer counts toward bytes_in_flight
    #: (because it was acked, declared lost, or released by a quACK).
    retired: bool = False
    #: True once the congestion controller was credited for this packet.
    cc_credited: bool = False
    #: Trace-context id stamped on the packet at transmit time (tracing
    #: enabled only); lets loss/retransmit events point back at the
    #: original datagram's lifecycle span.
    trace_ctx: int | None = None


@dataclass
class SenderStats:
    packets_sent: int = 0
    bytes_sent: int = 0
    retransmitted_packets: int = 0
    acks_received: int = 0
    pto_fired: int = 0
    losses_detected: int = 0
    sidecar_releases: int = 0
    sidecar_losses: int = 0


class SenderConnection:
    """The data-sending endpoint (the paper's "server")."""

    def __init__(self, sim: Simulator, host: Host, peer: str,
                 total_bytes: int,
                 cc: CongestionController | None = None,
                 mss: int = DEFAULT_MSS,
                 id_factory: IdentifierFactory | None = None,
                 key: bytes = b"connection-key",
                 flow_id: str = "flow0",
                 on_complete: Callable[[float], None] | None = None,
                 max_ack_delay: float = 0.025,
                 cc_from_acks: bool = True,
                 reorder_threshold: int = PACKET_REORDER_THRESHOLD,
                 pacing: bool = False,
                 chunk_source: "ChunkSource | None" = None,
                 via: str | None = None) -> None:
        if total_bytes <= 0:
            raise TransportError(f"total_bytes must be positive, got {total_bytes}")
        self.sim = sim
        self.host = host
        self.peer = peer
        self.total_bytes = total_bytes
        self.mss = mss
        self.cc = cc if cc is not None else NewReno(mss + HEADER_BYTES)
        self.id_factory = (id_factory if id_factory is not None
                           else IdentifierFactory(key, bits=32))
        self.key = key
        self.flow_id = flow_id
        self.on_complete = on_complete
        self.max_ack_delay = max_ack_delay
        #: Congestion-control division (Section 2.1): when False, e2e ACKs
        #: govern only retransmission; the congestion window moves solely on
        #: sidecar feedback (sidecar_receipt / sidecar_loss).
        self.cc_from_acks = cc_from_acks
        #: Packet-number reordering tolerance before declaring loss.  A
        #: host cooperating with an in-network retransmitter may raise it
        #: to give local repair time to win (experiment E9's ablation).
        self.reorder_threshold = reorder_threshold
        #: Space transmissions at the pacing rate instead of bursting the
        #: whole window.  The rate comes from the congestion controller's
        #: ``pacing_rate_bps(rtt)`` when it has one (AimdRate, BbrLite),
        #: otherwise from cwnd/srtt with the usual slow-start headroom.
        self.pacing = pacing
        #: Multipath support: when set, fresh data chunks are pulled from
        #: this shared source (several subflows striping one stream)
        #: instead of the linear offset counter, and completion means
        #: "everything *this* subflow pulled is acknowledged".
        self.chunk_source = chunk_source
        #: Pin the first hop (path steering for multipath subflows).
        self.via = via

        self.rtt = RttEstimator()
        self.sent: dict[int, SentPacketRecord] = {}
        self.acked_offsets = RangeSet()
        self.assigned_offsets = RangeSet()  # chunks this subflow owns
        self.bytes_in_flight = 0
        self.stats = SenderStats()
        self.completed_at: float | None = None

        self._next_packet_number = 0
        self._next_offset = 0
        #: (offset, length, cause, detect_latency, parent_ctx): what to
        #: resend, why the loss was declared (quack/ack/pto), the virtual
        #: time between the original transmission and the declaration,
        #: and the lost packet's trace-context id (None untraced) so the
        #: retransmission's span links to its parent.
        self._retx_queue: list[tuple[int, int, str, float, int | None]] = []
        self._pacing_handle: EventHandle | None = None
        self._next_send_allowed = 0.0
        # One reusable timer carries every PTO arm for the connection's
        # life: each ACK-driven rearm tombstones the previous arm in
        # place instead of churning the event queue.
        self._pto_timer = sim.timer(self._on_pto)
        self._pto_backoff = 0
        self._largest_acked: int | None = None
        self._ce_echoed = 0  # largest cumulative CE count seen in ACKs
        self._send_listeners: list[Callable[[SentPacketRecord], None]] = []
        self._started = False
        self._paused = False
        self._last_traced_cwnd: float | None = None

        host.add_handler(PacketKind.ACK, self._on_ack_packet)

    # -- public API ---------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting; idempotent."""
        if self._started:
            return
        self._started = True
        self._maybe_send()

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def pause(self) -> None:
        """Gate all transmissions (including retransmissions).

        Used by the sidecar session-reset protocol to drain the pipe
        before restarting the cumulative quACK state.  Loss detection and
        ACK processing continue; nothing leaves until :meth:`resume`.
        """
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._maybe_send()

    @property
    def paused(self) -> bool:
        return self._paused

    def add_send_listener(self,
                          listener: Callable[[SentPacketRecord], None]) -> None:
        """Observe every transmission (the host sidecar's logging hook)."""
        self._send_listeners.append(listener)

    def request_ack_frequency(self, ack_every: int,
                              max_delay_s: float) -> None:
        """Send an ACK_FREQUENCY update to the receiver (Section 2.2).

        The frame rides an ordinary encrypted packet, so on-path sidecars
        observe (and quACK) its identifier like any other -- the send
        listeners must hear about it or the sidecar session's cumulative
        state diverges.
        """
        pn = self._next_packet_number
        self._next_packet_number += 1
        frame = AckFrequencyFrame(ack_every=ack_every, max_delay_s=max_delay_s,
                                  packet_number=pn)
        identifier = self.id_factory.identifier(pn)
        size = HEADER_BYTES + 8
        packet = Packet.sealed(
            src=self.host.name, dst=self.peer, size_bytes=size,
            key=self.key, payload=frame, kind=PacketKind.DATA,
            identifier=identifier,
            flow_id=self.flow_id, created_at=self.sim.now,
        )
        record = SentPacketRecord(
            packet_number=pn, offset=0, length=0, size_bytes=size,
            time_sent=self.sim.now, identifier=identifier,
        )
        if obs.TRACER.enabled:
            packet.trace_ctx = packet.uid
            record.trace_ctx = packet.uid
        self.host.send(packet, via=self.via)
        for listener in self._send_listeners:
            listener(record)

    # -- sidecar hooks --------------------------------------------------------

    def sidecar_receipt(self, packet_numbers: list[int],
                        rtt_sample: float | None = None) -> None:
        """QuACK-confirmed receipt (by a proxy or the client) of packets.

        Releases the packets from the in-flight window and credits the
        congestion controller, so the window moves without waiting for the
        end-to-end ACK.  Reliability is untouched: the byte ranges stay
        un-acked until a real ACK arrives, and loss detection/PTO still
        cover them.
        """
        now = self.sim.now
        for pn in packet_numbers:
            record = self.sent.get(pn)
            if record is None or record.acked or record.lost:
                continue
            if not record.retired:
                record.retired = True
                self.bytes_in_flight -= record.size_bytes
            if not record.cc_credited:
                record.cc_credited = True
                sample = rtt_sample if rtt_sample is not None else self.rtt.srtt
                self.cc.on_ack(record.size_bytes, sample, now)
                self.stats.sidecar_releases += 1
        self._maybe_send()

    def sidecar_loss(self, packet_numbers: list[int],
                     congestive: bool = True) -> None:
        """QuACK-decoded losses: retransmit early, optionally reduce cwnd.

        ``congestive=False`` models the paper's observation that losses on
        a known-noisy subpath need not be treated as congestion.
        """
        now = self.sim.now
        for pn in packet_numbers:
            record = self.sent.get(pn)
            if record is None or record.acked or record.lost:
                continue
            self._declare_lost(record, now, congestion=congestive,
                               trigger="sidecar")
            self.stats.sidecar_losses += 1
        self._maybe_send()

    def packet_number_of_identifier(self, identifier: int) -> list[int]:
        """All packet numbers whose packets carry this identifier.

        More than one entry means an identifier collision: the sidecar
        must treat the fate of these packets as indeterminate
        (Section 3.2).
        """
        return [pn for pn, rec in self.sent.items()
                if rec.identifier == identifier]

    # -- sending ------------------------------------------------------------

    def _maybe_send(self) -> None:
        if self.complete or self._paused:
            return
        while True:
            if self.pacing and self.sim.now < self._next_send_allowed - 1e-12:
                self._arm_pacing_timer()
                break
            chunk = self._next_chunk()
            if chunk is None:
                break
            offset, length, retx = chunk
            size = HEADER_BYTES + length
            if not self.cc.can_send(self.bytes_in_flight, size):
                self._push_back_chunk(offset, length, retx)
                break
            self._transmit(offset, length, retx=retx)
            if self.pacing:
                interval = size * 8 / self._pacing_rate_bps()
                self._next_send_allowed = max(
                    self.sim.now, self._next_send_allowed) + interval
        self._arm_pto()

    def _pacing_rate_bps(self) -> float:
        rate_fn = getattr(self.cc, "pacing_rate_bps", None)
        if callable(rate_fn):
            rate = rate_fn(self.rtt.srtt)
            if rate > 0:
                return rate
        headroom = 2.0 if self.cc.in_slow_start else 1.25
        return max(headroom * self.cc.cwnd * 8 / max(self.rtt.srtt, 1e-4),
                   8 * (HEADER_BYTES + self.mss))  # never below 1 packet/s

    def _arm_pacing_timer(self) -> None:
        if self._pacing_handle is not None:
            return
        delay = max(self._next_send_allowed - self.sim.now, 0.0)
        self._pacing_handle = self.sim.schedule(delay, self._on_pacing_timer)

    def _on_pacing_timer(self) -> None:
        self._pacing_handle = None
        self._maybe_send()

    def _next_chunk(self) -> tuple[int, int, tuple[str, float, int | None] | None] | None:
        """The next (offset, length, retx) to put on the wire, retx first.

        ``retx`` is None for fresh data, or ``(cause, detect_latency,
        parent_ctx)`` for a retransmission (threaded into the trace event
        so analysis never has to re-infer causality from event ordering).
        """
        if self._retx_queue:
            offset, length, cause, latency, parent_ctx = self._retx_queue.pop(0)
            return offset, length, (cause, latency, parent_ctx)
        if self.chunk_source is not None:
            chunk = self.chunk_source.next_chunk()
            if chunk is None:
                return None
            offset, length = chunk
            return offset, length, None
        if self._next_offset < self.total_bytes:
            length = min(self.mss, self.total_bytes - self._next_offset)
            offset = self._next_offset
            self._next_offset += length
            return offset, length, None
        return None

    def _push_back_chunk(self, offset: int, length: int,
                         retx: tuple[str, float, int | None] | None) -> None:
        """Return an unsent chunk to the front of its queue."""
        if retx is not None:
            self._retx_queue.insert(0, (offset, length, *retx))
        elif self.chunk_source is not None:
            self.chunk_source.push_back(offset, length)
        else:
            self._next_offset = offset  # it was fresh data; rewind

    def _transmit(self, offset: int, length: int,
                  retx: tuple[str, float, int | None] | None = None,
                  ) -> SentPacketRecord:
        is_retransmission = retx is not None
        pn = self._next_packet_number
        self._next_packet_number += 1
        fin = offset + length >= self.total_bytes
        frame = DataFrame(packet_number=pn, offset=offset, length=length,
                          fin=fin)
        identifier = self.id_factory.identifier(pn)
        size = HEADER_BYTES + length
        packet = Packet.sealed(
            src=self.host.name, dst=self.peer, size_bytes=size, key=self.key,
            payload=frame, kind=PacketKind.DATA, identifier=identifier,
            flow_id=self.flow_id, created_at=self.sim.now,
        )
        record = SentPacketRecord(
            packet_number=pn, offset=offset, length=length, size_bytes=size,
            time_sent=self.sim.now, identifier=identifier,
            is_retransmission=is_retransmission,
        )
        self.sent[pn] = record
        if length > 0:
            self.assigned_offsets.add_range(offset, offset + length - 1)
        self.bytes_in_flight += size
        self.stats.packets_sent += 1
        self.stats.bytes_sent += size
        if is_retransmission:
            self.stats.retransmitted_packets += 1
        self.cc.on_packet_sent(size, self.sim.now)
        if obs.TRACER.enabled:
            # Stamp the trace-context id *before* the packet hits the
            # wire so every on-path observation can cite it.  The uid is
            # already unique per datagram, so it doubles as the context
            # id at zero extra state (DESIGN.md §13).
            packet.trace_ctx = packet.uid
            record.trace_ctx = packet.uid
            if retx is not None:
                cause, latency, parent_ctx = retx
                obs.TRACER.emit("transport.retransmit", self.sim.now,
                                flow=self.flow_id, pn=pn, size=size,
                                cause=cause, latency=latency,
                                ctx=packet.uid, parent_ctx=parent_ctx)
                obs.count("transport_retransmits_total", flow=self.flow_id,
                          cause=cause)
            else:
                obs.TRACER.emit("transport.send", self.sim.now,
                                flow=self.flow_id, pn=pn, size=size,
                                ctx=packet.uid)
            obs.count("transport_packets_sent_total", flow=self.flow_id,
                      retx=is_retransmission)
        self.host.send(packet, via=self.via)
        for listener in self._send_listeners:
            listener(record)
        return record

    # -- receiving ACKs --------------------------------------------------------

    def _on_ack_packet(self, packet: Packet) -> None:
        if packet.flow_id != self.flow_id:
            return
        frame = packet.protected_payload(self.key)
        if not isinstance(frame, AckFrame):
            raise TransportError(f"expected AckFrame, got {type(frame).__name__}")
        self.stats.acks_received += 1
        now = self.sim.now
        newly_acked: list[SentPacketRecord] = []
        for lo, hi in frame.ranges:
            for pn in range(lo, hi + 1):
                record = self.sent.get(pn)
                if record is None or record.acked:
                    continue
                record.acked = True
                newly_acked.append(record)
        if newly_acked:
            largest = max(newly_acked, key=lambda r: r.packet_number)
            if (self._largest_acked is None
                    or largest.packet_number > self._largest_acked):
                self._largest_acked = largest.packet_number
                self.rtt.update(now - largest.time_sent, frame.delay_s)
            for record in newly_acked:
                if not record.retired:
                    record.retired = True
                    self.bytes_in_flight -= record.size_bytes
                if not record.cc_credited and self.cc_from_acks:
                    record.cc_credited = True
                    self.cc.on_ack(record.size_bytes, self.rtt.latest, now)
                self.acked_offsets.add_range(
                    record.offset, record.offset + record.length - 1)
            self._pto_backoff = 0
        if frame.ecn_ce_count > self._ce_echoed:
            # New CE marks since the last ACK: one congestion response
            # (further responses inside the recovery epoch are absorbed
            # by the controller's once-per-round-trip rule).
            self._ce_echoed = frame.ecn_ce_count
            if self.cc_from_acks:
                self._congestion_from_largest(now)
        self._detect_losses(now)
        if obs.TRACER.enabled and self.cc.cwnd != self._last_traced_cwnd:
            # One cwnd event per change keeps the trace readable: ACKs
            # that leave the window alone add nothing.
            self._last_traced_cwnd = self.cc.cwnd
            obs.TRACER.emit("transport.cwnd", now, flow=self.flow_id,
                            cwnd=int(self.cc.cwnd),
                            in_flight=self.bytes_in_flight,
                            srtt=self.rtt.srtt)
            obs.gauge("transport_cwnd_bytes", int(self.cc.cwnd),
                      flow=self.flow_id)
            obs.gauge("transport_srtt_seconds", self.rtt.srtt,
                      flow=self.flow_id)
        self._check_completion()
        self._maybe_send()

    def _congestion_from_largest(self, now: float) -> None:
        if self._largest_acked is not None:
            record = self.sent.get(self._largest_acked)
            if record is not None:
                self.cc.on_congestion_event(record.time_sent, now)

    def _detect_losses(self, now: float) -> None:
        """Packet-threshold and time-threshold loss detection."""
        if self._largest_acked is None:
            return
        time_threshold = self.rtt.loss_time_threshold()
        for pn in sorted(self.sent):
            if pn >= self._largest_acked:
                break
            record = self.sent[pn]
            if record.acked or record.lost:
                continue
            reordered_out = self._largest_acked - pn >= self.reorder_threshold
            too_old = now - record.time_sent >= time_threshold
            if reordered_out or too_old:
                self._declare_lost(record, now, congestion=self.cc_from_acks,
                                   trigger="reorder" if reordered_out
                                   else "time")

    def _declare_lost(self, record: SentPacketRecord, now: float,
                      congestion: bool, trigger: str = "reorder") -> None:
        record.lost = True
        self.stats.losses_detected += 1
        if obs.TRACER.enabled:
            obs.TRACER.emit("transport.loss", now, flow=self.flow_id,
                            pn=record.packet_number, trigger=trigger,
                            congestion=congestion, ctx=record.trace_ctx)
            obs.count("transport_losses_total", flow=self.flow_id,
                      trigger=trigger)
            obs.observe("transport_detect_latency_seconds",
                        now - record.time_sent,
                        buckets=obs.LATENCY_BUCKETS,
                        cause=RETRANSMIT_CAUSES.get(trigger, trigger))
        if not record.retired:
            record.retired = True
            self.bytes_in_flight -= record.size_bytes
        if not self.acked_offsets.covers_contiguously(
                record.offset, record.offset + record.length - 1):
            self._retx_queue.append(
                (record.offset, record.length,
                 RETRANSMIT_CAUSES.get(trigger, trigger),
                 now - record.time_sent, record.trace_ctx))
        if congestion:
            self.cc.on_congestion_event(record.time_sent, now)

    # -- PTO ---------------------------------------------------------------------

    def _arm_pto(self) -> None:
        if self.complete or self.bytes_in_flight == 0:
            self._pto_timer.cancel()
            return
        interval = self.rtt.pto_interval(self.max_ack_delay,
                                         min(self._pto_backoff, MAX_PTO_BACKOFF))
        self._pto_timer.rearm(interval)

    def _on_pto(self) -> None:
        if self.complete:
            return
        self.stats.pto_fired += 1
        self._pto_backoff += 1
        if obs.TRACER.enabled:
            obs.TRACER.emit("transport.pto", self.sim.now, flow=self.flow_id,
                            backoff=self._pto_backoff)
            obs.count("transport_pto_fired_total", flow=self.flow_id)
        # Probe: retransmit the earliest outstanding un-acked range.
        outstanding = sorted(
            (r for r in self.sent.values() if not r.acked and not r.lost),
            key=lambda r: r.offset,
        )
        for record in outstanding[:2]:
            self._declare_lost(record, self.sim.now, congestion=False,
                               trigger="pto")
        self._maybe_send()
        self._arm_pto()

    def _check_completion(self) -> None:
        if self.complete:
            return
        if self.chunk_source is not None:
            # Multipath subflow: done when the shared stream is exhausted
            # and everything this subflow ever transmitted is acked.
            done = (self.chunk_source.exhausted()
                    and not self._retx_queue
                    and self.bytes_in_flight == 0
                    and len(self.acked_offsets) == len(self.assigned_offsets))
        else:
            done = (self.total_bytes > 0
                    and self.acked_offsets.covers_contiguously(
                        0, self.total_bytes - 1))
        if done:
            self.completed_at = self.sim.now
            if obs.TRACER.enabled:
                obs.TRACER.emit("transport.complete", self.sim.now,
                                flow=self.flow_id, bytes=self.total_bytes)
            self._pto_timer.cancel()
            if self.on_complete is not None:
                self.on_complete(self.sim.now)


@dataclass
class ReceiverStats:
    packets_received: int = 0
    duplicate_packets: int = 0
    acks_sent: int = 0
    bytes_received: int = 0


class ReceiverConnection:
    """The data-receiving endpoint (the paper's "client")."""

    #: Estimated wire size of an ACK packet: header + largest + range count
    #: + 8 bytes per range.
    ACK_BASE_BYTES = HEADER_BYTES + 12

    def __init__(self, sim: Simulator, host: Host, peer: str,
                 total_bytes: int,
                 key: bytes = b"connection-key",
                 flow_id: str = "flow0",
                 ack_policy: AckFrequencyPolicy | None = None,
                 monitor: FlowMonitor | None = None,
                 on_complete: Callable[[float], None] | None = None,
                 received_offsets: RangeSet | None = None,
                 via: str | None = None) -> None:
        self.sim = sim
        self.host = host
        self.peer = peer
        self.total_bytes = total_bytes
        self.key = key
        self.flow_id = flow_id
        self.ack_policy = ack_policy if ack_policy is not None \
            else AckFrequencyPolicy()
        self.monitor = monitor if monitor is not None else FlowMonitor(flow_id)
        self.on_complete = on_complete
        #: Pin the first hop for ACKs (multipath: keep feedback on-path).
        self.via = via

        self.tracker = AckTracker()
        #: Byte ranges received.  Multipath receivers share one RangeSet
        #: across the subflows reassembling the same stream.
        self.received_offsets = received_offsets \
            if received_offsets is not None else RangeSet()
        self.stats = ReceiverStats()
        self.completed_at: float | None = None
        #: Cumulative count of CE-marked data packets, echoed in ACKs
        #: (the ECN role e2e ACKs keep even under ACK reduction, §2.2).
        self.ce_count = 0

        self._ack_packet_number = 0
        self._delayed_ack: EventHandle | None = None

        host.add_handler(PacketKind.DATA, self._on_data_packet)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    # -- receiving ----------------------------------------------------------

    def _on_data_packet(self, packet: Packet) -> None:
        if packet.flow_id != self.flow_id:
            return
        frame = packet.protected_payload(self.key)
        if isinstance(frame, AckFrequencyFrame):
            self.ack_policy.update(frame.ack_every, frame.max_delay_s)
            return
        if not isinstance(frame, DataFrame):
            raise TransportError(f"expected DataFrame, got {type(frame).__name__}")
        self.stats.packets_received += 1
        if packet.ecn_ce:
            self.ce_count += 1
        is_new = self.tracker.on_packet(frame.packet_number)
        if not is_new:
            self.stats.duplicate_packets += 1
            return
        if obs.TRACER.enabled:
            obs.TRACER.emit("transport.deliver", self.sim.now,
                            flow=self.flow_id, pn=frame.packet_number,
                            ctx=packet.trace_ctx)
            obs.count("transport_packets_delivered_total", flow=self.flow_id)
        before = len(self.received_offsets)
        if frame.length > 0:
            self.received_offsets.add_range(frame.offset,
                                            frame.offset + frame.length - 1)
        new_bytes = len(self.received_offsets) - before
        if new_bytes:
            self.stats.bytes_received += new_bytes
            self.monitor.record_delivery(new_bytes, self.sim.now)
        out_of_order = (self.tracker.largest is not None
                        and frame.packet_number != self.tracker.largest)
        gap_below = bool(self.received_offsets.missing_below(frame.offset))
        self._maybe_ack(out_of_order or gap_below)
        self._check_completion()

    def _maybe_ack(self, out_of_order: bool) -> None:
        if self.ack_policy.should_ack_immediately(
                self.tracker.pending_ack_count, out_of_order):
            self._send_ack()
        elif self._delayed_ack is None and self.tracker.pending_ack_count:
            self._delayed_ack = self.sim.schedule(
                self.ack_policy.max_delay_s, self._on_delayed_ack)

    def _on_delayed_ack(self) -> None:
        self._delayed_ack = None
        if self.tracker.pending_ack_count:
            self._send_ack()

    def _send_ack(self) -> None:
        if self._delayed_ack is not None:
            self._delayed_ack.cancel()
            self._delayed_ack = None
        largest = self.tracker.largest
        if largest is None:
            return
        ranges = self.tracker.ack_ranges()
        frame = AckFrame(largest_acked=largest, ranges=ranges,
                         delay_s=0.0, ecn_ce_count=self.ce_count,
                         packet_number=self._ack_packet_number)
        self._ack_packet_number += 1
        size = self.ACK_BASE_BYTES + 8 * len(ranges)
        packet = Packet.sealed(
            src=self.host.name, dst=self.peer, size_bytes=size, key=self.key,
            payload=frame, kind=PacketKind.ACK, identifier=None,
            flow_id=self.flow_id, created_at=self.sim.now,
        )
        self.tracker.mark_acked()
        self.stats.acks_sent += 1
        self.host.send(packet, via=self.via)

    def _check_completion(self) -> None:
        if self.complete or self.total_bytes == 0:
            return
        if self.received_offsets.covers_contiguously(0, self.total_bytes - 1):
            self.completed_at = self.sim.now
            self.monitor.record_completion(self.sim.now)
            # Flush a final ACK so the sender can finish too.
            self._send_ack()
            if self.on_complete is not None:
                self.on_complete(self.sim.now)
