"""Connection instrumentation: periodic state sampling and text charts.

Protocol behaviour is easiest to judge from time series -- cwnd
evolution, bytes in flight, RTT inflation.  :class:`ConnectionProbe`
samples a :class:`~repro.transport.connection.SenderConnection` on a
fixed virtual-time cadence (stopping itself at completion), and
:func:`ascii_chart` renders a series as a terminal-friendly plot for the
examples and for debugging experiment runs.

The probe is built on the :mod:`repro.obs` layer: while tracing is
enabled each sample also lands as a ``transport.sample`` trace event and
refreshes the ``transport_cwnd_bytes`` / ``transport_srtt_seconds``
gauges, so a probed run needs no extra wiring to show up in the unified
trace.  The local ``samples`` list is kept regardless -- it is the API
the examples chart from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.netsim.core import Simulator
from repro.transport.connection import SenderConnection


@dataclass(frozen=True)
class ConnectionSample:
    """One instant of sender state."""

    time: float
    cwnd_bytes: int
    bytes_in_flight: int
    srtt: float
    packets_sent: int
    retransmitted: int


class ConnectionProbe:
    """Samples a sender every ``interval_s`` of virtual time."""

    def __init__(self, sim: Simulator, sender: SenderConnection,
                 interval_s: float = 0.05) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.sim = sim
        self.sender = sender
        self.interval_s = interval_s
        self.samples: list[ConnectionSample] = []
        self._stopped = False
        # One reusable timer drives the sampling clock.
        self._tick_timer = sim.timer(self._tick)
        self._tick()

    def _tick(self) -> None:
        if self._stopped:
            return
        sample = ConnectionSample(
            time=self.sim.now,
            cwnd_bytes=int(self.sender.cc.cwnd),
            bytes_in_flight=self.sender.bytes_in_flight,
            srtt=self.sender.rtt.srtt,
            packets_sent=self.sender.stats.packets_sent,
            retransmitted=self.sender.stats.retransmitted_packets,
        )
        self.samples.append(sample)
        if obs.TRACER.enabled:
            obs.TRACER.emit("transport.sample", sample.time,
                            flow=self.sender.flow_id,
                            cwnd=sample.cwnd_bytes,
                            in_flight=sample.bytes_in_flight,
                            srtt=sample.srtt)
            obs.gauge("transport_cwnd_bytes", sample.cwnd_bytes,
                      flow=self.sender.flow_id)
            obs.gauge("transport_srtt_seconds", sample.srtt,
                      flow=self.sender.flow_id)
        if self.sender.complete:
            self._stopped = True
            return
        self._tick_timer.rearm(self.interval_s)

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        self._stopped = True

    def series(self, field: str) -> tuple[list[float], list[float]]:
        """``(times, values)`` for one sample attribute."""
        times = [s.time for s in self.samples]
        values = [float(getattr(s, field)) for s in self.samples]
        return times, values

    def cwnd_packets_series(self,
                            datagram_bytes: int | None = None) -> tuple[list[float], list[float]]:
        datagram = datagram_bytes if datagram_bytes is not None \
            else self.sender.cc.datagram_bytes
        times, values = self.series("cwnd_bytes")
        return times, [v / datagram for v in values]


def ascii_chart(values: Sequence[float], width: int = 72, height: int = 12,
                label: str = "") -> str:
    """Render a series as a block-character chart.

    Values are bucketed to ``width`` columns (bucket mean) and scaled to
    ``height`` rows.  Returns a multi-line string; empty input yields a
    placeholder.
    """
    if width < 1 or height < 1:
        raise ValueError("chart dimensions must be positive")
    series = [float(v) for v in values]
    if not series:
        return f"{label} (no data)"
    # Bucket into `width` columns.
    columns: list[float] = []
    for i in range(min(width, len(series))):
        lo = i * len(series) // min(width, len(series))
        hi = max(lo + 1, (i + 1) * len(series) // min(width, len(series)))
        bucket = series[lo:hi]
        columns.append(sum(bucket) / len(bucket))
    top = max(columns)
    bottom = min(columns)
    span = top - bottom or 1.0
    rows: list[str] = []
    for row in range(height, 0, -1):
        # The bottom row's cutoff equals the minimum, so every column
        # paints at least one cell (flat series render as a floor line).
        cutoff = bottom + span * (row - 1) / height
        line = "".join("#" if value >= cutoff else " " for value in columns)
        rows.append(line)
    header = f"{label}  [min {bottom:.3g}, max {top:.3g}]" if label else \
        f"[min {bottom:.3g}, max {top:.3g}]"
    return "\n".join([header] + rows)
