"""Multipath transfers: striping one stream over several paths.

The paper's Section 5 asks "how would a proxy interact with multipath
transport protocols?"  To make that question concrete and runnable, this
module provides an MPTCP/MPQUIC-flavored multipath layer on top of the
existing endpoints:

* :class:`SharedStream` -- the chunk allocator.  Subflows *pull* chunks
  as their congestion windows open (pull-based scheduling: a fast path
  naturally claims more of the stream), and return unsent chunks on
  window pressure.
* :class:`MultipathTransfer` -- wires one
  :class:`~repro.transport.connection.SenderConnection` per path (each
  with its own congestion controller, packet-number space, identifier
  key, and pinned first hop) against one
  :class:`~repro.transport.connection.ReceiverConnection` per path that
  all share the reassembly state and flow monitor.

Each subflow is an ordinary paranoid connection with its own flow id, so
the sidecar machinery composes per path without modification: a proxy on
path A quACKs subflow A, a proxy on path B quACKs subflow B -- which is
precisely the answer the experiment in
``tests/integration/test_multipath.py`` demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TransportError
from repro.netsim.core import Simulator
from repro.netsim.node import Host
from repro.netsim.trace import FlowMonitor
from repro.transport.cc.base import CongestionController
from repro.transport.connection import ReceiverConnection, SenderConnection
from repro.transport.frames import DEFAULT_MSS
from repro.transport.ranges import RangeSet


class SharedStream:
    """Sequential chunk allocator shared by the subflows of one transfer."""

    def __init__(self, total_bytes: int, mss: int = DEFAULT_MSS) -> None:
        if total_bytes <= 0:
            raise TransportError(f"total_bytes must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.mss = mss
        self._next_offset = 0
        self._returned: list[tuple[int, int]] = []
        self.chunks_handed_out = 0

    def next_chunk(self) -> tuple[int, int] | None:
        """Hand out the next chunk (returned chunks take precedence)."""
        if self._returned:
            self.chunks_handed_out += 1
            return self._returned.pop(0)
        if self._next_offset >= self.total_bytes:
            return None
        length = min(self.mss, self.total_bytes - self._next_offset)
        offset = self._next_offset
        self._next_offset += length
        self.chunks_handed_out += 1
        return offset, length

    def push_back(self, offset: int, length: int) -> None:
        """A subflow could not send a pulled chunk; re-offer it."""
        self._returned.insert(0, (offset, length))
        self.chunks_handed_out -= 1

    def exhausted(self) -> bool:
        return not self._returned and self._next_offset >= self.total_bytes


@dataclass(frozen=True)
class PathSpec:
    """One path of a multipath transfer.

    ``via`` pins the server's first hop; ``via_reverse`` pins the
    client's first hop for the subflow's ACKs (usually the same proxy),
    keeping feedback on-path.
    """

    via: str
    via_reverse: str | None = None
    cc_factory: Callable[[], CongestionController] | None = None
    key: bytes | None = None


@dataclass
class SubflowHandle:
    """The endpoints of one path's subflow."""

    flow_id: str
    sender: SenderConnection
    receiver: ReceiverConnection


class MultipathTransfer:
    """One byte stream striped across several paths."""

    def __init__(self, sim: Simulator, server: Host, client: Host,
                 total_bytes: int, paths: list[PathSpec],
                 mss: int = DEFAULT_MSS,
                 on_complete: Callable[[float], None] | None = None) -> None:
        if not paths:
            raise TransportError("a multipath transfer needs at least one path")
        self.sim = sim
        self.total_bytes = total_bytes
        self.stream = SharedStream(total_bytes, mss)
        self.received = RangeSet()
        self.monitor = FlowMonitor("multipath")
        self.on_complete = on_complete
        self.completed_at: float | None = None
        self.subflows: list[SubflowHandle] = []
        for index, path in enumerate(paths):
            flow_id = f"mp-{index}"
            key = path.key if path.key is not None \
                else f"multipath-key-{index}".encode()
            receiver = ReceiverConnection(
                sim, client, server.name, total_bytes, key=key,
                flow_id=flow_id, monitor=self.monitor,
                received_offsets=self.received,
                on_complete=self._subflow_done,
                via=path.via_reverse)
            sender = SenderConnection(
                sim, server, client.name, total_bytes, key=key,
                flow_id=flow_id, mss=mss,
                cc=path.cc_factory() if path.cc_factory is not None else None,
                chunk_source=self.stream, via=path.via)
            self.subflows.append(SubflowHandle(flow_id, sender, receiver))

    def start(self) -> None:
        for subflow in self.subflows:
            subflow.sender.start()

    def _subflow_done(self, now: float) -> None:
        # Every per-path receiver checks the *shared* range set, so the
        # first completion callback is the transfer's completion.
        if self.completed_at is None:
            self.completed_at = now
            if self.on_complete is not None:
                self.on_complete(now)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def goodput_bps(self) -> float:
        return self.monitor.goodput_bps(self.completed_at)

    def bytes_by_subflow(self) -> dict[str, int]:
        """How much of the stream each path carried (sent, minus retx)."""
        return {sub.flow_id: len(sub.sender.assigned_offsets)
                for sub in self.subflows}
