"""Protected (E2E-encrypted) transport frames.

These objects travel as the sealed payload of a
:class:`~repro.netsim.packet.Packet`; only the two endpoints holding the
connection key can read them (see
:meth:`repro.netsim.packet.Packet.protected_payload`).  Middleboxes see
sizes and pseudorandom identifiers -- nothing here.

The frame set is the minimal QUIC-like vocabulary the sidecar scenarios
need: stream data, ACKs with ranges, and the ACK-frequency update from
the QUIC extension the paper cites for ACK reduction (Section 2.2,
draft-ietf-quic-ack-frequency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bytes of transport + IP/UDP header overhead per packet in the simulation.
HEADER_BYTES = 40

#: Default maximum payload bytes per packet; header + payload = a typical
#: 1500-byte MTU (the paper's Section 4.3 sizing assumes 1500 B packets).
DEFAULT_MSS = 1460


@dataclass(frozen=True)
class DataFrame:
    """A chunk of the (single) stream: ``[offset, offset+length)``.

    ``packet_number`` identifies the packet for ACK purposes; a
    retransmission of the same bytes uses a *new* packet number, as in
    QUIC.
    """

    packet_number: int
    offset: int
    length: int
    fin: bool = False


@dataclass(frozen=True)
class AckFrame:
    """Acknowledgment with ranges, as observed by the receiver.

    ``ranges`` are inclusive packet-number ranges, highest first is not
    required (they are normalized by consumers).  ``delay_s`` is the
    receiver-side ACK delay, subtracted from RTT samples.
    """

    largest_acked: int
    ranges: tuple[tuple[int, int], ...]
    delay_s: float = 0.0
    ecn_ce_count: int = 0
    packet_number: int = 0


@dataclass(frozen=True)
class AckFrequencyFrame:
    """Sender's request to slow the peer's ACK cadence (QUIC extension).

    The server uses this in the ACK-reduction protocol: "The client can
    also transmit fewer ACKs using the proposed ACK frequency extension
    in QUIC, reducing network congestion" (Section 2.2).
    """

    ack_every: int
    max_delay_s: float
    packet_number: int = 0


@dataclass(frozen=True)
class HandshakeFrame:
    """Connection setup: announces the transfer size to the receiver."""

    packet_number: int
    total_bytes: int
