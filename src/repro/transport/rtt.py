"""RTT estimation (RFC 9002, Section 5).

Maintains the smoothed RTT, RTT variance, and minimum RTT from ACK-derived
samples, and derives the probe timeout (PTO) interval the sender arms
after sending ack-eliciting data.
"""

from __future__ import annotations

#: Initial RTT assumed before the first sample (RFC 9002 recommends 333 ms;
#: we use a smaller value suited to simulated paths).
INITIAL_RTT = 0.1

#: PTO granularity floor.
GRANULARITY = 0.001


class RttEstimator:
    """EWMA RTT state: srtt, rttvar, min_rtt."""

    __slots__ = ("srtt", "rttvar", "min_rtt", "latest", "has_sample")

    def __init__(self, initial_rtt: float = INITIAL_RTT) -> None:
        self.srtt = initial_rtt
        self.rttvar = initial_rtt / 2
        self.min_rtt = float("inf")
        self.latest = initial_rtt
        self.has_sample = False

    def update(self, sample: float, ack_delay: float = 0.0) -> None:
        """Fold in one RTT sample (seconds)."""
        if sample <= 0:
            return
        self.latest = sample
        self.min_rtt = min(self.min_rtt, sample)
        # Subtract peer ack delay only if it leaves us above min_rtt.
        adjusted = sample
        if adjusted - ack_delay >= self.min_rtt:
            adjusted -= ack_delay
        if not self.has_sample:
            self.srtt = adjusted
            self.rttvar = adjusted / 2
            self.has_sample = True
            return
        self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - adjusted)
        self.srtt = 0.875 * self.srtt + 0.125 * adjusted

    def pto_interval(self, max_ack_delay: float = 0.025,
                     backoff_exponent: int = 0) -> float:
        """Probe timeout, with exponential backoff."""
        base = self.srtt + max(4 * self.rttvar, GRANULARITY) + max_ack_delay
        return base * (2 ** backoff_exponent)

    def loss_time_threshold(self) -> float:
        """Time-threshold loss detection delay (9/8 of the larger RTT)."""
        return max(9 / 8 * max(self.srtt, self.latest), GRANULARITY)

    def __repr__(self) -> str:
        return (f"RttEstimator(srtt={self.srtt * 1e3:.2f}ms, "
                f"var={self.rttvar * 1e3:.2f}ms, "
                f"min={self.min_rtt * 1e3:.2f}ms)")
