"""Receiver-side ACK generation: tracking and frequency policy.

:class:`AckTracker` records received packet numbers and produces the
ranges for :class:`~repro.transport.frames.AckFrame`.

:class:`AckFrequencyPolicy` decides *when* to ACK: after every
``ack_every``-th ack-eliciting packet, or when the delayed-ACK timer
(``max_delay_s``) expires, whichever comes first -- the knob the QUIC
ACK-frequency extension exposes and the ACK-reduction sidecar protocol
turns down (paper, Section 2.2).
"""

from __future__ import annotations

from repro.transport.ranges import RangeSet

#: QUIC's default: ACK every other ack-eliciting packet.
DEFAULT_ACK_EVERY = 2

#: QUIC's default max_ack_delay.
DEFAULT_MAX_ACK_DELAY = 0.025


class AckTracker:
    """Which packet numbers have arrived, and what changed since last ACK."""

    def __init__(self, max_ranges: int = 32) -> None:
        self.received = RangeSet()
        self.max_ranges = max_ranges
        self._new_since_last_ack = 0

    def on_packet(self, packet_number: int) -> bool:
        """Record an arrival; returns False for duplicates."""
        if packet_number in self.received:
            return False
        self.received.add(packet_number)
        self._new_since_last_ack += 1
        return True

    @property
    def largest(self) -> int | None:
        return self.received.max_value

    @property
    def pending_ack_count(self) -> int:
        """Ack-eliciting packets received since the last ACK was sent."""
        return self._new_since_last_ack

    def ack_ranges(self) -> tuple[tuple[int, int], ...]:
        """Most recent ranges first, truncated to ``max_ranges``."""
        ranges = list(self.received.ranges)
        ranges.reverse()
        return tuple(ranges[:self.max_ranges])

    def mark_acked(self) -> None:
        """Reset the since-last-ACK counter (an ACK has been emitted)."""
        self._new_since_last_ack = 0


class AckFrequencyPolicy:
    """When should the receiver emit an ACK?"""

    def __init__(self, ack_every: int = DEFAULT_ACK_EVERY,
                 max_delay_s: float = DEFAULT_MAX_ACK_DELAY) -> None:
        self.update(ack_every, max_delay_s)

    def update(self, ack_every: int, max_delay_s: float) -> None:
        """Apply an ACK_FREQUENCY frame (or local reconfiguration)."""
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {ack_every}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.ack_every = ack_every
        self.max_delay_s = max_delay_s

    def should_ack_immediately(self, pending: int,
                               out_of_order: bool = False) -> bool:
        """ACK now?  Out-of-order arrivals always ACK (loss signal)."""
        return out_of_order or pending >= self.ack_every

    def __repr__(self) -> str:
        return (f"AckFrequencyPolicy(every={self.ack_every}, "
                f"max_delay={self.max_delay_s * 1e3:.0f}ms)")
