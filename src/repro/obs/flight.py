"""Flight recorder: post-mortem dumps of the trace ring on failure.

A chaos-invariant violation or a ``WireFormatError`` usually surfaces
long after the interesting packets flew.  When armed, the flight
recorder snapshots the last-N events of the live trace ring -- plus the
implicated packet's full lifecycle span tree -- into a JSONL artifact
the moment the failure is noticed, so the evidence survives even though
the ring keeps rolling.

Dump layout (one JSON object per line):

1. a ``{"kind": "flight-recorder", ...}`` header (reason, scenario,
   event/drop counts, implicated context id);
2. the buffered trace events, schema-valid records exactly as a normal
   JSONL export would write them;
3. optional caller-supplied extra records (e.g. the violated invariant
   strings);
4. a ``{"kind": "span-tree", ...}`` record carrying the implicated
   packet's assembled span tree, when one can be identified.

The recorder is a process-wide singleton (``repro.obs.FLIGHT``),
disarmed by default; the armed check at the hook sites is one attribute
load, mirroring the tracing guard.  Filenames are sequence-numbered
(never timestamped) so a fixed-seed failing run produces the same
artifact name every time.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.obs.trace import TraceEvent


class FlightRecorder:
    """Dumps the trace ring (plus span context) to JSONL on failure."""

    __slots__ = ("armed", "directory", "last_n", "dumps", "_seq")

    def __init__(self) -> None:
        self.armed = False
        self.directory = "."
        self.last_n = 512
        #: Paths written since the last :meth:`configure`.
        self.dumps: list[str] = []
        self._seq = 0

    def configure(self, directory: str, last_n: int = 512) -> None:
        """Arm the recorder; dumps land in ``directory``."""
        if last_n < 1:
            from repro.errors import ObservabilityError
            raise ObservabilityError(
                f"flight recorder needs last_n >= 1, got {last_n}")
        self.directory = directory
        self.last_n = last_n
        self.dumps = []
        self._seq = 0
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def trigger(self, reason: str, *, scenario: str = "",
                time: float | None = None,
                detail: str = "",
                implicated_ctx: int | None = None,
                events: Iterable[TraceEvent] | None = None,
                extra_records: Sequence[dict] = ()) -> str | None:
        """Write one dump; returns its path (None when disarmed).

        ``events`` defaults to the live tracer's ring.  When no
        ``implicated_ctx`` is given, the first un-delivered span in the
        buffer is elected -- the packet most likely to explain why the
        run went wrong.
        """
        if not self.armed:
            return None
        from repro import obs
        from repro.obs.causal import build_span_trees

        if events is None:
            buffered = obs.TRACER.events
            dropped = obs.TRACER.sink.dropped if obs.TRACER.sink else 0
        else:
            buffered = list(events)
            dropped = 0
        window = buffered[-self.last_n:]

        analysis = build_span_trees(window)
        implicated = None
        if implicated_ctx is not None:
            implicated = analysis.spans.get(implicated_ctx)
        if implicated is None:
            implicated = next((root for root in analysis.roots
                               if not root.delivered_in_tree), None)

        self._seq += 1
        stem = f"flight-{self._seq:03d}-{reason}"
        if scenario:
            stem += f"-{scenario}"
        path = os.path.join(self.directory,
                            "".join(c if c.isalnum() or c in "-_." else "_"
                                    for c in stem) + ".jsonl")
        os.makedirs(self.directory, exist_ok=True)
        header = {
            "kind": "flight-recorder",
            "schema": 1,
            "reason": reason,
            "scenario": scenario,
            "detail": detail,
            "t": time,
            "events": len(window),
            "dropped_before_window": dropped + (len(buffered) - len(window)),
            "implicated_ctx": implicated.ctx if implicated else None,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, allow_nan=False) + "\n")
            for event in window:
                record = event.to_dict() if isinstance(event, TraceEvent) \
                    else dict(event)
                handle.write(json.dumps(record, allow_nan=False) + "\n")
            for record in extra_records:
                handle.write(json.dumps(record, allow_nan=False) + "\n")
            if implicated is not None:
                handle.write(json.dumps(
                    {"kind": "span-tree", "ctx": implicated.ctx,
                     "tree": implicated.to_dict()},
                    allow_nan=False) + "\n")
        self.dumps.append(path)
        return path
