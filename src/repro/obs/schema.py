"""The trace-event vocabulary and its JSONL validator.

Every event type the instrumentation emits is declared here with its
required fields and their JSON types.  The schema is the contract
between the emitting layers (netsim, transport, quack, sidecar), the
JSONL consumers (CI's smoke job, notebook analysis), and the docs
(DESIGN.md §8 renders this table).

Event types are ``<component>.<event>``; every record carries ``t``
(virtual seconds, a number) and ``type``.  Extra fields beyond the
required set are allowed -- consumers must ignore what they do not
know -- but a missing or mistyped required field fails validation.

Run as a module to validate a trace file (CI does exactly this)::

    python -m repro.obs.schema trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Iterable

from repro.errors import ObservabilityError

#: JSON type groups used in field specs.
NUMBER = (int, float)
STRING = (str,)
BOOLEAN = (bool,)

#: Required fields per event type (beyond the universal ``t``/``type``).
EVENT_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    # -- netsim ---------------------------------------------------------
    "link.enqueue": {"link": STRING, "kind": STRING, "size": NUMBER,
                     "queue": NUMBER},
    "link.deliver": {"link": STRING, "kind": STRING, "size": NUMBER},
    "link.drop": {"link": STRING, "kind": STRING, "size": NUMBER,
                  "reason": STRING},
    "fault.activate": {"injector": STRING, "kind": STRING,
                       "effect": STRING},
    # -- transport ------------------------------------------------------
    # Lifecycle events carry an optional ``ctx`` (the trace-context id
    # stamped on the datagram, see DESIGN.md §13); it is not required so
    # traces from runs without context stamping stay valid.
    "transport.send": {"flow": STRING, "pn": NUMBER, "size": NUMBER},
    # The receiver accepted a new (non-duplicate) data packet.
    "transport.deliver": {"flow": STRING, "pn": NUMBER},
    # ``cause`` attributes the retransmission to its loss-detection path
    # (quack = sidecar decode, ack = e2e ACK evidence, pto = probe
    # timeout); ``latency`` is the virtual time from the original
    # transmission to the loss declaration (the detection latency the
    # analytics engine aggregates per cause).
    "transport.retransmit": {"flow": STRING, "pn": NUMBER, "size": NUMBER,
                             "cause": STRING, "latency": NUMBER},
    "transport.cwnd": {"flow": STRING, "cwnd": NUMBER,
                       "in_flight": NUMBER, "srtt": NUMBER},
    "transport.loss": {"flow": STRING, "pn": NUMBER, "trigger": STRING,
                       "congestion": BOOLEAN},
    "transport.pto": {"flow": STRING, "backoff": NUMBER},
    "transport.complete": {"flow": STRING, "bytes": NUMBER},
    "transport.sample": {"flow": STRING, "cwnd": NUMBER,
                         "in_flight": NUMBER, "srtt": NUMBER},
    # -- quack ----------------------------------------------------------
    "quack.encode": {"scheme": STRING, "bytes": NUMBER},
    "quack.decode": {"status": STRING, "missing": NUMBER},
    # -- sidecar --------------------------------------------------------
    # A middlebox emitter folded one datagram into its power sums.
    # ``ctx`` is the packet's trace-context id (null when the datagram
    # was sent without one, e.g. control traffic).
    "sidecar.mb_observe": {"flow": STRING, "ctx": NUMBER},
    "sidecar.quack_emit": {"role": STRING, "flow": STRING, "epoch": NUMBER},
    # A quACK decode declared one specific buffered packet missing (the
    # per-packet companion to the flow-level ``quack.decode``).
    "sidecar.gap_detect": {"flow": STRING, "ctx": NUMBER,
                           "latency": NUMBER},
    # A PEP-to-PEP local repair (Section 2.3): always quACK-caused, with
    # the same detection-latency semantics as ``transport.retransmit``.
    "sidecar.retransmit": {"flow": STRING, "cause": STRING,
                           "latency": NUMBER},
    "sidecar.wire_error": {"flow": STRING},
    "sidecar.reset": {"flow": STRING, "epoch": NUMBER, "reason": STRING},
    "sidecar.reset_retry": {"flow": STRING, "epoch": NUMBER},
    "sidecar.health": {"old": STRING, "new": STRING, "reason": STRING},
    # -- sidecar defense (plausibility gates, quarantine, resume) -------
    # ``observed``/``expected`` are the counts the gate compared; either
    # may be null when the signal kind has no numeric evidence.
    "sidecar.violation": {"flow": STRING, "kind": STRING,
                          "observed": NUMBER, "expected": NUMBER},
    "sidecar.quarantine": {"flow": STRING, "kind": STRING,
                           "signals": NUMBER},
    "sidecar.count_regression": {"flow": STRING, "observed": NUMBER,
                                 "expected": NUMBER},
    # ``role`` is emitter (announcing a restored checkpoint) or consumer
    # (judging it); ``phase`` is sent / accepted / rejected.
    "sidecar.resume": {"flow": STRING, "role": STRING, "phase": STRING,
                       "epoch": NUMBER, "count": NUMBER},
    "sidecar.checkpoint": {"flow": STRING, "epoch": NUMBER,
                           "count": NUMBER, "bytes": NUMBER},
    # Post-resume reconciliation: packets retired from the sender sums
    # because they were confirmed pre-crash (checkpoint gap), not lost.
    "sidecar.gap_reconciled": {"flow": STRING, "packets": NUMBER},
    # -- sidecar flow table (multi-tenant middlebox, DESIGN.md §16) -----
    # Admission control turned a flow away at the global high-water mark.
    "sidecar.flow_reject": {"tenant": STRING, "flow": STRING,
                            "flows": NUMBER},
    # A flow's bank was torn down; ``reason`` is budget (tenant LRU),
    # clamp (forced budget cut), shed (overload), or close (teardown).
    "sidecar.flow_evict": {"tenant": STRING, "flow": STRING,
                           "reason": STRING},
    # One shared-timer sweep coalesced due flows into batched frames.
    "sidecar.batch_emit": {"frames": NUMBER, "flows": NUMBER},
    # -- sidecar version negotiation (DESIGN.md §12) --------------------
    "sidecar.hello": {"flow": STRING, "max_version": NUMBER,
                      "attempt": NUMBER},
    "sidecar.negotiated": {"flow": STRING, "role": STRING,
                           "version": NUMBER, "features": NUMBER},
    "sidecar.version_switch": {"flow": STRING, "role": STRING,
                               "version": NUMBER, "epoch": NUMBER},
    "sidecar.stale_version": {"flow": STRING, "got": NUMBER,
                              "expected": NUMBER},
}

#: Components an end-to-end traced scenario must touch (the acceptance
#: surface the CI smoke checks).
CORE_COMPONENTS = ("link", "transport", "quack", "sidecar")


def component_of(event_type: str) -> str:
    """The component prefix of an event type (``link.drop`` -> ``link``)."""
    return event_type.split(".", 1)[0]


def validate_record(record: object) -> None:
    """Check one decoded JSONL record; raises ObservabilityError."""
    if not isinstance(record, dict):
        raise ObservabilityError(f"event must be an object, got {record!r}")
    etype = record.get("type")
    if not isinstance(etype, str):
        raise ObservabilityError(f"event has no string 'type': {record!r}")
    spec = EVENT_SCHEMA.get(etype)
    if spec is None:
        raise ObservabilityError(f"unknown event type {etype!r}")
    stamp = record.get("t")
    if not isinstance(stamp, NUMBER) or isinstance(stamp, bool):
        raise ObservabilityError(f"{etype}: 't' must be a number, "
                                 f"got {stamp!r}")
    for name, types in spec.items():
        value = record.get(name)
        if value is None and name not in record:
            raise ObservabilityError(f"{etype}: missing field {name!r}")
        # bool is an int subclass; keep booleans out of numeric fields.
        if isinstance(value, bool) and types is NUMBER:
            raise ObservabilityError(
                f"{etype}: field {name!r} must be a number, got a bool")
        if value is not None and not isinstance(value, types):
            raise ObservabilityError(
                f"{etype}: field {name!r} expected "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}")


def validate_lines(lines: Iterable[str]) -> dict[str, int]:
    """Validate JSONL lines; returns event counts per component."""
    components: dict[str, int] = {}
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"line {number}: not valid JSON: {exc}") from exc
        try:
            validate_record(record)
        except ObservabilityError as exc:
            raise ObservabilityError(f"line {number}: {exc}") from exc
        component = component_of(record["type"])
        components[component] = components.get(component, 0) + 1
    return components


def validate_file(path: str) -> dict[str, int]:
    """Validate one JSONL trace file; returns per-component counts."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_lines(handle)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate trace files given as arguments."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.schema TRACE.jsonl [...]",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            components = validate_file(path)
        except (OSError, ObservabilityError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            return 1
        total = sum(components.values())
        breakdown = ", ".join(f"{name}={count}"
                              for name, count in sorted(components.items()))
        print(f"{path}: ok ({total} events: {breakdown})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
