"""Wall-clock profiling spans feeding latency histograms.

Unlike trace events (stamped with *virtual* time), spans measure the
*real* cost of the hot paths the paper benchmarks in Tables 2-3: the
power-sum update, Newton's identities, root finding, and wire
encode/decode.  Each completed span lands in the
``obs_span_seconds{span=<name>}`` histogram of a
:class:`~repro.obs.metrics.MetricsRegistry`.

Two usage styles:

* explicit, for per-packet paths where even a context manager is too
  much overhead when profiling is off::

      _prof = PROFILER
      t0 = _prof.begin()            # 0.0 when disabled, perf_counter otherwise
      ... the hot work ...
      if t0:
          _prof.end("quack.newton", t0)

* scoped, for everything else::

      with PROFILER.span("report.section"):
          ...

The disabled fast path of :meth:`Profiler.begin` is one attribute load
and a branch, which is what the decode-overhead bench guard measures.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: Histogram every completed span lands in, labeled by span name.
SPAN_METRIC = "obs_span_seconds"


class Profiler:
    """Collects wall-clock span durations into a metrics registry."""

    __slots__ = ("enabled", "registry", "_family")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        self._family = None

    def configure(self, registry: MetricsRegistry) -> None:
        """Record spans into ``registry`` and switch profiling on."""
        self.registry = registry
        self._family = registry.histogram(
            SPAN_METRIC, help="wall-clock span latency", labels=("span",))
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def begin(self) -> float:
        """Span start marker: 0.0 when disabled (falsy; skip the end)."""
        if not self.enabled:
            return 0.0
        return perf_counter()

    def end(self, name: str, started: float) -> None:
        """Close a span opened by :meth:`begin` (no-op if disabled since)."""
        if not self.enabled or self._family is None:
            return
        self._family.labels(span=name).observe(perf_counter() - started)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Scoped convenience form for non-hot paths."""
        started = self.begin()
        try:
            yield
        finally:
            if started:
                self.end(name, started)
