"""Hierarchical wall-clock profiling: call-path spans with self/cum time.

Unlike trace events (stamped with *virtual* time), spans measure the
*real* cost of the hot paths the paper benchmarks in Tables 2-3: the
power-sum update, Newton's identities, root finding, and wire
encode/decode.  Each completed span does two things:

* it lands in the flat ``obs_span_seconds{span=<name>}`` histogram of a
  :class:`~repro.obs.metrics.MetricsRegistry`, exactly as the original
  flat profiler recorded it (telemetry aggregation and the SLO budgets
  keep reading that surface unchanged);
* it is attributed to its **call path** -- the chain of enclosing spans
  on the current thread, e.g. ``("quack.decode", "quack.newton")`` --
  accumulating per-path call counts, cumulative (wall) time, *self*
  time (cumulative minus time spent in child spans), and, when
  allocation tracking is on, net ``tracemalloc`` byte deltas.

The per-path aggregate is what :mod:`repro.obs.perf` exports as a
collapsed-stack flamegraph (``repro profile <scenario> --flame``) and a
JSON profile snapshot, and what ``repro diff`` ranks between runs.

Two usage styles:

* explicit, for per-packet paths where even a context manager is too
  much overhead when profiling is off::

      _prof = PROFILER
      t0 = _prof.begin("quack.newton")  # 0.0 when disabled (skip the end)
      ... the hot work ...
      if t0:
          _prof.end("quack.newton", t0)

* scoped, for everything else::

      with PROFILER.span("report.section"):
          ...

The disabled fast path of :meth:`Profiler.begin` is one attribute load
and a branch, which is what the decode-overhead bench guard measures;
the hierarchical bookkeeping only runs on the enabled path.

Exception safety: :meth:`Profiler.span` closes its frame from a
``finally`` block, so an exception raised inside a scoped span unwinds
the stack correctly.  An explicit ``begin`` abandoned by an exception
(its ``end`` never ran) leaves an orphan frame; the next ``end`` on
that thread discards orphans above its own frame, so one lost span
cannot corrupt attribution for the rest of the run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: Histogram every completed span lands in, labeled by span name.  This
#: is the flat (per-name) surface; per-path attribution lives in
#: :meth:`Profiler.path_stats`.
SPAN_METRIC = "obs_span_seconds"


class _Frame:
    """One open span on a thread's stack."""

    __slots__ = ("path", "child_seconds", "alloc0")

    def __init__(self, path: tuple[str, ...], alloc0: int | None) -> None:
        self.path = path
        self.child_seconds = 0.0
        self.alloc0 = alloc0


class SpanStat:
    """Aggregate for one call path: counts, cum/self time, allocations."""

    __slots__ = ("path", "calls", "cum_seconds", "self_seconds",
                 "alloc_bytes")

    def __init__(self, path: tuple[str, ...]) -> None:
        self.path = path
        self.calls = 0
        self.cum_seconds = 0.0
        self.self_seconds = 0.0
        self.alloc_bytes = 0

    @property
    def name(self) -> str:
        return self.path[-1]

    def to_dict(self) -> dict:
        return {
            "path": ";".join(self.path),
            "name": self.name,
            "calls": self.calls,
            "cum_s": self.cum_seconds,
            "self_s": self.self_seconds,
            "alloc_bytes": self.alloc_bytes,
        }


class Profiler:
    """Collects hierarchical span durations; feeds a metrics registry."""

    __slots__ = ("enabled", "registry", "allocations", "_family", "_stats",
                 "_local", "_started_tracemalloc")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        self.allocations = False
        self._family = None
        self._stats: dict[tuple[str, ...], SpanStat] = {}
        self._local = threading.local()
        self._started_tracemalloc = False

    # -- lifecycle -------------------------------------------------------

    def configure(self, registry: MetricsRegistry,
                  allocations: bool = False) -> None:
        """Record spans into ``registry`` and switch profiling on.

        ``allocations=True`` additionally attributes net ``tracemalloc``
        byte deltas to each call path (starting the tracer if it is not
        already running; :meth:`disable` stops it again iff this call
        started it).  Allocation tracking is expensive -- leave it off
        for timing-sensitive runs.
        """
        self.registry = registry
        self._family = registry.histogram(
            SPAN_METRIC, help="wall-clock span latency", labels=("span",))
        self.allocations = allocations
        if allocations:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        self.allocations = False

    def reset(self) -> None:
        """Drop accumulated path stats and any open frames."""
        self._stats = {}
        self._local.stack = []

    # -- hot path --------------------------------------------------------

    def _stack(self) -> list[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str = "") -> float:
        """Span start marker: 0.0 when disabled (falsy; skip the end).

        ``name`` must match the ``name`` later passed to :meth:`end`;
        it keys the frame this call pushes onto the thread's span stack.
        """
        if not self.enabled:
            return 0.0
        stack = self._stack()
        parent = stack[-1].path if stack else ()
        alloc0 = None
        if self.allocations:
            import tracemalloc

            alloc0 = tracemalloc.get_traced_memory()[0]
        stack.append(_Frame(parent + (name,), alloc0))
        return perf_counter()

    def end(self, name: str, started: float) -> None:
        """Close a span opened by :meth:`begin` (no-op if disabled since)."""
        if not self.enabled or self._family is None:
            return
        elapsed = perf_counter() - started
        stack = self._stack()
        frame = None
        while stack:
            candidate = stack.pop()
            if candidate.path[-1] == name:
                frame = candidate
                break
            # An orphan: its begin ran but an exception skipped its end.
            # Discard it; its time is folded into this span's elapsed.
        if frame is None:
            # end without a live begin (e.g. begin ran while disabled):
            # record flat at the root so the sample is not lost.
            path = (name,)
            self_seconds = elapsed
        else:
            path = frame.path
            self_seconds = elapsed - frame.child_seconds
            if self_seconds < 0.0:
                self_seconds = 0.0
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = SpanStat(path)
        stat.calls += 1
        stat.cum_seconds += elapsed
        stat.self_seconds += self_seconds
        if frame is not None and frame.alloc0 is not None:
            import tracemalloc

            stat.alloc_bytes += tracemalloc.get_traced_memory()[0] \
                - frame.alloc0
        if stack:
            stack[-1].child_seconds += elapsed
        self._family.labels(span=name).observe(elapsed)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Scoped convenience form for non-hot paths (exception-safe)."""
        started = self.begin(name)
        try:
            yield
        finally:
            if started:
                self.end(name, started)

    # -- read side -------------------------------------------------------

    def path_stats(self) -> dict[tuple[str, ...], SpanStat]:
        """The accumulated per-call-path aggregates (live references)."""
        return self._stats

    @property
    def depth(self) -> int:
        """Open frames on the calling thread (0 when balanced)."""
        return len(getattr(self._local, "stack", ()))
