"""Cross-process telemetry aggregation: mergeable metric snapshots.

A sweep farms cells out to worker processes; each worker's
:class:`~repro.obs.metrics.MetricsRegistry` dies with it unless its
state comes back in a form the parent can *merge*.  A plain
``registry.snapshot()`` collapses histograms to summary statistics,
which cannot be combined (a mean of means is not the mean).  This
module defines the mergeable form:

* counters merge by **sum**;
* gauges merge by **max** (the only order-independent choice that does
  not invent values -- a merged gauge answers "what was the highest
  level any process saw");
* histograms merge by **bucket-wise count addition**, which is exact as
  long as every process used the same log-scaled bounds (enforced; the
  registry already rejects per-family bucket drift at registration).

Quantiles over a merged histogram are exact-to-bucket: the reported
p50/p90/p99/p999 is the upper bound of the bucket the rank lands in,
never an interpolation (``Histogram.quantile`` semantics).

Determinism: every series here is driven by virtual-time simulation
events, so a merged snapshot is a pure function of the cell set --
byte-identical no matter how many workers produced it or in which order
they finished (merging is commutative and series are emitted sorted).
Zero-valued series are dropped so a parent registry that happens to
hold pre-registered (but untouched) families merges identically to a
fresh worker registry.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry, json_safe

#: Version stamp on mergeable snapshots (artifact compatibility).
TELEMETRY_SCHEMA = 1

#: The quantiles a merged histogram is summarized at.
QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999"))


def mergeable_snapshot(registry: MetricsRegistry) -> dict:
    """Freeze a registry into the mergeable wire form.

    ``{"kind": "telemetry", "schema": 1, "families": {name: {...}}}``
    with each family carrying its kind, label names, and a sorted list
    of series (``value`` for counters/gauges, ``hist`` -- the full
    bucket state -- for histograms).
    """
    families: dict[str, dict] = {}
    for name, family in sorted(registry._families.items()):
        series = []
        for key, child in sorted(family._children.items()):
            labels = dict(zip(family.labelnames, key))
            if family.kind == "histogram":
                if child.count == 0:
                    continue
                series.append({"labels": labels,
                               "hist": child.to_mergeable()})
            else:
                value = child.snapshot()
                if value == 0.0:
                    continue
                series.append({"labels": labels,
                               "value": json_safe(value)})
        if series:
            families[name] = {"kind": family.kind,
                              "labelnames": list(family.labelnames),
                              "series": series}
    return {"kind": "telemetry", "schema": TELEMETRY_SCHEMA,
            "families": families}


def _series_key(entry: dict) -> tuple:
    return tuple(sorted((str(k), str(v))
                        for k, v in entry.get("labels", {}).items()))


def merge_hists(target: dict, extra: dict) -> dict:
    """Bucket-wise addition of two mergeable histogram states."""
    if list(target["buckets"]) != list(extra["buckets"]):
        raise ObservabilityError(
            f"cannot merge histograms with different buckets: "
            f"{target['buckets']} vs {extra['buckets']}")
    merged = {
        "buckets": list(target["buckets"]),
        "counts": [a + b for a, b in zip(target["counts"],
                                         extra["counts"])],
        "sum": (target["sum"] or 0.0) + (extra["sum"] or 0.0),
        "count": target["count"] + extra["count"],
    }
    mins = [h["min"] for h in (target, extra) if h.get("min") is not None]
    maxs = [h["max"] for h in (target, extra) if h.get("max") is not None]
    merged["min"] = min(mins) if mins else None
    merged["max"] = max(maxs) if maxs else None
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge any number of mergeable snapshots into one.

    Commutative and associative over the snapshot set; an empty input
    merges to an empty snapshot.
    """
    families: dict[str, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        if snapshot.get("kind") != "telemetry":
            raise ObservabilityError(
                f"not a telemetry snapshot: kind={snapshot.get('kind')!r}")
        schema = snapshot.get("schema")
        if schema != TELEMETRY_SCHEMA:
            raise ObservabilityError(
                f"telemetry schema {schema!r} not supported "
                f"(this build reads {TELEMETRY_SCHEMA})")
        for name, family in snapshot.get("families", {}).items():
            target = families.get(name)
            if target is None:
                families[name] = {
                    "kind": family["kind"],
                    "labelnames": list(family["labelnames"]),
                    "series": {_series_key(entry): _copy_series(entry)
                               for entry in family["series"]},
                }
                continue
            if target["kind"] != family["kind"]:
                raise ObservabilityError(
                    f"metric {name!r} is a {target['kind']} in one "
                    f"snapshot and a {family['kind']} in another")
            for entry in family["series"]:
                key = _series_key(entry)
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = _copy_series(entry)
                elif family["kind"] == "histogram":
                    existing["hist"] = merge_hists(existing["hist"],
                                                   entry["hist"])
                elif family["kind"] == "gauge":
                    existing["value"] = max(existing["value"],
                                            entry["value"])
                else:
                    existing["value"] = existing["value"] + entry["value"]
    merged_families = {
        name: {"kind": family["kind"],
               "labelnames": family["labelnames"],
               "series": [family["series"][key]
                          for key in sorted(family["series"])]}
        for name, family in sorted(families.items())
    }
    return {"kind": "telemetry", "schema": TELEMETRY_SCHEMA,
            "families": merged_families}


def _copy_series(entry: dict) -> dict:
    copied = {"labels": dict(entry.get("labels", {}))}
    if "hist" in entry:
        copied["hist"] = dict(entry["hist"],
                              buckets=list(entry["hist"]["buckets"]),
                              counts=list(entry["hist"]["counts"]))
    else:
        copied["value"] = entry["value"]
    return copied


def hist_quantile(hist: dict, q: float) -> float:
    """Exact-to-bucket quantile of a mergeable histogram state."""
    restored = Histogram(buckets=hist["buckets"])
    restored.counts = list(hist["counts"])
    restored.count = hist["count"]
    restored.sum = hist.get("sum") or 0.0
    maximum = hist.get("max")
    restored.maximum = maximum if maximum is not None else hist["buckets"][-1]
    minimum = hist.get("min")
    restored.minimum = minimum if minimum is not None else 0.0
    return restored.quantile(q)


def summarize_hist(hist: dict) -> dict:
    """Collapse a mergeable histogram to summary statistics."""
    count = hist["count"]
    total = hist.get("sum") or 0.0
    summary = {
        "count": count,
        "sum": json_safe(total),
        "mean": json_safe(total / count if count else 0.0),
        "min": json_safe(hist.get("min")),
        "max": json_safe(hist.get("max")),
    }
    for q, label in QUANTILES:
        summary[label] = json_safe(hist_quantile(hist, q))
    return summary


def summarize_snapshot(snapshot: dict) -> dict:
    """A merged snapshot with histograms collapsed to summaries.

    This is the human/bench-store surface; the mergeable form stays the
    artifact of record.
    """
    out: dict[str, list] = {}
    for name, family in snapshot.get("families", {}).items():
        series = []
        for entry in family["series"]:
            if "hist" in entry:
                series.append({"labels": entry["labels"],
                               **summarize_hist(entry["hist"])})
            else:
                series.append({"labels": entry["labels"],
                               "value": entry["value"]})
        out[name] = series
    return out


def select_series(snapshot: dict, metric: str,
                  labels: dict | None = None) -> list[dict]:
    """Series of ``metric`` whose labels are a superset of ``labels``."""
    family = snapshot.get("families", {}).get(metric)
    if family is None:
        return []
    wanted = {str(k): str(v) for k, v in (labels or {}).items()}
    selected = []
    for entry in family["series"]:
        have = {str(k): str(v) for k, v in entry.get("labels", {}).items()}
        if all(have.get(k) == v for k, v in wanted.items()):
            selected.append(entry)
    return selected


def combine_series(entries: list[dict], kind: str) -> dict | float | None:
    """Fold matching series into one value (sum) or histogram (merge)."""
    if not entries:
        return None
    if kind == "histogram":
        merged = None
        for entry in entries:
            merged = entry["hist"] if merged is None \
                else merge_hists(merged, entry["hist"])
        return merged
    if kind == "gauge":
        return max(entry["value"] for entry in entries)
    return sum(entry["value"] for entry in entries)
