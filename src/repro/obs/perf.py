"""Performance observability: profile snapshots, flamegraphs, and diffs.

This module is the export/analysis surface over the hierarchical
profiler (:mod:`repro.obs.profile`) and its sibling snapshots:

* :func:`profile_snapshot` freezes the global profiler's per-call-path
  aggregates into a schema-versioned JSON document (stamped with the
  git commit, like bench snapshots);
* :func:`render_folded` turns a snapshot into collapsed-stack
  ("folded") text -- one ``parent;child weight`` line per call path,
  weighted by **self time in microseconds** -- the input format of every
  flamegraph renderer (``flamegraph.pl``, speedscope, inferno);
* :func:`diff_snapshots` is the engine behind ``repro diff <a> <b>``:
  it flattens two snapshots of the same kind (bench / profile /
  telemetry / sweep aggregate) into scalar series, ranks the deltas by
  magnitude of relative change (deterministically -- ties break on
  name), and reports which entries moved past a ratio threshold.

Diff semantics (documented in DESIGN.md §14): the diff is a *symmetric
change detector*, not a regression gate -- a 3x improvement ranks as
high as a 3x regression, because both demand an explanation when a
bench gate trips.  Entries present on only one side rank first (their
relative change is unbounded) but never trip the threshold on their
own; entries where both sides are below ``min_abs`` are noise-floored
out.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ObservabilityError

#: Version stamp on profile snapshot documents.
PROFILE_SCHEMA = 1

#: Default ratio past which a diff entry counts as "moved" (matches the
#: bench store's generous wall-clock threshold).
DEFAULT_DIFF_THRESHOLD = 2.0

#: Ignore entries where both sides sit below this absolute value: a
#: span that went from 3ns to 9ns is noise, not a 3x movement.
DEFAULT_MIN_ABS = 1e-9


# -- profile snapshots --------------------------------------------------------

def profile_snapshot(profiler=None, *, scenario: str = "",
                     seed: int | None = None,
                     git_rev: str | None = "__detect__",
                     flows: Mapping | None = None) -> dict:
    """Freeze a profiler's per-path aggregates into a JSON document.

    ``profiler`` defaults to the global ``repro.obs.PROFILER``.  The
    document carries one record per call path, sorted by path, so two
    snapshots of the same run are byte-identical.
    """
    if profiler is None:
        from repro import obs

        profiler = obs.PROFILER
    if git_rev == "__detect__":
        from repro.bench.store import git_revision

        git_rev = git_revision()
    spans = [stat.to_dict()
             for _path, stat in sorted(profiler.path_stats().items())]
    doc: dict = {
        "kind": "profile",
        "schema": PROFILE_SCHEMA,
        "scenario": scenario,
        "git_rev": git_rev,
        "spans": spans,
    }
    if seed is not None:
        doc["seed"] = seed
    if flows:
        doc["flows"] = dict(flows)
    return doc


def render_folded(snapshot: Mapping) -> str:
    """Collapsed-stack text: ``a;b;c <self-time-microseconds>`` lines.

    Weights are integer self-time microseconds (flamegraph renderers
    want integers); zero-weight paths are omitted.  Lines are sorted,
    so the output is deterministic for a deterministic profile.
    """
    lines = []
    for span in snapshot.get("spans", ()):
        weight = int(round(float(span.get("self_s", 0.0)) * 1e6))
        if weight > 0:
            lines.append(f"{span['path']} {weight}")
    return "\n".join(sorted(lines))


def format_profile(snapshot: Mapping, top: int = 20) -> str:
    """Terminal table of the heaviest call paths, by self time."""
    spans = sorted(snapshot.get("spans", ()),
                   key=lambda s: (-float(s.get("self_s", 0.0)), s["path"]))
    header = (f"profile: {snapshot.get('scenario') or '?'}"
              + (f" (commit {snapshot['git_rev']})"
                 if snapshot.get("git_rev") else ""))
    lines = [header,
             f"{'self ms':>10s} {'cum ms':>10s} {'calls':>8s}"
             f" {'alloc':>10s}  call path"]
    for span in spans[:top]:
        alloc = span.get("alloc_bytes") or 0
        alloc_text = f"{alloc:+,d}B" if alloc else "-"
        lines.append(
            f"{span['self_s'] * 1e3:>10.3f} {span['cum_s'] * 1e3:>10.3f} "
            f"{span['calls']:>8d} {alloc_text:>10s}  {span['path']}")
    if len(spans) > top:
        lines.append(f"... {len(spans) - top} more path(s)")
    if not spans:
        lines.append("(no spans recorded)")
    flows = snapshot.get("flows", {}).get("flows") \
        if isinstance(snapshot.get("flows"), Mapping) else None
    if flows:
        lines.append("")
        lines.append(f"{'flow':<24s} {'observed':>9s} {'frames':>7s} "
                     f"{'emitted B':>10s} {'bank B':>7s}")
        for flow in sorted(flows):
            acct = flows[flow]
            lines.append(f"{flow:<24s} {acct['observed']:>9d} "
                         f"{acct['frames_emitted']:>7d} "
                         f"{acct['bytes_emitted']:>10d} "
                         f"{acct['bank_bytes']:>7d}")
    return "\n".join(lines)


def write_profile(snapshot: Mapping, path: str) -> str:
    """Persist a profile snapshot as JSON; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_folded(snapshot: Mapping, path: str) -> str:
    """Persist the collapsed-stack form; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        text = render_folded(snapshot)
        handle.write(text + ("\n" if text else ""))
    return path


def load_profile(path: str) -> dict:
    """Read one profile snapshot file back."""
    doc = _load_json(path)
    if doc.get("kind") != "profile":
        raise ObservabilityError(f"{path}: not a profile snapshot "
                                 f"(kind={doc.get('kind')!r})")
    schema = doc.get("schema")
    if schema != PROFILE_SCHEMA:
        raise ObservabilityError(
            f"{path}: profile schema {schema!r} not supported "
            f"(this build reads {PROFILE_SCHEMA})")
    return doc


# -- the diff engine ----------------------------------------------------------

@dataclass(frozen=True)
class DiffEntry:
    """One series' movement between two snapshots."""

    name: str
    baseline: float | None
    current: float | None
    #: ``current / baseline`` (None when undefined: a zero or missing side).
    ratio: float | None
    #: ``abs(log(ratio))`` -- the ranking key; ``inf`` for one-sided entries.
    severity: float
    #: True when the movement crossed the ratio threshold.
    exceeded: bool
    note: str = ""


@dataclass(frozen=True)
class DiffReport:
    """The ranked outcome of diffing two snapshots."""

    kind: str
    baseline_label: str
    current_label: str
    baseline_rev: str | None
    current_rev: str | None
    entries: tuple[DiffEntry, ...]

    @property
    def exceeded(self) -> tuple[DiffEntry, ...]:
        return tuple(entry for entry in self.entries if entry.exceeded)

    @property
    def ok(self) -> bool:
        return not self.exceeded


def _load_json(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ObservabilityError(f"{path} must hold a JSON object")
    return doc


def classify_snapshot(doc: Mapping) -> str:
    """Which snapshot family a loaded JSON document belongs to.

    Recognizes ``profile`` (this module), ``telemetry``
    (:mod:`repro.obs.aggregate`), ``sweep-aggregate`` artifacts carrying
    a telemetry block, and bench-store ``BENCH_<area>.json`` files.
    """
    kind = doc.get("kind")
    if kind == "profile":
        return "profile"
    if kind == "telemetry":
        return "telemetry"
    if kind == "sweep-aggregate":
        return "telemetry"
    if "area" in doc and isinstance(doc.get("metrics"), Mapping):
        return "bench"
    raise ObservabilityError(
        "unrecognized snapshot: expected a profile, telemetry, sweep "
        "aggregate, or BENCH_<area>.json document")


def flatten_snapshot(doc: Mapping) -> tuple[str, dict[str, float],
                                            str | None]:
    """``(kind, {series name: value}, git_rev)`` for any snapshot kind.

    * bench snapshots flatten to metric means;
    * profile snapshots flatten each call path to its **self time**
      (seconds) plus a ``calls:`` series per path;
    * telemetry snapshots (and sweep aggregates carrying one) flatten
      through the bench store's telemetry flattener, so ``repro diff``
      and the bench store name series identically.
    """
    kind = classify_snapshot(doc)
    if kind == "bench":
        flat = {}
        for name, record in doc["metrics"].items():
            if isinstance(record, Mapping) and "mean" in record:
                try:
                    flat[str(name)] = float(record["mean"])
                except (TypeError, ValueError):
                    continue
        rev = doc.get("git_rev")
        return kind, flat, rev if isinstance(rev, str) else None
    if kind == "profile":
        flat = {}
        for span in doc.get("spans", ()):
            path = str(span.get("path", ""))
            if not path:
                continue
            flat[path] = float(span.get("self_s", 0.0))
            flat[f"calls:{path}"] = float(span.get("calls", 0))
        rev = doc.get("git_rev")
        return kind, flat, rev if isinstance(rev, str) else None
    # telemetry (possibly wrapped in a sweep aggregate)
    telemetry = doc
    if doc.get("kind") == "sweep-aggregate":
        telemetry = doc.get("telemetry") or {}
        if not telemetry:
            raise ObservabilityError(
                "sweep aggregate carries no telemetry block "
                "(re-run the sweep with --telemetry)")
    from repro.bench.store import _flatten_telemetry
    from repro.obs.aggregate import merge_snapshots

    return "telemetry", _flatten_telemetry(merge_snapshots([telemetry])), \
        None


def diff_flat(baseline: Mapping[str, float], current: Mapping[str, float],
              threshold: float = DEFAULT_DIFF_THRESHOLD,
              min_abs: float = DEFAULT_MIN_ABS) -> list[DiffEntry]:
    """Rank every series' movement; deterministic for deterministic input.

    Sorted by severity (``abs(log(ratio))``) descending, ties broken by
    name, one-sided entries first.  ``exceeded`` is set when the ratio
    crossed ``threshold`` in either direction; one-sided and
    noise-floored entries never exceed.
    """
    if threshold <= 1.0:
        raise ObservabilityError(
            f"diff threshold must be > 1.0 (a ratio), got {threshold}")
    entries: list[DiffEntry] = []
    for name in set(baseline) | set(current):
        b = baseline.get(name)
        c = current.get(name)
        if b is None:
            entries.append(DiffEntry(name=name, baseline=None, current=c,
                                     ratio=None, severity=math.inf,
                                     exceeded=False, note="only in current"))
            continue
        if c is None:
            entries.append(DiffEntry(name=name, baseline=b, current=None,
                                     ratio=None, severity=math.inf,
                                     exceeded=False,
                                     note="only in baseline"))
            continue
        if abs(b) < min_abs and abs(c) < min_abs:
            continue  # noise floor: both sides negligible
        if b == 0.0 or c == 0.0 or (b < 0) != (c < 0):
            entries.append(DiffEntry(
                name=name, baseline=b, current=c, ratio=None,
                severity=math.inf, exceeded=True,
                note="moved across zero"))
            continue
        ratio = c / b
        severity = abs(math.log(abs(ratio)))
        exceeded = abs(ratio) > threshold or abs(ratio) < 1.0 / threshold
        entries.append(DiffEntry(name=name, baseline=b, current=c,
                                 ratio=ratio, severity=severity,
                                 exceeded=exceeded))
    entries.sort(key=lambda e: (-e.severity, e.name))
    return entries


def diff_snapshots(baseline_doc: Mapping, current_doc: Mapping,
                   threshold: float = DEFAULT_DIFF_THRESHOLD,
                   min_abs: float = DEFAULT_MIN_ABS,
                   baseline_label: str = "baseline",
                   current_label: str = "current") -> DiffReport:
    """Diff two loaded snapshots of the same kind."""
    kind_b = classify_snapshot(baseline_doc)
    kind_c = classify_snapshot(current_doc)
    if kind_b != kind_c:
        raise ObservabilityError(
            f"cannot diff a {kind_b} snapshot against a {kind_c} snapshot")
    _, flat_b, rev_b = flatten_snapshot(baseline_doc)
    _, flat_c, rev_c = flatten_snapshot(current_doc)
    entries = diff_flat(flat_b, flat_c, threshold=threshold,
                        min_abs=min_abs)
    return DiffReport(kind=kind_b, baseline_label=baseline_label,
                      current_label=current_label, baseline_rev=rev_b,
                      current_rev=rev_c, entries=tuple(entries))


def diff_files(baseline_path: str, current_path: str,
               threshold: float = DEFAULT_DIFF_THRESHOLD,
               min_abs: float = DEFAULT_MIN_ABS) -> DiffReport:
    """Diff two snapshot files (the ``repro diff`` entry point)."""
    return diff_snapshots(_load_json(baseline_path),
                          _load_json(current_path),
                          threshold=threshold, min_abs=min_abs,
                          baseline_label=baseline_path,
                          current_label=current_path)


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,d}"
    return f"{value:.6g}"


def format_diff(report: DiffReport,
                threshold: float = DEFAULT_DIFF_THRESHOLD,
                top: int = 20) -> str:
    """Human-readable ranked diff for the terminal."""
    def side(label: str, rev: str | None) -> str:
        return f"{label} (commit {rev})" if rev else label

    lines = [f"diff [{report.kind}]: "
             f"{side(report.baseline_label, report.baseline_rev)} -> "
             f"{side(report.current_label, report.current_rev)}"]
    shown = report.entries[:top]
    for entry in shown:
        ratio = f"{entry.ratio:.2f}x" if entry.ratio is not None else "-"
        marker = "MOVED" if entry.exceeded else "ok"
        note = f"  [{entry.note}]" if entry.note else ""
        lines.append(f"  {marker:<5s} {entry.name:<44s} "
                     f"{_fmt_value(entry.baseline):>14s} -> "
                     f"{_fmt_value(entry.current):>14s} ({ratio}){note}")
    hidden = len(report.entries) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} more series")
    if not report.entries:
        lines.append("  (no comparable series)")
    lines.append("")
    moved = len(report.exceeded)
    if moved:
        lines.append(f"FAIL: {moved} series moved past the "
                     f"{threshold:g}x threshold")
    else:
        lines.append(f"OK: no series moved past the {threshold:g}x "
                     f"threshold")
    return "\n".join(lines)


# -- bench-gate span hints ----------------------------------------------------

def span_regression_hints(current_dir: str, baseline_dir: str,
                          areas: Sequence[str], top: int = 5,
                          min_abs: float = 1e-5) -> str:
    """Top span-time movements for areas whose bench gate failed.

    Reads the ``PROFILE_<area>.json`` written alongside each bench
    snapshot (both sides must have one; areas missing either side are
    skipped silently -- the hint is best-effort).  Only self-time paths
    are ranked (``calls:`` series are informational noise here).
    """
    from repro.bench.store import profile_path

    lines: list[str] = []
    for area in areas:
        current_file = profile_path(current_dir, area)
        baseline_file = profile_path(baseline_dir, area)
        if not (os.path.exists(current_file)
                and os.path.exists(baseline_file)):
            continue
        try:
            report = diff_files(baseline_file, current_file,
                                threshold=DEFAULT_DIFF_THRESHOLD,
                                min_abs=min_abs)
        except ObservabilityError:
            continue
        ranked = [entry for entry in report.entries
                  if not entry.name.startswith("calls:")
                  and entry.ratio is not None][:top]
        if not ranked:
            continue
        lines.append(f"top span movements for area {area} "
                     f"(self time, s):")
        for entry in ranked:
            lines.append(f"  {entry.name:<52s} "
                         f"{_fmt_value(entry.baseline):>12s} -> "
                         f"{_fmt_value(entry.current):>12s} "
                         f"({entry.ratio:.2f}x)")
    return "\n".join(lines)
