"""Causal packet-lifecycle spans assembled from trace events.

Flat event streams answer "how many" questions; the paper's value claim
is about *where in the path* a loss was noticed and repaired, which is a
per-packet question.  This module follows one datagram's trace-context
id (``Packet.trace_ctx``, stamped by the sender when tracing is on)
through every layer that saw it and assembles a **span tree**::

    sent -> mb_observed -> quack_emitted -> gap_detected
         -> retransmitted -> delivered / lost

Each span is one datagram; a transport-level retransmission is a *new*
datagram whose ``transport.retransmit`` event carries ``parent_ctx``, so
it becomes a child span of the packet it replaces.  A sidecar local
repair (Fig. 4) re-emits the *same* datagram, so the span keeps its
context id and simply gains a ``retransmitted`` stage.

Stage sources:

====================  =============================================
stage                 trace event
====================  =============================================
``sent``              ``transport.send`` / ``transport.retransmit``
``mb_observed``       ``sidecar.mb_observe``
``quack_emitted``     the ``sidecar.quack_emit`` that *caused* the
                      span's ``gap_detected`` (last emit at or before
                      it); for never-lost packets, the first emit
                      covering the ``mb_observed``
``gap_detected``      ``transport.loss`` (ctx) or ``sidecar.gap_detect``
``retransmitted``     ``sidecar.retransmit`` (same ctx, local repair)
                      or a child ``transport.retransmit`` (parent_ctx)
``delivered``         ``transport.deliver``
``lost``              ``link.drop`` carrying the ctx
====================  =============================================

``quack_emitted`` is associated analytically (the emit event is
flow-level; carrying per-packet context on every quACK would add wire
cost for nothing), everything else is exact by context id.  Note that
for a repaired packet the quACK precedes the middlebox observation: the
datagram that was lost upstream of the emitter is only *observed* after
the repair re-sends it, while the gap-revealing quACK was emitted from
the packets around it.

All latencies are in virtual seconds, so the same trace always yields
the same spans regardless of host or worker count.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.metrics import json_safe
from repro.obs.trace import TraceEvent

#: Canonical stage vocabulary (display/tie-break order).
STAGE_ORDER = ("sent", "mb_observed", "quack_emitted", "gap_detected",
               "retransmitted", "delivered", "lost")

#: Monotonicity is judged on the causal repair chain ``sent ->
#: gap_detected -> retransmitted -> delivered`` plus a per-association
#: check that each quACK preceded the gap detection credited to it.
#: ``mb_observed`` sits outside the chain: a locally repaired packet is
#: observed by the emitter only *after* the repair.

#: Repair-attribution classes a root span lands in.
ATTRIBUTIONS = ("clean", "sidecar", "e2e-ack", "e2e-pto", "spurious",
                "lost")

#: Retransmit ``cause`` tag -> attribution class.
_CAUSE_ATTRIBUTION = {"quack": "sidecar", "ack": "e2e-ack", "pto": "e2e-pto"}

#: The full repair lifecycle (the acceptance chain): every one of these
#: stages present somewhere in the tree, in non-decreasing time order.
REPAIR_LIFECYCLE = ("sent", "mb_observed", "quack_emitted", "gap_detected",
                    "retransmitted", "delivered")


@dataclass
class SpanStage:
    """One lifecycle stage of one datagram."""

    stage: str
    time: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {"stage": self.stage, "t": json_safe(self.time)}
        for key, value in self.detail.items():
            record[key] = json_safe(value)
        return record


@dataclass
class PacketSpan:
    """The lifecycle of one datagram (identified by its context id)."""

    ctx: int
    flow: str
    stages: list[SpanStage] = field(default_factory=list)
    children: list["PacketSpan"] = field(default_factory=list)
    parent_ctx: int | None = None

    # -- stage access -----------------------------------------------------

    def add_stage(self, stage: str, time: float, **detail: object) -> None:
        self.stages.append(SpanStage(stage, time, dict(detail)))

    def stage_times(self) -> dict[str, float]:
        """First occurrence time per stage name."""
        times: dict[str, float] = {}
        for entry in self.stages:
            times.setdefault(entry.stage, entry.time)
        return times

    def has_stage(self, stage: str) -> bool:
        return any(entry.stage == stage for entry in self.stages)

    @property
    def delivered(self) -> bool:
        return self.has_stage("delivered")

    @property
    def delivered_in_tree(self) -> bool:
        """True if this datagram or any retransmission of it arrived."""
        return self.delivered or any(child.delivered_in_tree
                                     for child in self.children)

    def tree_stages(self) -> set[str]:
        """Stage names present anywhere in this span tree."""
        present = {entry.stage for entry in self.stages}
        for child in self.children:
            present |= child.tree_stages()
        return present

    # -- derived properties ----------------------------------------------

    @property
    def monotonic(self) -> bool:
        """Stage times non-decreasing along the causal repair chain
        (per span and down into every retransmission child), with the
        off-chain stages sanity-checked against the send time."""
        times = self.stage_times()
        previous = None
        for stage in ("sent", "gap_detected", "retransmitted",
                      "delivered"):
            if stage not in times:
                continue
            if previous is not None and times[stage] < previous - 1e-12:
                return False
            previous = times[stage]
        sent = times.get("sent")
        if sent is not None:
            for stage in ("mb_observed", "lost", "quack_emitted"):
                if stage in times and times[stage] < sent - 1e-12:
                    return False
        # The quACK must precede the gap detection it is credited with
        # (never-lost spans carry no ``gap`` detail: their covering
        # quACK legitimately emits after delivery).
        for entry in self.stages:
            if entry.stage != "quack_emitted":
                continue
            gap = entry.detail.get("gap")
            if gap is not None and entry.time > gap + 1e-12:
                return False
        for child in self.children:
            child_sent = child.stage_times().get("sent")
            if (sent is not None and child_sent is not None
                    and child_sent < sent - 1e-12):
                return False
            if not child.monotonic:
                return False
        return True

    @property
    def lifecycle_complete(self) -> bool:
        """The full repair chain is visible in this tree (acceptance
        surface): sent, observed by a middlebox, covered by a quACK,
        gap-detected, retransmitted, and finally delivered."""
        return (all(stage in self.tree_stages()
                    for stage in REPAIR_LIFECYCLE)
                and self.monotonic)

    @property
    def attribution(self) -> str:
        """Who repaired (or failed to repair) this datagram."""
        if not self.delivered_in_tree:
            return "lost"
        local = next((entry for entry in self.stages
                      if entry.stage == "retransmitted"
                      and entry.detail.get("local")), None)
        if local is not None:
            return "sidecar"
        for child in self.children:
            cause = next((entry.detail.get("cause")
                          for entry in child.stages
                          if entry.stage == "sent"
                          and "cause" in entry.detail), None)
            attributed = _CAUSE_ATTRIBUTION.get(str(cause))
            if attributed is not None:
                return attributed
        if self.has_stage("gap_detected"):
            # Declared lost but the original still arrived, and no
            # retransmission is visible: a spurious declaration.
            return "spurious"
        return "clean"

    def edge_latencies(self) -> dict[str, float]:
        """Virtual-time deltas between chronologically adjacent stages.

        Keyed ``"<from>-><to>"`` using each stage's first occurrence,
        ordered by time (so a local repair reads
        ``quack_emitted->gap_detected``, then ``gap_detected->
        retransmitted``, then ``retransmitted->mb_observed``).
        """
        times = self.stage_times()
        present = sorted(times, key=lambda stage: (times[stage],
                                                   STAGE_ORDER.index(stage)))
        return {f"{a}->{b}": times[b] - times[a]
                for a, b in zip(present, present[1:])}

    def to_dict(self) -> dict:
        return {
            "ctx": self.ctx,
            "flow": self.flow,
            "parent_ctx": self.parent_ctx,
            "attribution": self.attribution,
            "monotonic": self.monotonic,
            "stages": [entry.to_dict() for entry in self.stages],
            "edges": {key: json_safe(value)
                      for key, value in self.edge_latencies().items()},
            "children": [child.to_dict() for child in self.children],
        }


@dataclass
class CausalAnalysis:
    """All span trees of one trace, plus summary counts."""

    spans: dict[int, PacketSpan]
    roots: list[PacketSpan]

    def attribution_counts(self) -> dict[str, int]:
        counts = {name: 0 for name in ATTRIBUTIONS}
        for root in self.roots:
            counts[root.attribution] += 1
        return {name: count for name, count in counts.items() if count}

    def complete_repairs(self) -> list[PacketSpan]:
        """Roots whose tree shows the full repair lifecycle."""
        return [root for root in self.roots if root.lifecycle_complete]

    def repaired(self) -> list[PacketSpan]:
        return [root for root in self.roots
                if root.attribution in ("sidecar", "e2e-ack", "e2e-pto")]


def _as_record(event: "TraceEvent | Mapping") -> tuple[float, str, Mapping]:
    if isinstance(event, TraceEvent):
        return float(event.time), event.type, event.fields
    stamp = event.get("t", 0.0)
    return (float(stamp) if stamp is not None else 0.0,
            str(event.get("type", "")), event)


def build_span_trees(events: Iterable["TraceEvent | Mapping"],
                     ) -> CausalAnalysis:
    """Assemble per-packet span trees from a trace.

    Accepts in-memory :class:`~repro.obs.trace.TraceEvent` objects or
    decoded JSONL records; events without a context id contribute
    nothing (control traffic, runs without stamping).
    """
    records = sorted((_as_record(event) for event in events),
                     key=lambda item: item[0])
    spans: dict[int, PacketSpan] = {}
    pending_children: list[tuple[int, PacketSpan]] = []
    quack_emits: dict[str, list[float]] = {}

    def span_for(ctx: object, flow: object) -> PacketSpan | None:
        if not isinstance(ctx, int) or isinstance(ctx, bool):
            return None
        span = spans.get(ctx)
        if span is None:
            span = PacketSpan(ctx=ctx, flow=str(flow or "?"))
            spans[ctx] = span
        return span

    for time, etype, fields in records:
        ctx = fields.get("ctx")
        if etype == "transport.send":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("sent", time, pn=fields.get("pn"))
        elif etype == "transport.retransmit":
            span = span_for(ctx, fields.get("flow"))
            if span is None:
                continue
            span.add_stage("sent", time, pn=fields.get("pn"),
                           cause=fields.get("cause"),
                           latency=fields.get("latency"))
            parent_ctx = fields.get("parent_ctx")
            if isinstance(parent_ctx, int) and not isinstance(parent_ctx,
                                                              bool):
                span.parent_ctx = parent_ctx
                pending_children.append((parent_ctx, span))
        elif etype == "sidecar.mb_observe":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("mb_observed", time)
        elif etype == "sidecar.quack_emit":
            quack_emits.setdefault(str(fields.get("flow", "?")),
                                   []).append(time)
        elif etype == "transport.loss":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("gap_detected", time,
                               trigger=fields.get("trigger"))
        elif etype == "sidecar.gap_detect":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("gap_detected", time,
                               latency=fields.get("latency"))
        elif etype == "sidecar.retransmit":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("retransmitted", time,
                               cause=fields.get("cause"), local=True)
        elif etype == "transport.deliver":
            span = span_for(ctx, fields.get("flow"))
            if span is not None:
                span.add_stage("delivered", time, pn=fields.get("pn"))
        elif etype == "link.drop":
            span = span_for(ctx, None)
            if span is not None:
                span.add_stage("lost", time, link=fields.get("link"),
                               reason=fields.get("reason"))

    # Attach transport retransmissions beneath the packet they replace
    # and mirror the event onto the parent as its ``retransmitted``
    # stage (the parent's repair happened when the child left the wire).
    for parent_ctx, child in pending_children:
        parent = spans.get(parent_ctx)
        if parent is None or parent is child:
            continue
        parent.children.append(child)
        child_sent = child.stage_times().get("sent")
        if child_sent is not None:
            cause = next((entry.detail.get("cause")
                          for entry in child.stages
                          if entry.stage == "sent"), None)
            parent.add_stage("retransmitted", child_sent, cause=cause,
                             local=False, ctx=child.ctx)

    # Associate the causal quACK per span (flow-level cadence).  A span
    # whose gap was detected by quACK decode (a ``sidecar.gap_detect``
    # stage) is matched with the *last* emit in its (sent, detection]
    # window -- the quACK that revealed the gap.  A never-lost span is
    # matched with the first emit at or after its middlebox observation
    # (the quACK covering it).  Gaps detected purely by the e2e
    # transport (ACK reordering, PTO) involve no quACK and get none.
    for flow, emits in quack_emits.items():
        emits.sort()
    for span in spans.values():
        emits = quack_emits.get(span.flow)
        if not emits:
            continue
        times = span.stage_times()
        sent = times.get("sent")
        quack_gap = next((entry.time for entry in span.stages
                          if entry.stage == "gap_detected"
                          and entry.detail.get("latency") is not None), None)
        if quack_gap is not None:
            index = bisect_right(emits, quack_gap + 1e-12) - 1
            while index >= 0 and sent is not None \
                    and emits[index] < sent - 1e-12:
                index -= 1
            if index >= 0:
                span.add_stage("quack_emitted", emits[index],
                               gap=quack_gap)
            continue
        observed = times.get("mb_observed")
        if observed is None:
            continue
        index = bisect_left(emits, observed - 1e-12)
        if index < len(emits):
            span.add_stage("quack_emitted", emits[index])

    for span in spans.values():
        span.stages.sort(key=lambda entry: (entry.time,
                                            STAGE_ORDER.index(entry.stage)
                                            if entry.stage in STAGE_ORDER
                                            else len(STAGE_ORDER)))
    roots = [span for span in spans.values() if span.parent_ctx is None
             or span.parent_ctx not in spans]
    roots.sort(key=lambda span: (span.stage_times().get("sent",
                                                        float("inf")),
                                 span.ctx))
    return CausalAnalysis(spans=spans, roots=roots)


# -- rendering ------------------------------------------------------------


def format_span_tree(span: PacketSpan, indent: int = 0) -> str:
    """One span tree as indented text (the ``--spans`` surface)."""
    pad = "  " * indent
    lines = [f"{pad}ctx {span.ctx} flow={span.flow} "
             f"[{span.attribution}]"
             + ("" if span.monotonic else "  !! non-monotonic")]
    previous = None
    for entry in span.stages:
        delta = "" if previous is None \
            else f"  (+{(entry.time - previous) * 1e3:.3f} ms)"
        detail = " ".join(f"{key}={value}"
                          for key, value in entry.detail.items()
                          if value is not None)
        lines.append(f"{pad}  {entry.stage:<14s} t={entry.time:.6f}"
                     f"{delta}" + (f"  {detail}" if detail else ""))
        previous = entry.time
    for child in span.children:
        lines.append(f"{pad}  └─ retransmission:")
        lines.append(format_span_tree(child, indent + 2))
    return "\n".join(lines)


def format_causal_summary(analysis: CausalAnalysis,
                          examples: int = 1) -> str:
    """Attribution counts plus up to ``examples`` repaired span trees."""
    lines = [f"span trees: {len(analysis.roots)} packets"]
    counts = analysis.attribution_counts()
    if counts:
        lines.append("attribution: " + ", ".join(
            f"{name}={count}" for name, count in sorted(counts.items())))
    complete = analysis.complete_repairs()
    lines.append(f"complete repair lifecycles: {len(complete)}")
    shown = complete or analysis.repaired()
    for root in shown[:max(examples, 0)]:
        lines.append("")
        lines.append(format_span_tree(root))
    return "\n".join(lines)
