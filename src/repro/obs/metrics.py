"""Labeled metrics: counters, gauges, and histograms with a registry.

The registry is Prometheus-shaped but dependency-free: a *family* is a
named metric with a fixed tuple of label names, and each distinct label
assignment owns one child holding the actual value.  Families are
created (or fetched, idempotently) through
:meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram`;
:meth:`MetricsRegistry.snapshot` freezes everything into plain
dictionaries, and :meth:`~MetricsRegistry.render_text` /
:meth:`~MetricsRegistry.render_json` turn a snapshot into a terminal
table or a JSON document.

Naming convention (documented in DESIGN.md §8): metric names are
``<component>_<noun>[_<unit>][_total]`` -- ``netsim_link_delivered_total``,
``transport_cwnd_bytes``, ``obs_span_seconds``.  Counters end in
``_total``; gauges and histograms name their unit.

Non-finite values (``RttEstimator.min_rtt`` starts at ``float("inf")``)
are accepted at write time but sanitized to ``None`` at export time, so
rendered JSON is always strictly valid (``json.dumps`` with
``allow_nan=False`` would otherwise reject it, and with the default it
would emit the non-standard ``Infinity`` token).
"""

from __future__ import annotations

import json
import math
from typing import Mapping, Sequence

from repro.errors import ObservabilityError

#: Default histogram buckets: log-spaced upper bounds covering 1 µs .. 10 s,
#: suited to the wall-clock latencies of the quACK hot paths.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 10.0,
)

#: Per-family override for virtual-time detection/repair latencies:
#: these live at RTT scales (milliseconds to seconds), where the
#: wall-clock default collapses everything past 1 s into one bucket.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 1.5, 2.0, 3.0, 5.0, 10.0,
)


def json_safe(value: object) -> object:
    """Return ``value`` with non-finite floats replaced by None.

    Guards every JSON export path: ``inf``/``nan`` are legal in-process
    (a gauge may mirror ``min_rtt`` before the first sample) but have no
    JSON representation.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; inc({amount}) is a gauge operation")
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Cumulative-bucket histogram of observations (latencies, sizes)."""

    __slots__ = ("buckets", "counts", "sum", "count", "minimum", "maximum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ObservabilityError("histogram needs at least one bucket")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1 for the overflow bucket
        self.sum = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact-to-bucket quantile: the upper bound of the bucket the
        rank lands in (q in [0, 1]).

        When the rank lands in the overflow bucket (beyond the last
        configured bound) there is no configured upper bound; the
        observed maximum is the tightest upper bound available, clamped
        so the result never regresses below the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bound in enumerate(self.buckets):
            seen += self.counts[index]
            if seen >= rank:
                return bound
        return max(self.maximum, self.buckets[-1])

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": json_safe(self.sum),
            "mean": json_safe(self.mean),
            "min": json_safe(self.minimum if self.count else None),
            "max": json_safe(self.maximum if self.count else None),
            "p50": json_safe(self.quantile(0.5)),
            "p90": json_safe(self.quantile(0.9)),
            "p99": json_safe(self.quantile(0.99)),
            "p999": json_safe(self.quantile(0.999)),
        }

    def to_mergeable(self) -> dict:
        """The full bucket state, sufficient to merge with a peer.

        Unlike :meth:`snapshot` (which collapses to summary statistics),
        this keeps per-bucket counts so histograms recorded in separate
        processes can be added bucket-wise (``repro.obs.aggregate``).
        """
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": json_safe(self.sum),
            "count": self.count,
            "min": json_safe(self.minimum if self.count else None),
            "max": json_safe(self.maximum if self.count else None),
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its per-label-value children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if kind not in _KINDS:
            raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._children: dict[tuple, Counter | Gauge | Histogram] = {}

    def labels(self, **labels: object) -> Counter | Gauge | Histogram:
        """The child for one label assignment (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.buckets) if self.kind == "histogram" \
                else _KINDS[self.kind]()
            self._children[key] = child
        return child

    def snapshot(self) -> dict:
        series = []
        for key, child in sorted(self._children.items()):
            series.append({
                "labels": dict(zip(self.labelnames, key)),
                "value": json_safe(child.snapshot())
                if self.kind != "histogram" else child.snapshot(),
            })
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "series": series}

    def reset(self) -> None:
        for child in self._children.values():
            child.reset()


class MetricsRegistry:
    """Owner of every metric family; snapshot/reset/render surface."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- family constructors (get-or-create, idempotent) ------------------

    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str],
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labels, buckets)
            self._families[name] = family
            return family
        if family.kind != kind or family.labelnames != tuple(labels):
            raise ObservabilityError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.labelnames}; asked for {kind} with "
                f"{tuple(labels)}")
        if kind == "histogram":
            asked = tuple(sorted(float(b) for b in buckets))
            if tuple(sorted(family.buckets)) != asked:
                raise ObservabilityError(
                    f"histogram {name!r} already registered with buckets "
                    f"{family.buckets}; asked for {asked} -- per-family "
                    f"bucket overrides must be consistent across call "
                    f"sites (mixed buckets cannot be merged)")
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """All families and series as plain, JSON-safe dictionaries."""
        return {name: family.snapshot()
                for name, family in sorted(self._families.items())}

    def reset(self) -> None:
        """Zero every child; families and label sets survive."""
        for family in self._families.values():
            family.reset()

    def render_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, allow_nan=False)

    def render_text(self) -> str:
        """A terminal-friendly metrics table (the ``--summary`` surface)."""
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            snap = family.snapshot()
            if not snap["series"]:
                continue
            for entry in snap["series"]:
                labels = ",".join(f"{k}={v}"
                                  for k, v in entry["labels"].items())
                qualified = f"{name}{{{labels}}}" if labels else name
                value = entry["value"]
                if family.kind == "histogram":
                    rendered = (f"count={value['count']} "
                                f"mean={_fmt(value['mean'])} "
                                f"p50={_fmt(value['p50'])} "
                                f"p99={_fmt(value['p99'])} "
                                f"max={_fmt(value['max'])}")
                else:
                    rendered = _fmt(value)
                lines.append(f"{qualified:<58s} {rendered}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)
