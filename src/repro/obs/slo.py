"""Declarative tail-latency budgets and the ``repro slo`` gate.

A budget file (checked into ``benchmarks/slo/``) names the scenarios to
run and the tail bounds their aggregated telemetry must satisfy::

    {
      "kind": "slo-budgets",
      "schema": 1,
      "name": "seed-scenarios",
      "scenarios": [
        {"scenario": "retransmission", "seed": 1, "total_bytes": 300000}
      ],
      "budgets": [
        {"name": "sidecar detection p99 <= 2*RTT",
         "metric": "sidecar_repair_latency_seconds",
         "labels": {"cause": "quack"}, "stat": "p99", "max": 0.016},
        {"name": "quack decode failure rate",
         "ratio_of": "quack_decodes_total",
         "label": "status", "ok_values": ["ok"], "max": 1e-4}
      ]
    }

Two budget shapes:

* **stat budgets** (``metric`` + ``stat`` + ``max``/``min``): evaluate
  one statistic of a metric -- exact-to-bucket quantiles
  (p50/p90/p99/p999), ``mean``/``max``/``count``/``sum`` for
  histograms, the summed ``value`` for counters.  ``labels`` narrows to
  matching series (subset match); matching series are combined before
  the statistic is taken.
* **ratio budgets** (``ratio_of`` + ``label`` + ``ok_values``): the
  fraction of a labeled counter family outside the ok set, e.g. the
  quACK decode failure rate.

Missing data is a violation by default ("the SLO was not measured" must
never read as "the SLO passed"); set ``"allow_missing": true`` on a
budget to tolerate it.

Scenario runs are virtual-time deterministic, so a budget either always
passes or always fails for a given code state -- exactly what a CI gate
needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.errors import ObservabilityError
from repro.obs.aggregate import (
    combine_series,
    hist_quantile,
    merge_snapshots,
    select_series,
)

#: Version stamp on budget files.
SLO_SCHEMA = 1

_QUANTILE_STATS = {"p50": 0.5, "p90": 0.9, "p99": 0.99, "p999": 0.999}


@dataclass
class BudgetVerdict:
    """One evaluated budget line."""

    name: str
    observed: float | None
    limit: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        shown = "-" if self.observed is None else f"{self.observed:.6g}"
        line = f"{mark}  {self.name:<46s} observed={shown:<12s} {self.limit}"
        if self.detail:
            line += f"  ({self.detail})"
        return line


def load_budget_file(path: str) -> dict:
    """Read and structurally validate one budget document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(f"cannot read budget file {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "slo-budgets":
        raise ObservabilityError(
            f"{path}: not an slo-budgets document "
            f"(kind={doc.get('kind') if isinstance(doc, dict) else None!r})")
    schema = doc.get("schema")
    if not isinstance(schema, int) or schema > SLO_SCHEMA:
        raise ObservabilityError(
            f"{path}: budget schema {schema!r} not supported "
            f"(this build reads <= {SLO_SCHEMA})")
    if not isinstance(doc.get("budgets"), list) or not doc["budgets"]:
        raise ObservabilityError(f"{path}: no budgets declared")
    return doc


def run_scenarios(doc: dict, *,
                  progress: Callable[[str], None] | None = None) -> dict:
    """Run the document's scenarios traced; returns merged telemetry."""
    from repro import obs
    from repro.obs.aggregate import mergeable_snapshot
    from repro.obs.runner import run_traced

    scenarios = doc.get("scenarios") or []
    if not scenarios:
        raise ObservabilityError(
            "budget document has no scenarios (pass --snapshot to "
            "evaluate against a saved telemetry snapshot instead)")
    snapshots = []
    for entry in scenarios:
        name = entry.get("scenario")
        if not isinstance(name, str):
            raise ObservabilityError(f"scenario entry without a name: "
                                     f"{entry!r}")
        kwargs = {key: entry[key]
                  for key in ("seed", "total_bytes", "loss")
                  if key in entry}
        if progress is not None:
            progress(f"slo: running {name} {kwargs}")
        run_traced(name, profile=False, **kwargs)
        snapshots.append(mergeable_snapshot(obs.METRICS))
        obs.METRICS.reset()
    return merge_snapshots(snapshots)


def evaluate_budgets(budgets: list[dict],
                     snapshot: dict) -> list[BudgetVerdict]:
    """Evaluate every budget entry against a merged telemetry snapshot."""
    return [_evaluate_one(budget, snapshot) for budget in budgets]


def _bounds(budget: dict) -> tuple[str, Callable[[float], bool]]:
    limits = []
    checks = []
    if "max" in budget:
        limits.append(f"max={budget['max']:g}")
        checks.append(lambda value, m=budget["max"]: value <= m)
    if "min" in budget:
        limits.append(f"min={budget['min']:g}")
        checks.append(lambda value, m=budget["min"]: value >= m)
    if not checks:
        raise ObservabilityError(
            f"budget {budget.get('name')!r} declares neither max nor min")
    return " ".join(limits), lambda value: all(c(value) for c in checks)


def _missing(budget: dict, limit: str, why: str) -> BudgetVerdict:
    allow = bool(budget.get("allow_missing"))
    return BudgetVerdict(name=str(budget.get("name", "?")), observed=None,
                         limit=limit, ok=allow,
                         detail=why + ("" if allow else "; unmeasured SLOs "
                                       "fail by default"))


def _evaluate_one(budget: dict, snapshot: dict) -> BudgetVerdict:
    name = str(budget.get("name", "?"))
    limit, within = _bounds(budget)
    if "ratio_of" in budget:
        return _evaluate_ratio(budget, name, limit, within, snapshot)
    metric = budget.get("metric")
    if not isinstance(metric, str):
        raise ObservabilityError(f"budget {name!r}: no metric/ratio_of")
    stat = str(budget.get("stat", "value"))
    entries = select_series(snapshot, metric, budget.get("labels"))
    if not entries:
        return _missing(budget, limit, f"metric {metric!r} has no "
                        f"matching series")
    family = snapshot["families"][metric]
    combined = combine_series(entries, family["kind"])
    if family["kind"] == "histogram":
        count = combined["count"]
        if count < int(budget.get("min_count", 1)):
            return _missing(budget, limit,
                            f"only {count} samples "
                            f"(min_count={budget.get('min_count', 1)})")
        if stat in _QUANTILE_STATS:
            observed = hist_quantile(combined, _QUANTILE_STATS[stat])
        elif stat == "mean":
            observed = (combined["sum"] or 0.0) / count
        elif stat == "max":
            observed = combined["max"]
        elif stat == "count":
            observed = float(count)
        elif stat == "sum":
            observed = combined["sum"] or 0.0
        else:
            raise ObservabilityError(
                f"budget {name!r}: stat {stat!r} not valid for a "
                f"histogram")
    else:
        if stat not in ("value", "total"):
            raise ObservabilityError(
                f"budget {name!r}: stat {stat!r} not valid for a "
                f"{family['kind']}")
        observed = float(combined)
    ok = observed is not None and within(observed)
    return BudgetVerdict(name=name, observed=observed, limit=limit, ok=ok)


def _evaluate_ratio(budget: dict, name: str, limit: str,
                    within: Callable[[float], bool],
                    snapshot: dict) -> BudgetVerdict:
    metric = str(budget["ratio_of"])
    label = budget.get("label")
    ok_values = {str(v) for v in budget.get("ok_values", ())}
    if not isinstance(label, str) or not ok_values:
        raise ObservabilityError(
            f"budget {name!r}: ratio_of needs 'label' and 'ok_values'")
    entries = select_series(snapshot, metric, budget.get("labels"))
    total = sum(entry["value"] for entry in entries)
    if total <= 0:
        return _missing(budget, limit, f"counter {metric!r} recorded "
                        f"nothing")
    bad = sum(entry["value"] for entry in entries
              if str(entry.get("labels", {}).get(label)) not in ok_values)
    observed = bad / total
    return BudgetVerdict(name=name, observed=observed, limit=limit,
                         ok=within(observed),
                         detail=f"{bad:g}/{total:g} outside "
                                f"{sorted(ok_values)}")


def format_verdicts(source: str,
                    verdicts: list[BudgetVerdict]) -> str:
    failed = sum(1 for verdict in verdicts if not verdict.ok)
    lines = [f"{source}: {len(verdicts)} budgets, "
             + ("all within budget" if not failed
                else f"{failed} VIOLATED")]
    lines.extend("  " + verdict.render() for verdict in verdicts)
    return "\n".join(lines)
