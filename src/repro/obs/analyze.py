"""Trace analytics: turn a raw trace into derived answers.

:mod:`repro.obs.trace` records *what happened*; this module says *what it
means*.  It consumes a trace -- in-memory :class:`~repro.obs.trace
.TraceEvent` objects or a JSONL export -- and derives the four artifacts
the reproduction's evaluation keeps asking for by hand:

* **per-connection timelines** -- cwnd / bytes-in-flight / sRTT over
  virtual time, one :class:`ConnectionTimeline` per flow, with send,
  retransmit, loss, PTO, and completion bookkeeping;
* **loss-recovery attribution** -- every ``transport.retransmit`` and
  ``sidecar.retransmit`` credited to the path that detected the loss
  (``quack`` decode, e2e ``ack`` evidence, ``pto`` backstop) with the
  virtual-time detection latency of each path aggregated per cause;
* **quACK decode health** -- success rate, the missing-set-size series,
  false-positive resets (a reset issued while decodes were succeeding),
  and checksum-rejected frames;
* **sidecar health-ladder dwell times** -- how long the session sat on
  each rung of HEALTHY / DEGRADED / E2E_ONLY / RECOVERING.

Parsing is deliberately forgiving where the schema validator is strict:
an analysis of a partially corrupt or foreign trace should *skip and
count* malformed lines, never crash (``python -m repro analyze`` prints
the skipped-line count).  Ring truncation is flagged: a trace whose
lowest transmitted packet number is not 0 lost its beginning.

CLI::

    python -m repro trace cc-division --jsonl trace.jsonl
    python -m repro analyze trace.jsonl
    python -m repro analyze trace.jsonl --markdown --flow flow0
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.trace import TraceEvent, component_tally, format_component_tally

#: Decode statuses that count as a successful quACK decode.
_DECODE_OK = ("ok",)

#: Causes the attribution table always lists, in narrative order.
KNOWN_CAUSES = ("quack", "ack", "pto")


# -- parsing ------------------------------------------------------------------

@dataclass
class ParsedTrace:
    """Decoded trace records plus the malformed-line count."""

    records: list[dict]
    malformed: int = 0
    source: str = ""


def parse_lines(lines: Iterable[str], source: str = "") -> ParsedTrace:
    """Decode JSONL lines, skipping (and counting) anything malformed.

    A line is malformed if it is not valid JSON, not an object, or lacks
    a string ``type`` / numeric ``t``.  Unknown event *types* are kept --
    consumers ignore what they do not know -- so traces from newer
    schema versions still analyze.
    """
    records: list[dict] = []
    malformed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            malformed += 1
            continue
        stamp = record.get("t") if isinstance(record, dict) else None
        if (not isinstance(record, dict)
                or not isinstance(record.get("type"), str)
                or isinstance(stamp, bool)
                or not isinstance(stamp, (int, float))):
            malformed += 1
            continue
        records.append(record)
    return ParsedTrace(records=records, malformed=malformed, source=source)


def load_trace(path: str) -> ParsedTrace:
    """Read and parse one JSONL trace file (malformed lines tolerated)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_lines(handle, source=path)


def _as_records(events: Iterable["TraceEvent | dict"]) -> list[dict]:
    return [event.to_dict() if isinstance(event, TraceEvent) else dict(event)
            for event in events]


# -- derived artifacts --------------------------------------------------------

@dataclass(frozen=True)
class TimelinePoint:
    """One instant of a connection's state (from cwnd/sample events)."""

    time: float
    cwnd: float
    in_flight: float
    srtt: float | None


@dataclass
class ConnectionTimeline:
    """Everything the trace says about one flow, in time order."""

    flow: str
    points: list[TimelinePoint] = field(default_factory=list)
    sends: int = 0
    retransmits: int = 0
    losses: int = 0
    ptos: int = 0
    min_pn: int | None = None
    first_time: float | None = None
    last_time: float | None = None
    completed_at: float | None = None
    completed_bytes: int | None = None

    def _touch(self, time: float) -> None:
        if self.first_time is None or time < self.first_time:
            self.first_time = time
        if self.last_time is None or time > self.last_time:
            self.last_time = time

    def series(self, attr: str) -> tuple[list[float], list[float]]:
        """``(times, values)`` for ``cwnd`` / ``in_flight`` / ``srtt``."""
        times, values = [], []
        for point in self.points:
            value = getattr(point, attr)
            if value is None:
                continue
            times.append(point.time)
            values.append(float(value))
        return times, values


@dataclass(frozen=True)
class RetransmitRecord:
    """One attributed retransmission."""

    time: float
    flow: str
    cause: str
    latency: float | None
    layer: str  # "transport" or "sidecar"


@dataclass
class CauseStats:
    """Detection-latency statistics for one loss-recovery path."""

    cause: str
    count: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float | None:
        return statistics.fmean(self.latencies) if self.latencies else None

    @property
    def median_latency(self) -> float | None:
        return statistics.median(self.latencies) if self.latencies else None

    @property
    def max_latency(self) -> float | None:
        return max(self.latencies) if self.latencies else None


@dataclass
class LossAttribution:
    """Every retransmit in the trace, credited to its detection path."""

    records: list[RetransmitRecord] = field(default_factory=list)
    #: Retransmits whose event carried no ``cause`` tag (pre-tagging
    #: traces); the analysis refuses to guess.
    unattributed: int = 0

    def by_cause(self) -> dict[str, CauseStats]:
        stats: dict[str, CauseStats] = {}
        for record in self.records:
            entry = stats.setdefault(record.cause, CauseStats(record.cause))
            entry.count += 1
            if record.latency is not None:
                entry.latencies.append(record.latency)
        return stats

    @property
    def total(self) -> int:
        return len(self.records) + self.unattributed


@dataclass
class DecodeHealth:
    """The quACK decode series and what it says about the channel."""

    times: list[float] = field(default_factory=list)
    statuses: list[str] = field(default_factory=list)
    missing: list[int] = field(default_factory=list)
    resets: int = 0
    reset_reasons: dict[str, int] = field(default_factory=dict)
    #: Resets issued while the latest decode had succeeded -- the session
    #: restarted without decode evidence of a broken channel.
    false_positive_resets: int = 0
    wire_errors: int = 0

    @property
    def decodes(self) -> int:
        return len(self.statuses)

    @property
    def successes(self) -> int:
        return sum(1 for status in self.statuses if status in _DECODE_OK)

    @property
    def success_rate(self) -> float | None:
        return self.successes / self.decodes if self.decodes else None

    def failures(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for status in self.statuses:
            if status not in _DECODE_OK:
                tally[status] = tally.get(status, 0) + 1
        return tally

    @property
    def max_missing(self) -> int | None:
        return max(self.missing) if self.missing else None

    @property
    def mean_missing(self) -> float | None:
        return statistics.fmean(self.missing) if self.missing else None


@dataclass
class DefenseReport:
    """What the plausibility defense saw: violations, quarantine, resume.

    Populated from the ``sidecar.violation`` / ``sidecar.quarantine`` /
    ``sidecar.count_regression`` / ``sidecar.resume`` /
    ``sidecar.checkpoint`` / ``sidecar.gap_reconciled`` events; all
    zeros when the trace predates the defense (or it was unarmed).
    """

    violations: dict[str, int] = field(default_factory=dict)
    quarantines: list[tuple[float, str]] = field(
        default_factory=list)  # (time, kind)
    count_regressions: int = 0
    resumes: dict[str, int] = field(default_factory=dict)  # phase -> count
    resume_events: list[tuple[float, str, str]] = field(
        default_factory=list)  # (time, role, phase)
    checkpoints: int = 0
    checkpoint_bytes_last: int | None = None
    gap_reconciled: int = 0

    @property
    def active(self) -> bool:
        return bool(self.violations or self.quarantines or self.resumes
                    or self.checkpoints or self.count_regressions
                    or self.gap_reconciled)

    @property
    def total_violations(self) -> int:
        return sum(self.violations.values())

    @property
    def quarantined_at(self) -> float | None:
        return self.quarantines[0][0] if self.quarantines else None

    def resume_latencies(self) -> list[float]:
        """Announce-to-verdict time of each resume handshake.

        Pairs every emitter ``sent`` with the next consumer
        ``accepted``/``rejected`` after it -- the restart-to-reassistance
        delay the checkpoint/restore path is supposed to keep under one
        round trip.
        """
        latencies: list[float] = []
        pending: float | None = None
        for time, role, phase in self.resume_events:
            if role == "emitter" and phase == "sent":
                pending = time
            elif role == "consumer" and pending is not None:
                latencies.append(max(time - pending, 0.0))
                pending = None
        return latencies


@dataclass
class HealthDwell:
    """Time spent on each rung of the sidecar degradation ladder."""

    transitions: list[tuple[float, str, str, str]] = field(
        default_factory=list)  # (time, old, new, reason)
    dwell_s: dict[str, float] = field(default_factory=dict)
    final_state: str | None = None

    @property
    def total_s(self) -> float:
        return sum(self.dwell_s.values())


@dataclass
class TraceAnalysis:
    """The full derived view of one trace."""

    source: str
    events: int
    malformed: int
    components: dict[str, int]
    start: float | None
    end: float | None
    connections: dict[str, ConnectionTimeline]
    attribution: LossAttribution
    decode: DecodeHealth
    health: HealthDwell
    defense: DefenseReport
    #: True when the trace demonstrably lost its beginning (lowest
    #: transmitted pn > 0 for some flow, or an explicit dropped count).
    truncated: bool
    dropped_events: int = 0

    @property
    def duration(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    # Rendering lives below as free functions; keep the dataclass thin.
    def render_text(self, width: int = 72,
                    flows: Sequence[str] | None = None) -> str:
        return render_text(self, width=width, flows=flows)

    def render_markdown(self, flows: Sequence[str] | None = None) -> str:
        return render_markdown(self, flows=flows)


# -- the engine ---------------------------------------------------------------

def analyze(trace: "ParsedTrace | Iterable[TraceEvent | dict]",
            dropped_events: int = 0) -> TraceAnalysis:
    """Derive timelines, attribution, decode health, and dwell times.

    ``trace`` is a :class:`ParsedTrace` (from :func:`load_trace` /
    :func:`parse_lines`) or any iterable of events.  ``dropped_events``
    lets a live caller (who still holds the :class:`RingSink`) pass the
    authoritative truncation count; JSONL files do not carry it, so for
    them truncation is inferred from packet numbers.
    """
    if isinstance(trace, ParsedTrace):
        records, malformed, source = trace.records, trace.malformed, \
            trace.source
    else:
        records, malformed, source = _as_records(trace), 0, ""
    records = sorted(records, key=lambda r: r["t"])

    connections: dict[str, ConnectionTimeline] = {}
    attribution = LossAttribution()
    decode = DecodeHealth()
    defense = DefenseReport()
    transitions: list[tuple[float, str, str, str]] = []
    last_decode_ok: bool | None = None

    def conn(flow: object) -> ConnectionTimeline:
        name = str(flow)
        timeline = connections.get(name)
        if timeline is None:
            timeline = connections[name] = ConnectionTimeline(name)
        return timeline

    for record in records:
        etype = record["type"]
        time = record["t"]
        if etype == "transport.send" or etype == "transport.retransmit":
            timeline = conn(record.get("flow", "?"))
            timeline._touch(time)
            pn = record.get("pn")
            if isinstance(pn, (int, float)) and not isinstance(pn, bool):
                if timeline.min_pn is None or pn < timeline.min_pn:
                    timeline.min_pn = int(pn)
            if etype == "transport.send":
                timeline.sends += 1
            else:
                timeline.retransmits += 1
                cause = record.get("cause")
                latency = record.get("latency")
                if isinstance(cause, str):
                    attribution.records.append(RetransmitRecord(
                        time=time, flow=timeline.flow, cause=cause,
                        latency=latency
                        if isinstance(latency, (int, float))
                        and not isinstance(latency, bool) else None,
                        layer="transport"))
                else:
                    attribution.unattributed += 1
        elif etype in ("transport.cwnd", "transport.sample"):
            timeline = conn(record.get("flow", "?"))
            timeline._touch(time)
            srtt = record.get("srtt")
            timeline.points.append(TimelinePoint(
                time=time,
                cwnd=float(record.get("cwnd", 0) or 0),
                in_flight=float(record.get("in_flight", 0) or 0),
                srtt=float(srtt)
                if isinstance(srtt, (int, float))
                and not isinstance(srtt, bool) else None))
        elif etype == "transport.loss":
            timeline = conn(record.get("flow", "?"))
            timeline._touch(time)
            timeline.losses += 1
        elif etype == "transport.pto":
            timeline = conn(record.get("flow", "?"))
            timeline._touch(time)
            timeline.ptos += 1
        elif etype == "transport.complete":
            timeline = conn(record.get("flow", "?"))
            timeline._touch(time)
            timeline.completed_at = time
            size = record.get("bytes")
            if isinstance(size, (int, float)) and not isinstance(size, bool):
                timeline.completed_bytes = int(size)
        elif etype == "sidecar.retransmit":
            cause = record.get("cause")
            latency = record.get("latency")
            if isinstance(cause, str):
                attribution.records.append(RetransmitRecord(
                    time=time, flow=str(record.get("flow", "?")),
                    cause=cause,
                    latency=latency
                    if isinstance(latency, (int, float))
                    and not isinstance(latency, bool) else None,
                    layer="sidecar"))
            else:
                attribution.unattributed += 1
        elif etype == "quack.decode":
            status = str(record.get("status", "?"))
            missing = record.get("missing")
            decode.times.append(time)
            decode.statuses.append(status)
            decode.missing.append(
                int(missing) if isinstance(missing, (int, float))
                and not isinstance(missing, bool) else 0)
            last_decode_ok = status in _DECODE_OK
        elif etype == "sidecar.reset":
            decode.resets += 1
            reason = str(record.get("reason", "?"))
            decode.reset_reasons[reason] = \
                decode.reset_reasons.get(reason, 0) + 1
            if last_decode_ok:
                decode.false_positive_resets += 1
        elif etype == "sidecar.wire_error":
            decode.wire_errors += 1
        elif etype == "sidecar.health":
            transitions.append((time, str(record.get("old", "?")),
                                str(record.get("new", "?")),
                                str(record.get("reason", ""))))
        elif etype == "sidecar.violation":
            kind = str(record.get("kind", "?"))
            defense.violations[kind] = defense.violations.get(kind, 0) + 1
        elif etype == "sidecar.quarantine":
            defense.quarantines.append((time, str(record.get("kind", "?"))))
        elif etype == "sidecar.count_regression":
            defense.count_regressions += 1
        elif etype == "sidecar.resume":
            role = str(record.get("role", "?"))
            phase = str(record.get("phase", "?"))
            defense.resumes[phase] = defense.resumes.get(phase, 0) + 1
            defense.resume_events.append((time, role, phase))
        elif etype == "sidecar.checkpoint":
            defense.checkpoints += 1
            size = record.get("bytes")
            if isinstance(size, (int, float)) and not isinstance(size, bool):
                defense.checkpoint_bytes_last = int(size)
        elif etype == "sidecar.gap_reconciled":
            packets = record.get("packets")
            if isinstance(packets, (int, float)) \
                    and not isinstance(packets, bool):
                defense.gap_reconciled += int(packets)

    start = records[0]["t"] if records else None
    end = records[-1]["t"] if records else None
    health = _dwell_times(transitions, start, end)
    truncated = dropped_events > 0 or any(
        timeline.min_pn is not None and timeline.min_pn > 0
        for timeline in connections.values())
    return TraceAnalysis(
        source=source,
        events=len(records),
        malformed=malformed,
        components=component_tally(records),
        start=start,
        end=end,
        connections=connections,
        attribution=attribution,
        decode=decode,
        health=health,
        defense=defense,
        truncated=truncated,
        dropped_events=dropped_events,
    )


def _dwell_times(transitions: list[tuple[float, str, str, str]],
                 start: float | None, end: float | None) -> HealthDwell:
    """Per-state dwell from the transition log.

    The state before the first transition is that transition's ``old``;
    the interval before the first trace event and after the last is not
    counted (the trace only witnesses what it spans).
    """
    health = HealthDwell(transitions=list(transitions))
    if start is None or end is None:
        return health
    if not transitions:
        return health
    cursor = start
    state = transitions[0][1]
    for time, _old, new, _reason in transitions:
        span = max(time - cursor, 0.0)
        health.dwell_s[state] = health.dwell_s.get(state, 0.0) + span
        cursor = max(time, cursor)
        state = new
    health.dwell_s[state] = health.dwell_s.get(state, 0.0) \
        + max(end - cursor, 0.0)
    health.final_state = state
    return health


# -- rendering ----------------------------------------------------------------

def _fmt_s(value: float | None) -> str:
    return "-" if value is None else f"{value:.4f}"


def _fmt_ms(value: float | None) -> str:
    return "-" if value is None else f"{value * 1e3:.2f}"


def _attribution_rows(analysis: TraceAnalysis) -> list[tuple[str, ...]]:
    """(cause, count, mean/median/max latency ms) rows, known causes first."""
    stats = analysis.attribution.by_cause()
    order = [c for c in KNOWN_CAUSES if c in stats] \
        + sorted(set(stats) - set(KNOWN_CAUSES))
    rows = []
    for cause in order:
        entry = stats[cause]
        rows.append((cause, str(entry.count), _fmt_ms(entry.mean_latency),
                     _fmt_ms(entry.median_latency),
                     _fmt_ms(entry.max_latency)))
    return rows


def _connection_summary(timeline: ConnectionTimeline) -> str:
    completed = (f"completed at {timeline.completed_at:.3f} s"
                 + (f" ({timeline.completed_bytes:,} bytes)"
                    if timeline.completed_bytes is not None else "")
                 if timeline.completed_at is not None else "did not complete")
    return (f"{timeline.sends} sends + {timeline.retransmits} retransmits, "
            f"{timeline.losses} losses, {timeline.ptos} PTOs, {completed}")


def _select_flows(analysis: TraceAnalysis,
                  flows: Sequence[str] | None) -> list[ConnectionTimeline]:
    if flows is None:
        return [analysis.connections[name]
                for name in sorted(analysis.connections)]
    return [analysis.connections[name] for name in flows
            if name in analysis.connections]


def render_text(analysis: TraceAnalysis, width: int = 72,
                flows: Sequence[str] | None = None) -> str:
    """The terminal report: summaries plus block-character charts."""
    from repro.transport.instrument import ascii_chart

    lines = [f"trace analysis: {analysis.source or '(in-memory events)'}"]
    span = (f", t={analysis.start:.3f}..{analysis.end:.3f} s"
            if analysis.events else "")
    lines.append(f"{analysis.events} events "
                 f"({analysis.malformed} malformed lines skipped){span}")
    if analysis.components:
        lines.append("events by component: "
                     + format_component_tally(analysis.components))
    if analysis.truncated:
        detail = (f"{analysis.dropped_events} events dropped by the ring"
                  if analysis.dropped_events
                  else "lowest packet number > 0")
        lines.append(f"WARNING: trace is truncated ({detail}); "
                     f"derived numbers undercount the start of the run")
    if not analysis.events:
        lines.append("(nothing to analyze)")
        return "\n".join(lines)

    for timeline in _select_flows(analysis, flows):
        lines.append("")
        lines.append(f"connection {timeline.flow}: "
                     + _connection_summary(timeline))
        _times, cwnd = timeline.series("cwnd")
        if cwnd:
            lines.append(ascii_chart(cwnd, width=width, height=8,
                                     label=f"  cwnd bytes ({len(cwnd)} pts)"))
        _times, srtt = timeline.series("srtt")
        if srtt:
            lines.append(ascii_chart([v * 1e3 for v in srtt], width=width,
                                     height=6,
                                     label=f"  srtt ms ({len(srtt)} pts)"))

    lines.append("")
    lines.append("loss-recovery attribution "
                 f"({analysis.attribution.total} retransmits):")
    rows = _attribution_rows(analysis)
    if rows:
        lines.append(f"  {'cause':<8s} {'count':>6s} "
                     f"{'mean':>9s} {'median':>9s} {'max':>9s}  (latency ms)")
        for cause, count, mean, median, peak in rows:
            lines.append(f"  {cause:<8s} {count:>6s} "
                         f"{mean:>9s} {median:>9s} {peak:>9s}")
    else:
        lines.append("  (no retransmissions)")
    if analysis.attribution.unattributed:
        lines.append(f"  {analysis.attribution.unattributed} retransmits "
                     f"carried no cause tag (pre-tagging trace)")

    decode = analysis.decode
    lines.append("")
    lines.append("quACK decode health:")
    if decode.decodes:
        rate = decode.success_rate or 0.0
        failures = ", ".join(f"{status}={count}"
                             for status, count in
                             sorted(decode.failures().items())) or "none"
        lines.append(f"  {decode.decodes} decodes, {rate:.1%} ok "
                     f"(failures: {failures})")
        lines.append(f"  missing-set size: mean "
                     f"{decode.mean_missing:.2f}, max {decode.max_missing}")
        if len(decode.missing) >= 2:
            lines.append(ascii_chart(
                [float(m) for m in decode.missing], width=width, height=5,
                label=f"  missing per decode ({decode.decodes} decodes)"))
    else:
        lines.append("  (no quACK decodes in trace)")
    lines.append(f"  resets: {decode.resets} "
                 f"({decode.false_positive_resets} false-positive), "
                 f"wire errors: {decode.wire_errors}")

    health = analysis.health
    lines.append("")
    lines.append("sidecar health ladder:")
    if health.dwell_s:
        total = health.total_s or 1.0
        parts = ", ".join(
            f"{state} {seconds:.3f} s ({seconds / total:.0%})"
            for state, seconds in sorted(health.dwell_s.items(),
                                         key=lambda kv: -kv[1]))
        lines.append(f"  {parts}")
        lines.append(f"  {len(health.transitions)} transitions, "
                     f"final state {health.final_state}")
    else:
        lines.append("  (no health transitions; ladder stayed put)")

    defense = analysis.defense
    if defense.active:
        lines.append("")
        lines.append("sidecar defense:")
        if defense.violations:
            parts = ", ".join(f"{kind}={count}" for kind, count
                              in sorted(defense.violations.items()))
            lines.append(f"  {defense.total_violations} plausibility "
                         f"violations ({parts})")
        if defense.count_regressions:
            lines.append(f"  {defense.count_regressions} count regressions")
        for time, kind in defense.quarantines:
            lines.append(f"  QUARANTINED at {time:.3f} s (trigger: {kind})")
        if defense.resumes:
            parts = ", ".join(f"{phase}={count}" for phase, count
                              in sorted(defense.resumes.items()))
            latencies = defense.resume_latencies()
            latency = (f", verdict latency mean "
                       f"{_fmt_ms(statistics.fmean(latencies))} ms"
                       if latencies else "")
            lines.append(f"  resume handshakes: {parts}{latency}")
        if defense.checkpoints:
            size = (f" ({defense.checkpoint_bytes_last} bytes last)"
                    if defense.checkpoint_bytes_last is not None else "")
            lines.append(f"  {defense.checkpoints} checkpoints{size}")
        if defense.gap_reconciled:
            lines.append(f"  {defense.gap_reconciled} checkpoint-gap packets "
                         f"reconciled without loss signals")
    return "\n".join(lines)


def render_markdown(analysis: TraceAnalysis,
                    flows: Sequence[str] | None = None) -> str:
    """The same analysis as a self-contained markdown document."""
    lines = [f"# Trace analysis — "
             f"`{analysis.source or '(in-memory events)'}`", ""]
    span = (f" spanning t={analysis.start:.3f}..{analysis.end:.3f} s"
            if analysis.events else "")
    lines.append(f"{analysis.events} events, {analysis.malformed} malformed "
                 f"lines skipped{span}.")
    if analysis.truncated:
        lines.append("")
        lines.append("> **Warning:** the trace is truncated; derived "
                     "numbers undercount the start of the run.")
    lines.append("")
    if analysis.components:
        lines.append(format_component_tally(analysis.components,
                                            markdown=True))
        lines.append("")

    lines.append("## Connections")
    lines.append("")
    lines.append("| flow | sends | retransmits | losses | PTOs | "
                 "completed | points |")
    lines.append("|---|---|---|---|---|---|---|")
    for timeline in _select_flows(analysis, flows):
        completed = (f"{timeline.completed_at:.3f} s"
                     if timeline.completed_at is not None else "no")
        lines.append(f"| {timeline.flow} | {timeline.sends} "
                     f"| {timeline.retransmits} | {timeline.losses} "
                     f"| {timeline.ptos} | {completed} "
                     f"| {len(timeline.points)} |")
    lines.append("")

    lines.append("## Loss-recovery attribution")
    lines.append("")
    lines.append("| cause | retransmits | mean latency (ms) "
                 "| median (ms) | max (ms) |")
    lines.append("|---|---|---|---|---|")
    for cause, count, mean, median, peak in _attribution_rows(analysis):
        lines.append(f"| {cause} | {count} | {mean} | {median} | {peak} |")
    if analysis.attribution.unattributed:
        lines.append(f"| (untagged) | {analysis.attribution.unattributed} "
                     f"| - | - | - |")
    lines.append("")

    decode = analysis.decode
    lines.append("## quACK decode health")
    lines.append("")
    if decode.decodes:
        failures = ", ".join(f"{status}={count}" for status, count in
                             sorted(decode.failures().items())) or "none"
        lines.append(f"* {decode.decodes} decodes, "
                     f"{(decode.success_rate or 0):.1%} ok "
                     f"(failures: {failures})")
        lines.append(f"* missing-set size: mean {decode.mean_missing:.2f}, "
                     f"max {decode.max_missing}")
    else:
        lines.append("* no quACK decodes in trace")
    lines.append(f"* resets: {decode.resets} "
                 f"({decode.false_positive_resets} false-positive); "
                 f"wire errors: {decode.wire_errors}")
    lines.append("")

    health = analysis.health
    lines.append("## Sidecar health ladder")
    lines.append("")
    if health.dwell_s:
        lines.append("| state | dwell (s) | share |")
        lines.append("|---|---|---|")
        total = health.total_s or 1.0
        for state, seconds in sorted(health.dwell_s.items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"| {state} | {seconds:.3f} "
                         f"| {seconds / total:.0%} |")
        lines.append("")
        lines.append(f"{len(health.transitions)} transitions; final state "
                     f"`{health.final_state}`.")
    else:
        lines.append("No health transitions recorded.")

    defense = analysis.defense
    if defense.active:
        lines.append("")
        lines.append("## Sidecar defense")
        lines.append("")
        if defense.violations:
            lines.append("| violation kind | count |")
            lines.append("|---|---|")
            for kind, count in sorted(defense.violations.items()):
                lines.append(f"| {kind} | {count} |")
            lines.append("")
        bullets = []
        if defense.count_regressions:
            bullets.append(f"* {defense.count_regressions} count regressions")
        for time, kind in defense.quarantines:
            bullets.append(f"* quarantined at {time:.3f} s "
                           f"(trigger: `{kind}`)")
        if defense.resumes:
            parts = ", ".join(f"{phase}={count}" for phase, count
                              in sorted(defense.resumes.items()))
            latencies = defense.resume_latencies()
            latency = (f"; verdict latency mean "
                       f"{_fmt_ms(statistics.fmean(latencies))} ms"
                       if latencies else "")
            bullets.append(f"* resume handshakes: {parts}{latency}")
        if defense.checkpoints:
            bullets.append(f"* {defense.checkpoints} checkpoints taken")
        if defense.gap_reconciled:
            bullets.append(f"* {defense.gap_reconciled} checkpoint-gap "
                           f"packets reconciled without loss signals")
        lines.extend(bullets)
    return "\n".join(lines)
