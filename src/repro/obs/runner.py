"""Run one scenario with observability enabled; collect trace + metrics.

This is the engine behind ``python -m repro trace <scenario>``: it turns
the global observability switchboard on, runs a named scenario -- one of
the protocol experiments (E7-E9) or any chaos plan -- and hands back the
captured trace events, the metrics snapshot, and a rendered summary.

The runner owns the enable/disable lifecycle so callers can never leak
an enabled tracer into code that did not ask for one; metrics and the
ring buffer are reset on entry so each run's data stands alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.schema import CORE_COMPONENTS
from repro.obs.trace import TraceEvent, component_tally, format_component_tally

#: The protocol experiments the runner knows how to drive.
EXPERIMENT_SCENARIOS = ("cc-division", "ack-reduction", "retransmission")


def known_scenarios() -> tuple[str, ...]:
    """Every name :func:`run_traced` accepts (experiments + chaos plans)."""
    from repro.chaos import PLANS

    return EXPERIMENT_SCENARIOS + tuple(sorted(PLANS))


@dataclass
class TraceRunResult:
    """One traced run: the events, the metrics, and the scenario output."""

    scenario: str
    seed: int
    events: list[TraceEvent]
    events_emitted: int
    events_dropped: int
    metrics: dict
    metrics_text: str
    outcome: Any

    def components(self) -> dict[str, int]:
        """Event counts by component prefix (link/transport/quack/...)."""
        return component_tally(self.events)

    def missing_core_components(self) -> list[str]:
        """Core components that produced no events (should be empty)."""
        present = self.components()
        return [name for name in CORE_COMPONENTS if not present.get(name)]


def run_traced(scenario: str, *, seed: int = 1,
               total_bytes: int = 200_000, loss: float = 0.02,
               capacity: int = 65536,
               profile: bool = True,
               allocations: bool = False) -> TraceRunResult:
    """Run ``scenario`` with tracing/metrics/profiling enabled.

    ``scenario`` is an experiment name (``cc-division``,
    ``ack-reduction``, ``retransmission``) or a chaos plan name
    (``blackout``, ``corruption``, ...).  ``allocations`` additionally
    tracks per-span allocation deltas via ``tracemalloc`` (slow; only
    for ``repro profile --alloc``).  Observability is switched off
    again before returning, whatever happens inside the scenario.
    """
    from repro.chaos import PLANS, run_plan

    if scenario not in EXPERIMENT_SCENARIOS and scenario not in PLANS:
        raise ObservabilityError(
            f"unknown scenario {scenario!r}; have "
            f"{', '.join(known_scenarios())}")

    obs.reset()
    sink = obs.enable(capacity=capacity, profile=profile,
                      allocations=allocations)
    try:
        outcome = _run_scenario(scenario, seed=seed, total_bytes=total_bytes,
                                loss=loss, run_plan=run_plan, plans=PLANS)
    finally:
        obs.disable()
    return TraceRunResult(
        scenario=scenario,
        seed=seed,
        events=sink.events,
        events_emitted=sink.emitted,
        events_dropped=sink.dropped,
        metrics=obs.METRICS.snapshot(),
        metrics_text=obs.METRICS.render_text(),
        outcome=outcome,
    )


def _run_scenario(scenario: str, *, seed: int, total_bytes: int, loss: float,
                  run_plan, plans) -> Any:
    if scenario in plans:
        return run_plan(scenario, seed=seed, total_bytes=total_bytes)
    if scenario == "cc-division":
        from repro.sidecar.cc_division import run_cc_division

        return run_cc_division(total_bytes=total_bytes, loss_rate=loss,
                               sidecar=True, seed=seed)
    if scenario == "ack-reduction":
        from repro.sidecar.ack_reduction import run_ack_reduction

        return run_ack_reduction(total_bytes=total_bytes, loss_rate=loss,
                                 sidecar=True, seed=seed)
    from repro.sidecar.retransmission import run_retransmission

    return run_retransmission(total_bytes=total_bytes, loss_rate=loss,
                              innet_retx=True, seed=seed)


def summarize(result: TraceRunResult) -> str:
    """The ``--summary`` text: trace tallies above the metrics table."""
    ratio = (result.events_dropped / result.events_emitted
             if result.events_emitted else 0.0)
    lines = [
        f"scenario: {result.scenario} (seed {result.seed})",
        f"trace: {len(result.events)} events buffered "
        f"({result.events_emitted} emitted, {result.events_dropped} "
        f"dropped by the ring, drop ratio {ratio:.4f})",
    ]
    if result.events_dropped:
        lines.append(
            f"WARNING: ring buffer truncated the trace -- dropped/emitted "
            f"= {result.events_dropped}/{result.events_emitted} "
            f"({ratio:.1%}); the oldest events are gone and analyses of "
            f"this trace are incomplete (raise --capacity)")
    components = result.components()
    if components:
        lines.append("events by component: "
                     + format_component_tally(components))
    missing = result.missing_core_components()
    if missing:
        lines.append(f"WARNING: no events from: {', '.join(missing)}")
    lines.append("")
    lines.append("metrics:")
    lines.append(result.metrics_text)
    return "\n".join(lines)
