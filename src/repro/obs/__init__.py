"""Unified observability: tracing, metrics, and profiling (``repro.obs``).

Three cooperating pieces, shared by every layer of the reproduction:

* :mod:`repro.obs.metrics` -- labeled ``Counter``/``Gauge``/``Histogram``
  families in a :class:`MetricsRegistry` with snapshot/reset and
  text/JSON rendering;
* :mod:`repro.obs.trace` -- a structured log of typed events stamped
  with virtual time, held in a capped ring buffer and exportable as
  JSONL (the vocabulary lives in :mod:`repro.obs.schema`);
* :mod:`repro.obs.profile` -- wall-clock spans over the quACK hot paths
  feeding latency histograms.

The module-level singletons (:data:`TRACER`, :data:`METRICS`,
:data:`PROFILER`) are what the instrumentation points inside netsim,
transport, quack, and sidecar talk to.  They are **off by default** and
cost one attribute load plus a branch per instrumentation point while
off -- simulations that do not ask for observability pay nothing
measurable (``benchmarks/test_obs_overhead.py`` pins this down).

Typical use (what ``python -m repro trace`` does)::

    from repro import obs

    sink = obs.enable()                 # tracing + metrics + profiling on
    ... run a scenario ...
    obs.export_jsonl(sink.events, "trace.jsonl")
    print(obs.METRICS.render_text())
    obs.disable()

Instrumentation points follow one pattern -- guard, then emit::

    from repro import obs

    if obs.TRACER.enabled:
        obs.TRACER.emit("link.drop", self.sim.now, link=self.name,
                        kind=packet.kind.value, size=packet.size_bytes,
                        reason="queue")
        obs.count("netsim_link_dropped_total", link=self.name,
                  reason="queue")
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    json_safe,
)
from repro.obs.profile import SPAN_METRIC, Profiler
from repro.obs.trace import (
    RingSink,
    TraceEvent,
    Tracer,
    component_tally,
    dump_jsonl,
    export_jsonl,
    format_component_tally,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS", "json_safe",
    "TraceEvent", "RingSink", "Tracer", "dump_jsonl", "export_jsonl",
    "component_tally", "format_component_tally",
    "Profiler", "SPAN_METRIC", "FlightRecorder",
    "TRACER", "METRICS", "PROFILER", "FLIGHT",
    "enable", "enable_metrics", "disable", "reset",
    "count", "gauge", "observe",
]

#: The process-wide trace switchboard (off until :func:`enable`).
TRACER = Tracer()

#: The process-wide metrics registry.  Always writable; hot paths only
#: touch it behind ``TRACER.enabled`` so disabled runs skip it entirely.
METRICS = MetricsRegistry()

#: The process-wide wall-clock profiler (records into :data:`METRICS`).
PROFILER = Profiler()

#: The process-wide flight recorder (disarmed until configured).
FLIGHT = FlightRecorder()


def enable(capacity: int = 65536, profile: bool = True,
           allocations: bool = False) -> RingSink:
    """Turn observability on; returns the fresh trace sink.

    ``allocations=True`` asks the profiler to attribute ``tracemalloc``
    byte deltas to each call path (expensive; timing runs should leave
    it off).
    """
    sink = TRACER.configure(capacity)
    if profile:
        PROFILER.configure(METRICS, allocations=allocations)
    return sink


def enable_metrics(profile: bool = False) -> None:
    """Metrics-only mode: counters/histograms record, events are dropped.

    Flips ``TRACER.enabled`` without installing a sink, so every guarded
    instrumentation point runs its metric updates while ``emit`` remains
    a no-op -- the mode sweep workers use to feed the cross-process
    aggregator without paying for (or shipping) an event ring.
    """
    TRACER.sink = None
    TRACER.enabled = True
    if profile:
        PROFILER.configure(METRICS)


def disable() -> None:
    """Turn tracing and profiling off (collected data stays readable)."""
    TRACER.disable()
    PROFILER.disable()


def reset() -> None:
    """Zero the metrics, profiler paths, and buffered trace events."""
    METRICS.reset()
    PROFILER.reset()
    if TRACER.sink is not None:
        TRACER.sink.clear()


# -- terse instrumentation helpers ------------------------------------------
#
# These keep call sites one line each.  They are *not* pre-guarded: hot
# paths must check ``TRACER.enabled`` first so the disabled cost stays at
# one branch.

def count(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment ``name{labels}`` in the global registry."""
    METRICS.counter(name, labels=tuple(sorted(labels))).labels(
        **labels).inc(amount)


def gauge(name: str, value: float, **labels: object) -> None:
    """Set ``name{labels}`` in the global registry."""
    METRICS.gauge(name, labels=tuple(sorted(labels))).labels(
        **labels).set(value)


def observe(name: str, value: float,
            buckets: Sequence[float] = DEFAULT_BUCKETS,
            **labels: object) -> None:
    """Observe ``value`` into histogram ``name{labels}``."""
    METRICS.histogram(name, labels=tuple(sorted(labels)),
                      buckets=buckets).labels(**labels).observe(value)
