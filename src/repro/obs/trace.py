"""Structured trace log: typed events stamped with virtual time.

A :class:`TraceEvent` is one thing that happened in a simulation --
``link.drop``, ``quack.decode``, ``sidecar.health`` -- stamped with the
*virtual* clock of the :class:`~repro.netsim.core.Simulator` that
produced it.  Events flow into a sink:

* when tracing is disabled (the default), instrumentation points pay one
  attribute load and a falsy branch -- no event object is built, nothing
  is stored (the "null sink" fast path the bench guard pins down);
* when enabled, events land in a :class:`RingSink`, a capped ring buffer
  that drops the *oldest* events once full and counts what it dropped,
  so a long simulation can always be traced with bounded memory.

Export is JSONL, one event per line, ``{"t": <virtual seconds>,
"type": "<component.event>", ...fields}``, with non-finite floats
sanitized to ``null`` so every line is strictly valid JSON.  The event
vocabulary and per-type required fields live in
:mod:`repro.obs.schema`.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from collections import deque
from typing import IO, Iterable

from repro.obs.metrics import json_safe


class TraceEvent:
    """One timestamped, typed occurrence."""

    __slots__ = ("time", "type", "fields")

    def __init__(self, time: float, type: str, fields: dict) -> None:
        self.time = time
        self.type = type
        self.fields = fields

    def to_dict(self) -> dict:
        """A JSON-safe flat dictionary (the JSONL record)."""
        record = {"t": json_safe(self.time), "type": self.type}
        for key, value in self.fields.items():
            record[key] = json_safe(value)
        return record

    def __repr__(self) -> str:
        return f"TraceEvent({self.time:.6f}, {self.type!r}, {self.fields!r})"


class RingSink:
    """Capped ring buffer of events; drops the oldest when full."""

    __slots__ = ("capacity", "_events", "emitted", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            from repro.errors import ObservabilityError
            raise ObservabilityError(
                f"ring capacity must be >= 1 event, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        self.dropped = 0

    def tally(self) -> dict[str, int]:
        """Event counts by type (the summary table's trace section).

        When the ring had to drop events the tally also carries a
        ``dropped_events`` entry, so any analysis built on a truncated
        buffer sees that truncation happened instead of silently reading
        a partial trace as complete.  (No real event type can collide:
        the vocabulary is ``<component>.<event>`` with a dot.)
        """
        counts = dict(_TallyCounter(event.type for event in self._events))
        if self.dropped:
            counts["dropped_events"] = self.dropped
        return counts


class Tracer:
    """The process-wide switchboard instrumentation points talk to.

    ``enabled`` is a plain attribute so hot paths can guard with
    ``if TRACER.enabled:`` and skip even the argument packing when
    tracing is off.  :meth:`emit` double-checks, so un-guarded callers
    are merely slower, never wrong.
    """

    __slots__ = ("enabled", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.sink: RingSink | None = None

    def configure(self, capacity: int = 65536) -> RingSink:
        """Install a fresh ring sink and switch tracing on."""
        self.sink = RingSink(capacity)
        self.enabled = True
        return self.sink

    def disable(self) -> None:
        """Switch tracing off; the sink (and its events) stay readable."""
        self.enabled = False

    def emit(self, type: str, time: float, **fields: object) -> None:
        """Record one event (no-op unless enabled with a sink)."""
        if not self.enabled or self.sink is None:
            return
        self.sink.emit(TraceEvent(time, type, fields))

    @property
    def events(self) -> list[TraceEvent]:
        return self.sink.events if self.sink is not None else []


def component_tally(events: Iterable["TraceEvent | dict"]) -> dict[str, int]:
    """Event counts by component prefix (link/transport/quack/...).

    Accepts both in-memory :class:`TraceEvent` objects and decoded JSONL
    records; shared by ``python -m repro trace --summary``, the bench
    report's Observability section, and the analytics engine so the
    tallying/formatting logic exists exactly once.
    """
    from repro.obs.schema import component_of

    tally: dict[str, int] = {}
    for event in events:
        etype = event["type"] if isinstance(event, dict) else event.type
        component = component_of(etype)
        tally[component] = tally.get(component, 0) + 1
    return tally


def format_component_tally(tally: dict[str, int],
                           markdown: bool = False) -> str:
    """Render a component tally as text (``a=1, b=2``) or a markdown table."""
    if markdown:
        lines = ["| component | events |", "|---|---|"]
        lines.extend(f"| {name} | {count} |"
                     for name, count in sorted(tally.items()))
        return "\n".join(lines)
    return ", ".join(f"{name}={count}"
                     for name, count in sorted(tally.items()))


def dump_jsonl(events: Iterable[TraceEvent], handle: IO[str]) -> int:
    """Write events as JSONL; returns the number of lines written.

    ``allow_nan=False`` is belt and braces: :meth:`TraceEvent.to_dict`
    already sanitized non-finite floats to None, so a violation here is
    a bug worth crashing on rather than invalid output.
    """
    written = 0
    for event in events:
        handle.write(json.dumps(event.to_dict(), allow_nan=False))
        handle.write("\n")
        written += 1
    return written


def export_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write events to ``path`` as JSONL; returns the line count."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_jsonl(events, handle)
