"""Loss models for simulated links.

The sidecar story is about paths with "a single hop with nontrivial
noncongestive loss" (paper, Section 1) -- satellite, Wi-Fi, cellular.  We
provide the standard models:

* :class:`NoLoss` -- a clean wired hop;
* :class:`BernoulliLoss` -- i.i.d. random loss at a fixed rate;
* :class:`GilbertElliottLoss` -- bursty two-state loss (good/bad channel),
  the canonical wireless model;
* :class:`DeterministicLoss` -- drop an explicit set of packet ordinals,
  for reproducible unit tests.

Models are stateful; use one instance per link direction.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.netsim.packet import Packet


class LossModel(ABC):
    """Decides the fate of each packet crossing a link."""

    @abstractmethod
    def should_drop(self, packet: Packet) -> bool:
        """True if this packet is lost on the wire."""


class NoLoss(LossModel):
    def should_drop(self, packet: Packet) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Each packet is dropped independently with probability ``rate``."""

    def __init__(self, rate: float, rng: random.Random | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else random.Random(0x10557)

    def should_drop(self, packet: Packet) -> bool:
        return self.rng.random() < self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.rate})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov loss: a good state and a lossy bad state.

    Args:
        p_good_to_bad: transition probability good -> bad, per packet.
        p_bad_to_good: transition probability bad -> good, per packet.
        loss_good: drop probability while in the good state.
        loss_bad: drop probability while in the bad state.

    The steady-state loss rate is
    ``(pi_bad * loss_bad + pi_good * loss_good)`` with
    ``pi_bad = p_gb / (p_gb + p_bg)``; :meth:`steady_state_loss_rate`
    computes it for calibrating experiments.
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float,
                 loss_good: float = 0.0, loss_bad: float = 0.5,
                 rng: random.Random | None = None) -> None:
        for name, value in (("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good),
                            ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.rng = rng if rng is not None else random.Random(0x6E0)
        self._in_bad_state = False

    def should_drop(self, packet: Packet) -> bool:
        if self._in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        return self.rng.random() < rate

    def steady_state_loss_rate(self) -> float:
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0:
            return self.loss_bad if self._in_bad_state else self.loss_good
        pi_bad = self.p_good_to_bad / denominator
        return pi_bad * self.loss_bad + (1 - pi_bad) * self.loss_good

    def __repr__(self) -> str:
        return (f"GilbertElliottLoss(gb={self.p_good_to_bad}, "
                f"bg={self.p_bad_to_good}, lg={self.loss_good}, "
                f"lb={self.loss_bad})")


class DeterministicLoss(LossModel):
    """Drop the packets at the given 0-based ordinals crossing the link."""

    def __init__(self, drop_ordinals: set[int] | frozenset[int]) -> None:
        self.drop_ordinals = frozenset(drop_ordinals)
        self._seen = 0

    def should_drop(self, packet: Packet) -> bool:
        drop = self._seen in self.drop_ordinals
        self._seen += 1
        return drop

    def __repr__(self) -> str:
        return f"DeterministicLoss({sorted(self.drop_ordinals)!r})"
