"""Discrete-event network simulator: the substrate for sidecar protocols.

Public surface:

* :class:`~repro.netsim.core.Simulator` -- the event loop;
* :class:`~repro.netsim.packet.Packet`, :class:`~repro.netsim.packet.PacketKind`;
* :class:`~repro.netsim.link.Link` and the loss models in
  :mod:`repro.netsim.loss`;
* :class:`~repro.netsim.node.Host`, :class:`~repro.netsim.node.Router`;
* :func:`~repro.netsim.topology.build_path`,
  :class:`~repro.netsim.topology.HopSpec`;
* measurement helpers in :mod:`repro.netsim.trace`.
"""

from repro.netsim.core import (
    EventHandle,
    Simulator,
    Timer,
    default_scheduler,
    set_default_scheduler,
)
from repro.netsim.sched import CalendarScheduler, HeapScheduler
from repro.netsim.faults import (
    Blackout,
    BurstLoss,
    CompositeFault,
    Corruption,
    DelaySpike,
    Duplication,
    FaultDecision,
    FaultInjector,
    FaultInjectorStats,
    SIDECAR_KINDS,
)
from repro.netsim.link import Link, LinkStats
from repro.netsim.loss import (
    BernoulliLoss,
    DeterministicLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from repro.netsim.node import ForwardingPolicy, Host, Node, Router
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.reorder import JitterLink
from repro.netsim.topology import (
    HopSpec,
    PathTopology,
    build_parallel_paths,
    build_path,
)
from repro.netsim.trace import EventTrace, FlowMonitor, PacketCounter

__all__ = [
    "Simulator",
    "EventHandle",
    "Timer",
    "HeapScheduler",
    "CalendarScheduler",
    "default_scheduler",
    "set_default_scheduler",
    "Packet",
    "PacketKind",
    "Link",
    "LinkStats",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DeterministicLoss",
    "Node",
    "Host",
    "Router",
    "ForwardingPolicy",
    "HopSpec",
    "PathTopology",
    "build_path",
    "build_parallel_paths",
    "JitterLink",
    "FaultInjector",
    "FaultInjectorStats",
    "FaultDecision",
    "Blackout",
    "BurstLoss",
    "CompositeFault",
    "Corruption",
    "DelaySpike",
    "Duplication",
    "SIDECAR_KINDS",
    "FlowMonitor",
    "PacketCounter",
    "EventTrace",
]
