"""Reordering links (extension X3).

Section 3.3 of the paper: "Packets may also be re-ordered, causing
missing packets to later be received. Thus discarding missing packets
can be problematic."  The base :class:`~repro.netsim.link.Link` is FIFO
end-to-end (serialization + fixed propagation), so nothing in the core
scenarios reorders; this module adds a link with per-packet propagation
jitter, under which a packet can overtake its predecessor on the wire.

With a :class:`JitterLink` in the path, the
:class:`~repro.sidecar.consumer.QuackConsumer` grace knob becomes
observable: grace=1 declares reordered packets lost, desynchronizing the
cumulative power sums when they arrive after all (decode failures from
then on); a grace of a few quACKs rides out the jitter.  See
``tests/netsim/test_reorder.py`` and the sidecar reordering tests.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.loss import LossModel
from repro.netsim.packet import Packet


class JitterLink(Link):
    """A link whose propagation delay varies uniformly per packet.

    Each packet propagates for ``delay_s + U(0, jitter_s)``.  Two packets
    serialized back-to-back (gap = serialization time) swap order when the
    first draws more than ``gap`` extra jitter than the second -- so
    meaningful reordering needs ``jitter_s`` on the order of the packet
    serialization time or larger.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float, delay_s: float,
                 deliver: Callable[[Packet], None],
                 jitter_s: float,
                 queue_packets: int = 256,
                 loss_model: LossModel | None = None,
                 rng: random.Random | None = None,
                 name: str = "jitter-link") -> None:
        super().__init__(sim, bandwidth_bps, delay_s, deliver,
                         queue_packets=queue_packets, loss_model=loss_model,
                         name=name)
        if jitter_s < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter_s}")
        self.jitter_s = jitter_s
        self.rng = rng if rng is not None else random.Random(0x71772)

    def _propagation_delay(self) -> float:
        return self.delay_s + self.rng.uniform(0.0, self.jitter_s)

    def __repr__(self) -> str:
        return (f"JitterLink({self.name}, {self.bandwidth_bps / 1e6:.1f} Mbps, "
                f"{self.delay_s * 1e3:.1f}+U(0,{self.jitter_s * 1e3:.1f}) ms)")


def install_jitter(link_slot_owner, neighbor: str, sim: Simulator,
                   base: Link, jitter_s: float,
                   rng: random.Random | None = None) -> JitterLink:
    """Replace a node's outgoing link with a jittery clone of it."""
    jittery = JitterLink(sim, base.bandwidth_bps, base.delay_s, base.deliver,
                         jitter_s, queue_packets=base.queue_packets,
                         loss_model=base.loss_model, rng=rng,
                         name=base.name)
    link_slot_owner.attach_link(neighbor, jittery)
    return jittery
