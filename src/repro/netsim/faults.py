"""Composable, seeded, schedulable fault injectors for links.

Loss models (:mod:`repro.netsim.loss`) describe a channel's *steady*
behavior; fault injectors describe its *pathologies* -- the scripted,
repeatable adverse events a chaos harness needs: blackout windows, bit
corruption, datagram duplication, scheduled loss bursts, and delay
spikes.  An injector attaches to a :class:`~repro.netsim.link.Link`
(``faults=`` at construction, or per-direction ``faults_up`` /
``faults_down`` on a :class:`~repro.netsim.topology.HopSpec`) and is
consulted once per packet, after the loss model, at the moment the
packet finishes serialization:

* the injector returns a :class:`FaultDecision`;
* the link drops, delays, transforms, and/or duplicates accordingly,
  counting what happened in ``LinkStats.dropped_fault`` /
  ``duplicated_fault`` / ``corrupted_fault``.

Injectors are deliberately payload-agnostic: this module knows nothing
about the sidecar protocol.  :class:`Corruption` duck-types -- any
payload dataclass with a ``frame: bytes`` field gets its bytes flipped;
everything else can be handled by passing a custom ``corrupter`` (the
chaos package supplies a sidecar-aware one).  Randomized injectors take a
seed, so every chaos scenario replays identically.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.errors import SimulationError
from repro.netsim.packet import Packet, PacketKind

#: A window of simulated time, ``(start_s, end_s)``, half-open.
Window = tuple[float, float]


def _check_windows(windows: Sequence[Window]) -> tuple[Window, ...]:
    checked = []
    for start, end in windows:
        if end <= start or start < 0:
            raise SimulationError(f"bad fault window ({start}, {end})")
        checked.append((float(start), float(end)))
    return tuple(checked)


def in_window(windows: Sequence[Window], now: float) -> bool:
    return any(start <= now < end for start, end in windows)


@dataclass(slots=True)
class FaultDecision:
    """What should happen to one packet.

    ``copies`` is the *total* number of deliveries: 1 is normal, 2 means
    the datagram was duplicated, 0 is equivalent to ``drop``.

    Allocated on the per-packet fast path, hence ``slots=True``.
    """

    drop: bool = False
    copies: int = 1
    extra_delay: float = 0.0
    replacement: Packet | None = None

    #: The no-op decision, shared (it is never mutated).
    @classmethod
    def none(cls) -> "FaultDecision":
        return _NO_FAULT


_NO_FAULT = FaultDecision()


@dataclass(slots=True)
class FaultInjectorStats:
    considered: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    delayed: int = 0


class FaultInjector:
    """Base injector: kind filtering plus per-injector statistics.

    Subclasses implement :meth:`_decide`; the base class handles the
    ``kinds`` filter (None = all traffic) and bookkeeping.
    """

    def __init__(self, kinds: Iterable[PacketKind] | None = None,
                 name: str | None = None) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.name = name if name is not None else type(self).__name__
        self.stats = FaultInjectorStats()

    def on_transmit(self, packet: Packet, now: float) -> FaultDecision:
        if self.kinds is not None and packet.kind not in self.kinds:
            return FaultDecision.none()
        self.stats.considered += 1
        decision = self._decide(packet, now)
        effects = []
        if decision.drop or decision.copies == 0:
            self.stats.dropped += 1
            effects.append("drop")
        if decision.replacement is not None:
            self.stats.corrupted += 1
            effects.append("corrupt")
        if decision.copies > 1:
            self.stats.duplicated += 1
            effects.append("duplicate")
        if decision.extra_delay > 0:
            self.stats.delayed += 1
            effects.append("delay")
        if effects and obs.TRACER.enabled:
            for effect in effects:
                obs.TRACER.emit("fault.activate", now, injector=self.name,
                                kind=packet.kind.value, effect=effect)
                obs.count("netsim_fault_activations_total",
                          injector=self.name, effect=effect)
        return decision

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        raise NotImplementedError

    def __repr__(self) -> str:
        kinds = "all" if self.kinds is None \
            else "/".join(sorted(k.value for k in self.kinds))
        return f"{self.name}({kinds})"


#: The sidecar channel: quACK snapshots plus reset/config handshakes.
SIDECAR_KINDS = frozenset({PacketKind.QUACK, PacketKind.CONTROL})


class Blackout(FaultInjector):
    """Drop everything (of the filtered kinds) inside the given windows.

    ``Blackout([(2.0, 4.0)], kinds=SIDECAR_KINDS)`` models a sidecar
    channel outage -- PEP boxes reboot, UDP gets ACL'd away -- while the
    base transport keeps flowing.
    """

    def __init__(self, windows: Sequence[Window],
                 kinds: Iterable[PacketKind] | None = None,
                 name: str | None = None) -> None:
        super().__init__(kinds=kinds, name=name)
        self.windows = _check_windows(windows)

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        if in_window(self.windows, now):
            return FaultDecision(drop=True)
        return FaultDecision.none()


def flip_frame_bits(frame: bytes, rng: random.Random,
                    max_flips: int = 3) -> bytes:
    """Flip 1..max_flips random bits of ``frame`` (never a no-op)."""
    if not frame:
        return frame
    data = bytearray(frame)
    flips = min(rng.randint(1, max_flips), len(data) * 8)
    # Distinct positions: an even number of flips of the same bit would
    # silently undo itself.
    for position in rng.sample(range(len(data) * 8), flips):
        data[position // 8] ^= 1 << (position % 8)
    return bytes(data)


def default_corrupter(packet: Packet,
                      rng: random.Random) -> Packet | None:
    """Bit-flip any payload that carries raw ``frame`` bytes.

    Returns the corrupted packet, or None when this payload carries no
    byte frame to corrupt (the injector then leaves the packet intact).
    """
    payload = packet.payload
    frame = getattr(payload, "frame", None)
    if not isinstance(frame, bytes) or not frame:
        return None
    mangled = dataclasses.replace(payload, frame=flip_frame_bits(frame, rng))
    return dataclasses.replace(packet, payload=mangled)


class Corruption(FaultInjector):
    """Corrupt a fraction of packets (seeded, replayable).

    ``corrupter(packet, rng)`` builds the corrupted replacement;
    :func:`default_corrupter` flips bits in ``payload.frame`` bytes.  The
    windows restrict corruption to scheduled intervals (default: always).
    """

    def __init__(self, rate: float, seed: int = 0,
                 kinds: Iterable[PacketKind] | None = None,
                 corrupter: Callable[[Packet, random.Random],
                                     Packet | None] = default_corrupter,
                 windows: Sequence[Window] | None = None,
                 name: str | None = None) -> None:
        if not 0 <= rate <= 1:
            raise SimulationError(f"corruption rate must be in [0,1], got {rate}")
        super().__init__(kinds=kinds, name=name)
        self.rate = rate
        self.rng = random.Random(seed)
        self.corrupter = corrupter
        self.windows = _check_windows(windows) if windows is not None else None

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        if self.windows is not None and not in_window(self.windows, now):
            return FaultDecision.none()
        if self.rng.random() >= self.rate:
            return FaultDecision.none()
        replacement = self.corrupter(packet, self.rng)
        if replacement is None:
            return FaultDecision.none()
        return FaultDecision(replacement=replacement)


class Duplication(FaultInjector):
    """Deliver a fraction of packets more than once (seeded)."""

    def __init__(self, rate: float, seed: int = 0, copies: int = 2,
                 kinds: Iterable[PacketKind] | None = None,
                 name: str | None = None) -> None:
        if not 0 <= rate <= 1:
            raise SimulationError(f"duplication rate must be in [0,1], got {rate}")
        if copies < 2:
            raise SimulationError(f"duplication needs >= 2 copies, got {copies}")
        super().__init__(kinds=kinds, name=name)
        self.rate = rate
        self.copies = copies
        self.rng = random.Random(seed)

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        if self.rng.random() < self.rate:
            return FaultDecision(copies=self.copies)
        return FaultDecision.none()


class BurstLoss(FaultInjector):
    """Scheduled loss bursts: inside each window, drop at ``rate``.

    Unlike :class:`~repro.netsim.loss.GilbertElliottLoss` (a stochastic
    *channel*), this is a scripted *event*: the burst happens exactly
    when the scenario says, every run.
    """

    def __init__(self, windows: Sequence[Window], rate: float = 1.0,
                 seed: int = 0,
                 kinds: Iterable[PacketKind] | None = None,
                 name: str | None = None) -> None:
        if not 0 < rate <= 1:
            raise SimulationError(f"burst loss rate must be in (0,1], got {rate}")
        super().__init__(kinds=kinds, name=name)
        self.windows = _check_windows(windows)
        self.rate = rate
        self.rng = random.Random(seed)

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        if in_window(self.windows, now) and self.rng.random() < self.rate:
            return FaultDecision(drop=True)
        return FaultDecision.none()


class DelaySpike(FaultInjector):
    """Add ``extra_delay_s`` of propagation inside the given windows.

    Models bufferbloat episodes or a rerouting event.  Note the extra
    delay can reorder packets across a window edge, exactly as a real
    spike does.
    """

    def __init__(self, windows: Sequence[Window], extra_delay_s: float,
                 kinds: Iterable[PacketKind] | None = None,
                 name: str | None = None) -> None:
        if extra_delay_s <= 0:
            raise SimulationError(
                f"delay spike must be positive, got {extra_delay_s}")
        super().__init__(kinds=kinds, name=name)
        self.windows = _check_windows(windows)
        self.extra_delay_s = extra_delay_s

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        if in_window(self.windows, now):
            return FaultDecision(extra_delay=self.extra_delay_s)
        return FaultDecision.none()


class CompositeFault(FaultInjector):
    """Run several injectors in order, merging their decisions.

    Drops short-circuit (later injectors are not consulted); extra
    delays add; copies take the maximum; a later replacement supersedes
    an earlier one (its corrupter saw the already-corrupted packet).
    """

    def __init__(self, injectors: Sequence[FaultInjector],
                 name: str | None = None) -> None:
        super().__init__(kinds=None, name=name)
        self.injectors = list(injectors)

    def on_transmit(self, packet: Packet, now: float) -> FaultDecision:
        merged = FaultDecision()
        current = packet
        for injector in self.injectors:
            decision = injector.on_transmit(current, now)
            if decision.drop or decision.copies == 0:
                return FaultDecision(drop=True)
            merged.extra_delay += decision.extra_delay
            merged.copies = max(merged.copies, decision.copies)
            if decision.replacement is not None:
                merged.replacement = decision.replacement
                current = decision.replacement
        return merged

    def _decide(self, packet: Packet, now: float) -> FaultDecision:
        raise AssertionError("CompositeFault overrides on_transmit")
