"""Measurement helpers: flow monitors and event traces.

The experiment harness needs goodput, completion time, per-kind packet
counts, and time series of deliveries; these classes collect them without
entangling measurement with protocol logic (protocol agents call
``record_*`` at the relevant points, or a :class:`PacketCounter` is added
as a router tap).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable

from repro.netsim.packet import Packet, PacketKind


@dataclass
class DeliverySample:
    time: float
    cumulative_bytes: int


class FlowMonitor:
    """Tracks application-level progress of one transfer."""

    def __init__(self, name: str = "flow") -> None:
        self.name = name
        self.samples: list[DeliverySample] = []
        self.total_bytes = 0
        self.first_delivery: float | None = None
        self.last_delivery: float | None = None
        self.completed_at: float | None = None

    def record_delivery(self, byte_count: int, now: float) -> None:
        self.total_bytes += byte_count
        if self.first_delivery is None:
            self.first_delivery = now
        self.last_delivery = now
        self.samples.append(DeliverySample(now, self.total_bytes))

    def record_completion(self, now: float) -> None:
        self.completed_at = now

    @property
    def duration(self) -> float:
        """Seconds from time zero to the last delivery."""
        return self.last_delivery if self.last_delivery is not None else 0.0

    def goodput_bps(self, until: float | None = None) -> float:
        """Average delivered rate over [0, until] (or the full trace)."""
        horizon = until if until is not None else self.duration
        if horizon <= 0:
            return 0.0
        if until is None:
            return self.total_bytes * 8 / horizon
        index = bisect.bisect_right([s.time for s in self.samples], until) - 1
        delivered = self.samples[index].cumulative_bytes if index >= 0 else 0
        return delivered * 8 / horizon

    def bytes_delivered_by(self, time: float) -> int:
        index = bisect.bisect_right([s.time for s in self.samples], time) - 1
        return self.samples[index].cumulative_bytes if index >= 0 else 0


class PacketCounter:
    """A router/host tap counting packets and bytes by kind."""

    def __init__(self) -> None:
        self.packets: dict[PacketKind, int] = {kind: 0 for kind in PacketKind}
        self.bytes: dict[PacketKind, int] = {kind: 0 for kind in PacketKind}

    def __call__(self, packet: Packet) -> None:
        self.packets[packet.kind] += 1
        self.bytes[packet.kind] += packet.size_bytes

    @property
    def total_packets(self) -> int:
        return sum(self.packets.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())


@dataclass
class TraceEvent:
    time: float
    where: str
    what: str
    packet_uid: int
    kind: str
    size_bytes: int


class EventTrace:
    """An append-only log of packet events, filterable for debugging."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped_events = 0

    def record(self, time: float, where: str, what: str,
               packet: Packet) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(time, where, what, packet.uid,
                                      packet.kind.value, packet.size_bytes))

    def filtered(self, where: str | None = None,
                 what: str | None = None) -> Iterable[TraceEvent]:
        for event in self.events:
            if where is not None and event.where != where:
                continue
            if what is not None and event.what != what:
                continue
            yield event

    def __len__(self) -> int:
        return len(self.events)
