"""Nodes: hosts at the edge, routers (and proxies) on the path.

The paper's deployment model (Section 2): "proxies on a connection's path
should act as regular routers for packets between the end hosts -- they
can withhold or delay packets, but they cannot modify the packets or make
decisions based on their contents."  The class split mirrors that:

* :class:`Host` -- a connection endpoint; dispatches received packets to
  protocol handlers by :class:`~repro.netsim.packet.PacketKind`;
* :class:`Router` -- forwards by destination.  Two extension points let a
  sidecar ride along without violating the model:

  - *taps* observe every forwarded packet (reading only observable fields
    -- sizes, identifiers); this is how a sidecar accumulates its quACK;
  - a *forwarding policy* may take custody of a packet and re-emit it
    later (withhold/delay/duplicate), which is how the congestion-control
    division proxy paces, and how the in-network retransmitter buffers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Protocol

from repro.errors import SimulationError
from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet, PacketKind


class Node(ABC):
    """A network element with named outgoing links and a routing table.

    Nodes are allocated in bulk by large sweeps (one per simulated
    element), so the hierarchy is ``__slots__``-based.
    """

    __slots__ = ("sim", "name", "links", "routes")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.links: dict[str, Link] = {}
        self.routes: dict[str, str] = {}

    def attach_link(self, neighbor: str, link: Link) -> None:
        self.links[neighbor] = link

    def add_route(self, destination: str, next_hop: str) -> None:
        self.routes[destination] = next_hop

    def send(self, packet: Packet, via: str | None = None) -> bool:
        """Route a locally-originated (or forwarded) packet one hop on.

        ``via`` pins the first hop (multipath senders steering a packet
        onto a specific path); otherwise the routing table decides.
        """
        if packet.dst == self.name:
            raise SimulationError(f"{self.name} tried to send a packet to itself")
        next_hop = via if via is not None else self.routes.get(packet.dst)
        if next_hop is None:
            raise SimulationError(
                f"{self.name} has no route to {packet.dst!r} "
                f"(routes: {sorted(self.routes)})"
            )
        link = self.links.get(next_hop)
        if link is None:
            raise SimulationError(
                f"{self.name} routes {packet.dst!r} via {next_hop!r} but has "
                f"no link to it"
            )
        return link.send(packet)

    @abstractmethod
    def receive(self, packet: Packet) -> None:
        """Called by an incoming link when a packet arrives here."""


class Host(Node):
    """An end host; delivers arriving packets to registered handlers.

    Handlers are registered per :class:`PacketKind` -- the transport
    endpoint takes DATA/ACK, a sidecar library on the host takes
    QUACK/CONTROL ("the only changes that need to be made to the end
    hosts are installing a library", Section 2.1).
    """

    __slots__ = ("_handlers", "received_count")

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._handlers: dict[PacketKind, list[Callable[[Packet], None]]] = {}
        self.received_count = 0

    def add_handler(self, kind: PacketKind,
                    handler: Callable[[Packet], None]) -> None:
        self._handlers.setdefault(kind, []).append(handler)

    def receive(self, packet: Packet) -> None:
        if packet.dst != self.name:
            raise SimulationError(
                f"host {self.name} received a packet addressed to {packet.dst}"
            )
        self.received_count += 1
        handlers = self._handlers.get(packet.kind, ())
        if not handlers:
            raise SimulationError(
                f"host {self.name} has no handler for {packet.kind.value!r} packets"
            )
        for handler in handlers:
            handler(packet)


class ForwardingPolicy(Protocol):
    """Optional custody hook for routers (pacing, buffering, retransmission).

    ``on_packet`` returns True to let the router forward immediately, or
    False to take custody; the policy then calls ``router.emit(packet)``
    (possibly later, possibly more than once for retransmissions).
    """

    def on_packet(self, packet: Packet) -> bool: ...


class Router(Node):
    """Forwards packets toward their destination; hosts sidecar taps."""

    __slots__ = ("taps", "policy", "forwarded_count")

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.taps: list[Callable[[Packet], None]] = []
        self.policy: ForwardingPolicy | None = None
        self.forwarded_count = 0

    def add_tap(self, tap: Callable[[Packet], None]) -> None:
        """Observe every packet this router receives (read-only)."""
        self.taps.append(tap)

    def receive(self, packet: Packet) -> None:
        if packet.dst == self.name:
            # Sidecar-protocol traffic terminates at the proxy itself.
            for tap in self.taps:
                tap(packet)
            return
        for tap in self.taps:
            tap(packet)
        if self.policy is not None and not self.policy.on_packet(packet):
            return  # the policy took custody and will emit() later
        self.emit(packet)

    def emit(self, packet: Packet) -> bool:
        """Forward a packet toward its destination now."""
        self.forwarded_count += 1
        return self.send(packet)
