"""Packets as seen on the wire of the simulated network.

A packet models an E2E-encrypted datagram.  The split between what is
*observable* by on-path elements and what is *protected* is the crux of
the paper: middleboxes "cannot modify the packets or make decisions based
on their contents" (Section 2).  Concretely:

* observable by everyone: sizes, arrival times, source/destination, and
  the pseudorandom ``identifier`` (a function of the encrypted bytes --
  see :mod:`repro.ids`);
* ``protected`` is the decrypted view (packet numbers, ACK frames, ...)
  that only the two connection endpoints may read.  On-path code accessing
  it would be the simulation equivalent of breaking the encryption, so
  :meth:`Packet.protected_payload` enforces a capability check: callers
  must present the connection key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import SimulationError

_packet_ids = itertools.count()


def reset_packet_uids() -> None:
    """Restart the process-wide packet uid sequence from zero.

    Packet uids are allocated from a module-level counter, which is the
    one piece of state an experiment inherits from whatever ran before
    it in the same process.  The experiment entry points
    (``run_cc_division``, ``run_ack_reduction``, ``run_retransmission``,
    the chaos harness) call this on entry so that a run's uid sequence
    -- and therefore its netsim trace -- is a pure function of the run's
    own parameters, which is what makes farming runs out to worker
    processes (:mod:`repro.sweep`) reproducible regardless of how many
    tasks a worker has already executed.
    """
    global _packet_ids
    _packet_ids = itertools.count()


class PacketKind(Enum):
    """Coarse traffic class, used for tracing and for sidecar filters.

    A real sidecar classifies packets by address/port and direction; the
    enum stands in for that. ``DATA``/``ACK`` belong to the protected base
    protocol (a sidecar cannot see *which*, but our traces can);
    ``QUACK`` and ``CONTROL`` belong to the sidecar protocol itself, which
    is not encrypted end-to-end.
    """

    DATA = "data"
    ACK = "ack"
    QUACK = "quack"
    CONTROL = "control"


@dataclass(slots=True)
class Packet:
    """One datagram in flight (``slots=True``: the highest-volume
    allocation in any run).

    Attributes:
        src, dst: node names (routing is by destination name).
        size_bytes: wire size, used for serialization delay and queueing.
        kind: coarse class for tracing/filtering (see :class:`PacketKind`).
        identifier: the pseudorandom b-bit value a sidecar derives from
            the encrypted bytes; None for packets with no payload to hash
            (e.g. pure sidecar control traffic).
        flow_id: identifies the transport connection (observable in the
            same sense a UDP 4-tuple is observable).
        uid: unique per simulated packet; never reused, even across
            retransmissions carrying the same protected data.
    """

    src: str
    dst: str
    size_bytes: int
    kind: PacketKind = PacketKind.DATA
    identifier: int | None = None
    flow_id: str = "flow0"
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    #: ECN Congestion Experienced mark.  Lives in the IP header, so it is
    #: observable and *settable* by on-path elements (an AQM marks it),
    #: and echoed end-to-end inside the encrypted ACKs -- the one
    #: congestion signal a quACK cannot carry (paper, Section 2.2).
    ecn_ce: bool = False
    #: Payload of the *sidecar* protocol (QUACK/CONTROL packets), which is
    #: not E2E-encrypted: it is spoken hop-wise between consenting sidecars
    #: (paper, Section 2).  Always None on base-protocol packets.
    payload: Any = None
    #: Trace-context id stamped by the sender when tracing is enabled
    #: (None otherwise).  Deliberately *outside* the protected payload:
    #: it models an unauthenticated debug marker (like a spin bit or a
    #: tunnel header tag) that on-path elements may read, so lifecycle
    #: spans can be assembled without breaking the paper's threat model.
    #: Protocol behavior must never depend on it (DESIGN.md §13).
    trace_ctx: int | None = None
    _protected: Any = field(default=None, repr=False)
    _key: bytes | None = field(default=None, repr=False)

    @classmethod
    def sealed(cls, src: str, dst: str, size_bytes: int, *, key: bytes,
               payload: Any, kind: PacketKind = PacketKind.DATA,
               identifier: int | None = None, flow_id: str = "flow0",
               created_at: float = 0.0) -> "Packet":
        """Build a packet whose payload only holders of ``key`` can read."""
        return cls(src=src, dst=dst, size_bytes=size_bytes, kind=kind,
                   identifier=identifier, flow_id=flow_id,
                   created_at=created_at, _protected=payload, _key=key)

    def protected_payload(self, key: bytes) -> Any:
        """Decrypt: return the protected payload, or raise without the key."""
        if self._key is None:
            raise SimulationError(f"packet {self.uid} carries no protected payload")
        if key != self._key:
            raise SimulationError(
                f"wrong key for packet {self.uid}: an on-path element tried "
                f"to read an E2E-encrypted payload"
            )
        return self._protected

    @property
    def has_protected_payload(self) -> bool:
        return self._key is not None

    def __repr__(self) -> str:
        ident = f"{self.identifier:#010x}" if self.identifier is not None else "-"
        return (f"Packet(uid={self.uid}, {self.src}->{self.dst}, "
                f"{self.kind.value}, {self.size_bytes}B, id={ident})")
